"""The ``tetra`` command-line driver.

The paper ships "a command line driver program ... which simply calls the
interpreter on its argument from start to finish"; this driver adds the
developer-tool subcommands a real release needs:

    tetra run program.ttr          interpret a program (default backend)
    tetra check program.ttr        type-check only, print all diagnostics
    tetra tokens program.ttr       dump the token stream
    tetra ast program.ttr          dump the abstract syntax tree
    tetra compile program.ttr      emit the compiled Python module
    tetra highlight program.ttr    print the source with ANSI colors
    tetra dbg program.ttr          interactive parallel debugger (TUI)
    tetra builtins                 list the standard library
"""

from __future__ import annotations

import argparse
import sys

from .. import __version__
from ..api import BACKEND_FACTORIES, check_source
from ..errors import TetraError
from ..lexer import TokenType, tokenize
from ..parser import parse_source
from ..source import SourceFile
from ..tetra_ast import dump
from ..interp import Interpreter
from ..runtime import RuntimeConfig
from ..stdlib.registry import catalog


def _read(path: str) -> SourceFile:
    try:
        return SourceFile.from_path(path)
    except OSError as exc:
        raise SystemExit(f"tetra: cannot read {path}: {exc.strerror}")


def cmd_run(args: argparse.Namespace) -> int:
    source = _read(args.file)
    workers = args.workers
    if args.detect_races and workers is None:
        # The sequential backend defaults to one parallel-for worker, which
        # would hide logical concurrency from the detector.
        import os

        workers = max(2, os.cpu_count() or 2)
    from ..errors import EXIT_RACES, exit_code_for
    from ..resilience import CancelToken, install_sigint

    token = CancelToken()
    recorder = None
    record_io = None
    if args.record_schedule is not None:
        from ..runtime.schedule import ScheduleRecorder
        from ..stdlib.io import TeeIO

        recorder = ScheduleRecorder()
        record_io = TeeIO()
    config = RuntimeConfig(
        num_workers=workers,
        chunking=args.chunking,
        detect_races=args.detect_races,
        trace=args.trace is not None,
        metrics=args.metrics,
        profile=args.profile,
        step_limit=args.step_limit,
        time_limit=args.time_limit,
        memory_limit=args.memory_limit,
        output_limit=args.output_limit,
        cancel=token,
        chaos_seed=args.chaos,
        schedule_recorder=recorder,
        native=args.native,
    )
    interp = None
    code = 0
    run_error = None
    try:
        from ..api import cached_program

        program, source = cached_program(
            source.text, args.file, cache=not args.no_cache,
            flags=(bool(args.detect_races),
                   bool(args.trace is not None or args.metrics
                        or args.profile),
                   args.native != "off"),
        )
        backend = BACKEND_FACTORIES[args.backend](config=config)
        interp = Interpreter(program, source, backend=backend,
                             io=record_io)
        # Ctrl-C cancels the token; the program unwinds through the normal
        # error path, so the partial race/metrics reports below still print.
        with install_sigint(token):
            interp.run()
    except TetraError as exc:
        run_error = exc
        print(exc.attach_source(source).render(), file=sys.stderr)
        code = exit_code_for(exc)
    if args.chaos is not None and config.fault_plan is not None:
        plan = config.fault_plan
        summary = ", ".join(f"{kind}: {n}"
                            for kind, n in sorted(plan.counts.items()))
        print(f"chaos seed {plan.seed} injected {plan.total_injected} "
              f"fault(s){' — ' + summary if summary else ''}",
              file=sys.stderr)
    if args.detect_races and interp is not None:
        from ..analysis import render_race_panel

        print(render_race_panel(interp.races, source), file=sys.stderr)
        if interp.races and code == 0:
            code = EXIT_RACES
    # The observability reports are printed even when the run errored —
    # a partial trace of a crashed program is exactly what one debugs with.
    obs = interp._obs if interp is not None else None
    if obs is not None:
        if args.trace is not None:
            from ..obs import write_chrome_trace

            write_chrome_trace(obs, args.trace, interp.backend)
            print(f"trace written to {args.trace} "
                  "(load in Perfetto or chrome://tracing)", file=sys.stderr)
        if args.metrics:
            from ..obs import collect_metrics

            print(collect_metrics(obs, interp.backend).render(),
                  file=sys.stderr)
        if args.profile:
            from ..obs import render_profile

            print(render_profile(obs, source), file=sys.stderr)
    if recorder is not None and interp is not None:
        # Recorded even when the run aborted: a deadlocking or racing run
        # is exactly the one worth replaying.
        from ..api import _abort_kind
        from ..runtime.schedule import build_artifact, save_schedule

        plan = config.fault_plan
        artifact = build_artifact(
            recorder, source_text=source.text, name=args.file,
            entry="main", backend_name=interp.backend.name, config=config,
            inputs=record_io.consumed, output=record_io.output,
            status=_abort_kind(run_error) if run_error is not None else "ok",
            races=interp.races,
            fault_counts=dict(plan.counts) if plan is not None else {},
        )
        save_schedule(artifact, args.record_schedule)
        print(f"schedule recorded to {args.record_schedule} — replay it "
              f"with: tetra replay {args.record_schedule}", file=sys.stderr)
    return code


def cmd_replay(args: argparse.Namespace) -> int:
    """Deterministically re-run a recorded schedule artifact."""
    from ..errors import EXIT_RACES, exit_code_for
    from ..runtime.schedule import load_schedule, replay_schedule

    try:
        schedule = load_schedule(args.file)
        result = replay_schedule(schedule, cache=not args.no_cache,
                                 time_limit=args.time_limit)
    except TetraError as exc:
        print(exc.render(), file=sys.stderr)
        return exit_code_for(exc)
    sys.stdout.write(result.output)
    code = 0
    source = SourceFile.from_string(schedule.source, schedule.name)
    if result.error is not None:
        print(result.error.attach_source(source).render(), file=sys.stderr)
        code = exit_code_for(result.error)
    if schedule.detect_races:
        from ..analysis import render_race_panel

        print(render_race_panel(result.races, source), file=sys.stderr)
        if result.races and code == 0:
            code = EXIT_RACES
    print(result.replay.render(), file=sys.stderr)
    return code


def cmd_check(args: argparse.Namespace) -> int:
    source = _read(args.file)
    diagnostics = check_source(source.text, args.file)
    for exc in diagnostics:
        print(exc.render(), file=sys.stderr)
    if diagnostics:
        count = len(diagnostics)
        print(f"{count} error{'s' if count != 1 else ''}", file=sys.stderr)
        return 1
    print(f"{args.file}: ok")
    return 0


def cmd_tokens(args: argparse.Namespace) -> int:
    source = _read(args.file)
    try:
        for token in tokenize(source):
            if token.type is TokenType.EOF:
                break
            location = f"{token.span.line}:{token.span.column}"
            payload = f" {token.value!r}" if token.value is not None else ""
            print(f"{location:>8}  {token.type.name}{payload}")
    except TetraError as exc:
        print(exc.render(), file=sys.stderr)
        return 1
    return 0


def cmd_ast(args: argparse.Namespace) -> int:
    source = _read(args.file)
    try:
        program = parse_source(source)
    except TetraError as exc:
        print(exc.render(), file=sys.stderr)
        return 1
    print(dump(program, include_spans=args.spans))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    source = _read(args.file)
    from ..compiler import compile_to_python

    try:
        code = compile_to_python(source.text, module_name=args.file)
    except TetraError as exc:
        print(exc.render(), file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(code)
        print(f"wrote {args.output}")
    else:
        print(code)
    return 0


def cmd_highlight(args: argparse.Namespace) -> int:
    source = _read(args.file)
    from ..ide.highlight import render_ansi

    sys.stdout.write(render_ansi(source.text, args.file))
    return 0


def cmd_dbg(args: argparse.Namespace) -> int:
    from ..ide.tui import debug_main

    if args.file is None and args.replay is None:
        print("tetra: dbg needs a program file or --replay FILE",
              file=sys.stderr)
        return 2
    text = _read(args.file).text if args.file is not None else None
    try:
        debug_main(text, replay=args.replay)
    except TetraError as exc:
        print(exc.render(), file=sys.stderr)
        return 1
    return 0


def cmd_sim(args: argparse.Namespace) -> int:
    """Run a program on the virtual-time machine model and print the
    speedup table (and optionally the schedule Gantt chart)."""
    source = _read(args.file)
    from ..runtime import SimBackend

    try:
        core_counts = sorted({int(c) for c in args.cores.split(",")})
    except ValueError:
        print(f"tetra: --cores wants a comma list of ints, got {args.cores!r}",
              file=sys.stderr)
        return 2
    backend = SimBackend(
        cores=max(core_counts),
        config=RuntimeConfig(num_workers=args.workers,
                             chunking=args.chunking),
    )
    try:
        if args.load_trace:
            from ..runtime.traceio import load_trace

            backend.recorder.root = load_trace(args.load_trace)
        else:
            program = parse_source(source)
            from ..types import check_program

            check_program(program, source)
            Interpreter(program, source, backend=backend).run()
        if args.save_trace:
            from ..runtime.traceio import save_trace

            save_trace(backend.trace, args.save_trace)
            print(f"trace saved to {args.save_trace}", file=sys.stderr)
    except TetraError as exc:
        print(exc.attach_source(source).render(), file=sys.stderr)
        return 1
    curve = backend.speedups(core_counts)
    base = curve[1]
    print(f"{'cores':>5}  {'virtual time':>12}  {'speedup':>7}  {'efficiency':>10}")
    for cores in sorted(curve):
        result = curve[cores]
        print(f"{cores:>5}  {round(result.makespan):>12}  "
              f"{result.speedup_against(base):>7.2f}  "
              f"{result.efficiency_against(base) * 100:>9.1f}%")
    if args.timeline:
        from ..runtime.gantt import render_gantt

        for cores in core_counts:
            if cores == 1 and len(core_counts) > 1:
                continue
            print(f"\nschedule on {cores} cores:")
            print(render_gantt(curve[cores], width=args.width))
    return 0


def cmd_fmt(args: argparse.Namespace) -> int:
    """Pretty-print a program in canonical formatting (via the unparser)."""
    source = _read(args.file)
    from ..tetra_ast import unparse

    try:
        program = parse_source(source)
    except TetraError as exc:
        print(exc.render(), file=sys.stderr)
        return 1
    formatted = unparse(program)
    if args.write:
        with open(args.file, "w", encoding="utf-8") as handle:
            handle.write(formatted)
        print(f"formatted {args.file}")
    else:
        sys.stdout.write(formatted)
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    """Run the seeded chaos matrix and print the findings report."""
    source = _read(args.file)
    from ..errors import EXIT_DEADLOCK, EXIT_RACES
    from ..resilience import run_stress

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    unknown = [b for b in backends if b not in BACKEND_FACTORIES]
    if unknown:
        print(f"tetra: unknown backend(s) {', '.join(unknown)}; pick from "
              f"{', '.join(sorted(BACKEND_FACTORIES))}", file=sys.stderr)
        return 2
    try:
        report = run_stress(
            source.text, name=args.file, seeds=args.seeds,
            first_seed=args.first_seed, backends=backends,
            detect_races=not args.no_races, time_limit=args.time_limit,
            artifact_dir=args.artifacts,
        )
    except TetraError as exc:
        # Compile-time failures (syntax/type errors) abort the whole matrix.
        print(exc.attach_source(source).render(), file=sys.stderr)
        return 1
    print(report.render())
    if report.deadlocks:
        return EXIT_DEADLOCK
    if report.divergent or report.race_hits:
        return EXIT_RACES
    if report.errors:
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the hosted multi-tenant execution service until Ctrl-C."""
    from ..serve import ServeConfig, serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.serve_workers,
        recycle_after=args.recycle_after,
        rate=args.rate,
        burst=args.burst,
        max_concurrent=args.max_concurrent,
        default_time_limit=args.default_time_limit,
        max_time_limit=args.max_time_limit,
        coalesce=not args.no_dedup,
        result_cache_size=0 if args.no_dedup else args.result_cache_size,
        result_cache_path=args.result_cache_path,
        max_queue=args.max_queue,
        default_queue_wait=args.queue_wait,
        max_queue_wait=args.max_queue_wait,
        breaker_threshold=args.breaker_threshold,
        breaker_backoff=args.breaker_backoff,
        infra_retries=args.infra_retries,
        drain_grace=args.drain_grace,
        chaos_serve_seed=args.chaos_serve,
    )
    return serve(config, verbose=args.verbose)


def cmd_repl(args: argparse.Namespace) -> int:
    from .repl import repl_main

    repl_main()
    return 0


def cmd_builtins(args: argparse.Namespace) -> int:
    category = None
    for b in catalog():
        if b.category != category:
            category = b.category
            print(f"\n[{category}]")
        print(f"  {b.doc or b.name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tetra",
        description="Tetra: an educational parallel programming system",
    )
    parser.add_argument("--version", action="version",
                        version=f"tetra (repro) {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="interpret a Tetra program")
    run.add_argument("file")
    run.add_argument("--backend", choices=sorted(BACKEND_FACTORIES),
                     default="thread",
                     help="execution backend (default: thread)")
    run.add_argument("--workers", "--jobs", "-j", type=int, default=None,
                     dest="workers", metavar="N",
                     help="worker threads (or processes on --backend proc) "
                          "for 'parallel for'")
    run.add_argument("--chunking", choices=["block", "cyclic", "dynamic"],
                     default="block",
                     help="parallel-for iteration split; 'dynamic' uses "
                          "guided decreasing chunks (a work queue on the "
                          "proc backend)")
    run.add_argument("--detect-races", action="store_true",
                     help="watch shared variables for data races and print "
                          "a report after the run (exit code 3 if any)")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the compiled-program cache (recompile "
                          "from source even if this exact text ran before)")
    run.add_argument("--trace", default=None, metavar="FILE",
                     help="record an execution trace and write it as "
                          "Chrome trace-event JSON (view in Perfetto)")
    run.add_argument("--metrics", action="store_true",
                     help="print parallel metrics after the run: wall time, "
                          "per-thread busy time, lock contention, "
                          "parallel-for load balance, estimated speedup")
    run.add_argument("--profile", action="store_true",
                     help="print the hottest source lines by charged cost "
                          "units (statement counts on non-accounting "
                          "backends)")
    run.add_argument("--native", nargs="?", const="auto", default="off",
                     choices=["auto", "off", "require"], metavar="MODE",
                     help="run numeric kernels as compiled C (the native "
                          "tier): 'auto' (the bare flag) lowers what it "
                          "can and falls back silently, 'require' fails "
                          "if the tier cannot be set up; fallback "
                          "reasons appear under --metrics")
    run.add_argument("--step-limit", type=int, default=0, metavar="N",
                     help="abort after N interpreted statements (exit 4)")
    run.add_argument("--time-limit", type=float, default=0.0, metavar="T",
                     help="abort after T units of the backend's clock: "
                          "seconds on thread/sequential, virtual units on "
                          "sim/coop (exit 4)")
    run.add_argument("--memory-limit", type=int, default=0, metavar="CELLS",
                     help="abort when more than CELLS value-heap cells "
                          "(array/dict/tuple elements, object fields) are "
                          "live at once (exit 4)")
    run.add_argument("--output-limit", type=int, default=0, metavar="CHARS",
                     help="abort after the program prints more than CHARS "
                          "characters (exit 4); defaults to 64x the memory "
                          "limit when one is set, otherwise unlimited")
    run.add_argument("--chaos", type=int, default=None, metavar="SEED",
                     help="run under a seeded fault-injection plan: "
                          "preemption jitter and lock delays on the thread "
                          "backend, seeded schedules on coop/sim")
    run.add_argument("--record-schedule", default=None, metavar="FILE",
                     help="record this run's exact interleaving (turns, "
                          "lock grants, parallel-for shapes, faults) as a "
                          "replayable tetra-schedule JSON artifact")
    run.set_defaults(func=cmd_run)

    replay = sub.add_parser(
        "replay",
        help="deterministically re-run a recorded schedule artifact "
             "(from 'run --record-schedule' or 'stress --artifacts')",
    )
    replay.add_argument("file", help="a .schedule.json artifact")
    replay.add_argument("--no-cache", action="store_true",
                        help="bypass the compiled-program cache")
    replay.add_argument("--time-limit", type=float, default=0.0,
                        metavar="T",
                        help="abort the replay after T virtual units "
                             "(coop clock)")
    replay.set_defaults(func=cmd_replay)

    check = sub.add_parser("check", help="type-check without running")
    check.add_argument("file")
    check.set_defaults(func=cmd_check)

    tokens = sub.add_parser("tokens", help="dump the token stream")
    tokens.add_argument("file")
    tokens.set_defaults(func=cmd_tokens)

    ast = sub.add_parser("ast", help="dump the abstract syntax tree")
    ast.add_argument("file")
    ast.add_argument("--spans", action="store_true",
                     help="include line:column positions")
    ast.set_defaults(func=cmd_ast)

    compile_ = sub.add_parser("compile",
                              help="compile to a Python module")
    compile_.add_argument("file")
    compile_.add_argument("-o", "--output", default=None,
                          help="write to a file instead of stdout")
    compile_.set_defaults(func=cmd_compile)

    hl = sub.add_parser("highlight", help="print source with ANSI colors")
    hl.add_argument("file")
    hl.set_defaults(func=cmd_highlight)

    dbg = sub.add_parser("dbg", help="interactive parallel debugger")
    dbg.add_argument("file", nargs="?", default=None)
    dbg.add_argument("--replay", default=None, metavar="FILE",
                     help="debug a recorded schedule artifact: 'rs' steps "
                          "the exact recorded interleaving turn by turn")
    dbg.set_defaults(func=cmd_dbg)

    sim = sub.add_parser(
        "sim",
        help="virtual-time speedup study on a model multicore",
    )
    sim.add_argument("file")
    sim.add_argument("--cores", default="1,2,4,8",
                     help="comma list of core counts (default 1,2,4,8)")
    sim.add_argument("--workers", type=int, default=None,
                     help="worker threads for 'parallel for'")
    sim.add_argument("--chunking", choices=["block", "cyclic"],
                     default="block")
    sim.add_argument("--timeline", action="store_true",
                     help="draw a Gantt chart of each schedule")
    sim.add_argument("--width", type=int, default=64,
                     help="Gantt chart width in columns")
    sim.add_argument("--save-trace", default=None, metavar="FILE",
                     help="write the recorded task graph as JSON")
    sim.add_argument("--load-trace", default=None, metavar="FILE",
                     help="schedule a previously saved trace instead of "
                          "re-interpreting the program")
    sim.set_defaults(func=cmd_sim)

    fmt = sub.add_parser("fmt", help="pretty-print in canonical style")
    fmt.add_argument("file")
    fmt.add_argument("-w", "--write", action="store_true",
                     help="rewrite the file in place")
    fmt.set_defaults(func=cmd_fmt)

    stress = sub.add_parser(
        "stress",
        help="shake a program across many chaos seeds and backends, "
             "reporting divergent outputs, deadlocks, and races",
    )
    stress.add_argument("file")
    stress.add_argument("--seeds", type=int, default=10, metavar="N",
                        help="chaos seeds per backend (default 10)")
    stress.add_argument("--first-seed", type=int, default=0, metavar="S",
                        help="first seed value (default 0)")
    stress.add_argument("--backends", default="thread,coop,proc",
                        help="comma list of backends to stress "
                             "(default thread,coop,proc)")
    stress.add_argument("--no-races", action="store_true",
                        help="skip the dynamic race detector (faster)")
    stress.add_argument("--time-limit", type=float, default=0.0, metavar="T",
                        help="per-run time limit on the backend clock "
                             "(default: 10s host / 200000 virtual units)")
    stress.add_argument("--artifacts", default=None, metavar="DIR",
                        help="record every cell and persist the schedules "
                             "of failing/divergent cells to DIR as "
                             "replayable artifacts")
    stress.set_defaults(func=cmd_stress)

    serve_p = sub.add_parser(
        "serve",
        help="run the hosted multi-tenant execution service (HTTP + "
             "WebSocket; see README 'Hosted execution')",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8722,
                         help="bind port (default: 8722; 0 = ephemeral)")
    serve_p.add_argument("--workers", type=int, default=2,
                         dest="serve_workers", metavar="N",
                         help="sandbox worker processes (default: 2)")
    serve_p.add_argument("--recycle-after", type=int, default=64,
                         metavar="N",
                         help="retire a worker after N requests "
                              "(default: 64, 0 = never)")
    serve_p.add_argument("--rate", type=float, default=10.0, metavar="R",
                         help="per-tenant request rate, req/s (default: 10)")
    serve_p.add_argument("--burst", type=int, default=20, metavar="N",
                         help="per-tenant burst size (default: 20)")
    serve_p.add_argument("--max-concurrent", type=int, default=4,
                         metavar="N",
                         help="per-tenant concurrent runs (default: 4)")
    serve_p.add_argument("--default-time-limit", type=float, default=5.0,
                         metavar="T",
                         help="seconds granted when a request names no "
                              "time limit (default: 5)")
    serve_p.add_argument("--max-time-limit", type=float, default=30.0,
                         metavar="T",
                         help="ceiling a request may ask for (default: 30)")
    serve_p.add_argument("--no-dedup", action="store_true",
                         help="disable request coalescing and the result "
                              "cache (every request runs its own sandbox)")
    serve_p.add_argument("--result-cache-size", type=int, default=256,
                         metavar="N",
                         help="pure-result cache entries (default: 256, "
                              "0 = disabled)")
    serve_p.add_argument("--result-cache-path", default=None, metavar="FILE",
                         help="persist the result cache to FILE across "
                              "restarts (default: in-memory only)")
    serve_p.add_argument("--max-queue", type=int, default=32, metavar="N",
                         help="bounded run-queue depth; arrivals beyond it "
                              "are shed with 503 + Retry-After "
                              "(default: 32)")
    serve_p.add_argument("--queue-wait", type=float, default=10.0,
                         metavar="T",
                         help="default per-request queue deadline, seconds "
                              "(default: 10)")
    serve_p.add_argument("--max-queue-wait", type=float, default=60.0,
                         metavar="T",
                         help="ceiling on the queue deadline a request may "
                              "ask for (default: 60)")
    serve_p.add_argument("--breaker-threshold", type=int, default=3,
                         metavar="N",
                         help="consecutive worker-killing outcomes before "
                              "a program sha is quarantined (default: 3)")
    serve_p.add_argument("--breaker-backoff", type=float, default=30.0,
                         metavar="T",
                         help="first quarantine length in seconds, doubling "
                              "per re-trip (default: 30)")
    serve_p.add_argument("--infra-retries", type=int, default=2, metavar="N",
                         help="redispatches when a worker dies before user "
                              "code starts (default: 2)")
    serve_p.add_argument("--drain-grace", type=float, default=10.0,
                         metavar="T",
                         help="seconds in-flight runs get to finish on "
                              "SIGTERM / POST /api/drain (default: 10)")
    serve_p.add_argument("--chaos-serve", type=int, default=None,
                         metavar="SEED",
                         help="arm seeded serve-layer fault injection "
                              "(worker kills, pipe faults, client drops, "
                              "compile stalls) — testing only")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log each HTTP request to stderr")
    serve_p.set_defaults(func=cmd_serve)

    repl = sub.add_parser("repl", help="interactive Tetra session")
    repl.set_defaults(func=cmd_repl)

    builtins_ = sub.add_parser("builtins", help="list the standard library")
    builtins_.set_defaults(func=cmd_builtins)

    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # `--native` takes an optional MODE, so bare `--native <file>` would
    # greedily (mis)consume the program path; pin the bare form to =auto
    # unless the next token really is a mode.
    argv = [
        "--native=auto"
        if arg == "--native" and (
            i + 1 >= len(argv)
            or argv[i + 1] not in ("auto", "off", "require"))
        else arg
        for i, arg in enumerate(argv)
    ]
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
