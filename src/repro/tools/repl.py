"""An interactive Tetra REPL (``tetra repl``).

Classroom workflow the paper's IDE aims at, in a terminal: type statements
and see them run immediately, define functions incrementally, inspect
variables, and experiment with the parallel constructs — all with the real
checker in the loop, so type errors appear as you go, not at some later
"compile" step.

Mechanics: the session owns one persistent frame (variables survive across
inputs) and a growing set of function definitions.  Each input is either

* a REPL command (``:help``, ``:vars``, ``:funcs``, ``:type e``,
  ``:load file``, ``:quit``),
* a function definition (``def ...`` — collected until the indented block
  ends, checked together with the other session functions),
* an expression (evaluated; its value is echoed), or
* one or more statements (checked against the session scope, executed).
"""

from __future__ import annotations

import textwrap
from typing import TextIO

from ..api import cached_parse
from ..errors import TetraError
from ..parser import Parser
from ..source import SourceFile
from ..tetra_ast import Program
from ..types import VOID, FunctionSignature, LocalScope, ProgramSymbols
from ..types.check import TypeChecker
from ..interp import Interpreter, ReturnSignal, ThreadContext
from ..interp.control import BreakSignal, ContinueSignal
from ..runtime import Frame, RuntimeConfig, ThreadBackend
from ..runtime.env import Environment
from ..runtime.values import display
from ..stdlib.io import IOChannel, StandardIO
from ..lexer import TokenType, tokenize

PROMPT = "tetra> "
CONTINUATION = "  ...> "

_HELP = """\
Tetra REPL — statements run immediately, expressions echo their value.
  def f(...) ...:     define or redefine a function (finish with an
                      empty line)
  :vars               list session variables and their values
  :funcs              list session functions
  :type <expr>        show an expression's static type
  :load <file.ttr>    bring a file's functions into the session
  :help               this text
  :quit               leave (Ctrl-D works too)
"""


class ReplSession:
    """The persistent state and evaluation engine behind the REPL."""

    def __init__(self, io: IOChannel | None = None, cache: bool = True):
        self.io = io or StandardIO()
        self.functions: dict[str, object] = {}  # name -> FunctionDef
        self.classes: dict[str, object] = {}    # name -> ClassDef
        self.scope = LocalScope()
        self.frame = Frame("<repl>")
        self.ctx = ThreadContext("repl thread", Environment(self.frame))
        #: Re-entering the same definition or statement block (a classroom
        #: staple: up-arrow, edit, retry) skips re-parsing via the program
        #: cache.  The tag scopes entries to this session — the checker
        #: annotates AST nodes in place, and only this session re-checks
        #: (and therefore re-annotates) the trees it gets back.
        self.cache = cache
        self._cache_tag = object()
        self._rebuild()

    def _parse(self, text: str):
        """Parse a fragment through the session-scoped parse cache."""
        return cached_parse(text, "<repl>", tag=self._cache_tag,
                            cache=self.cache)

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Recreate the program/checker/interpreter after a definition."""
        self.program = Program(functions=list(self.functions.values()),
                               classes=list(self.classes.values()))
        source = SourceFile.from_string("", "<repl>")
        checker = TypeChecker(self.program, source)
        symbols = checker.run()
        if checker.errors:
            raise checker.errors[0]
        self.symbols: ProgramSymbols = symbols
        self.interpreter = Interpreter(
            self.program, source,
            backend=ThreadBackend(RuntimeConfig()),
            io=self.io,
        )
        # The session scope persists; wire it into a fresh checker used for
        # statement/expression checking between definitions.
        self._stmt_checker = TypeChecker(self.program, source)
        self._stmt_checker.symbols = symbols
        self._stmt_checker._scope = self.scope
        self._stmt_checker._signature = FunctionSignature(
            "<repl>", (), (), VOID
        )

    def _check(self, check, source: SourceFile | None = None):
        """Run a checker callback; raise the first collected diagnostic."""
        self._stmt_checker.errors.clear()
        saved = self._stmt_checker.source
        if source is not None:
            self._stmt_checker.source = source
        try:
            result = check()
        finally:
            self._stmt_checker.source = saved
        if self._stmt_checker.errors:
            raise self._stmt_checker.errors[0]
        return result

    # ------------------------------------------------------------------
    # Input classification
    # ------------------------------------------------------------------
    @staticmethod
    def needs_continuation(text: str) -> bool:
        """Does this input open a block (ends with ':' outside strings)?"""
        try:
            tokens = tokenize(text)
        except TetraError:
            return False
        meaningful = [
            t for t in tokens
            if t.type not in (TokenType.NEWLINE, TokenType.INDENT,
                              TokenType.DEDENT, TokenType.EOF)
        ]
        return bool(meaningful) and meaningful[-1].type is TokenType.COLON

    def define_functions(self, text: str) -> list[str]:
        """Handle a ``def``/``class`` input; returns the (re)defined names."""
        program, _ = self._parse(text)
        previous_fns = dict(self.functions)
        previous_classes = dict(self.classes)
        names = []
        for fn in program.functions:
            self.functions[fn.name] = fn
            names.append(fn.name)
        for cls in program.classes:
            self.classes[cls.name] = cls
            names.append(cls.name)
        try:
            self._rebuild()
        except TetraError:
            self.functions = previous_fns  # roll back a bad definition
            self.classes = previous_classes
            self._rebuild()
            raise
        return names

    def try_parse_expression(self, text: str):
        """Parse as a single expression; None if it is not one (syntax)."""
        source = SourceFile.from_string(text, "<repl>")
        parser = Parser(source)
        try:
            expr = parser.parse_expression()
            parser.accept(TokenType.NEWLINE)
            if not parser.at(TokenType.EOF):
                return None
        except TetraError:
            return None
        return expr

    def eval_expression(self, expr) -> str | None:
        """Check and evaluate a parsed expression; display form or None."""
        ty = self._check(lambda: self._stmt_checker.check_expr(expr))
        value = self.interpreter.eval_expr(expr, self.ctx)
        if ty == VOID:
            return None
        return display(value)

    def static_type_of(self, text: str) -> str:
        """The ``:type`` command: check without evaluating."""
        source = SourceFile.from_string(text, "<repl>")
        parser = Parser(source)
        expr = parser.parse_expression()
        ty = self._check(lambda: self._stmt_checker.check_expr(expr))
        return str(ty)

    def run_statements(self, text: str) -> None:
        """Check and execute one or more statements in the session scope."""
        wrapped = "def __repl_input__():\n" + textwrap.indent(text, "    ")
        program, source = self._parse(wrapped)
        statements = program.functions[0].body.statements

        def check_all():
            for stmt in statements:
                self._stmt_checker.check_stmt(stmt)

        self._check(check_all, source)
        for stmt in statements:
            try:
                self.interpreter.exec_stmt(stmt, self.ctx)
            except ReturnSignal:
                raise TetraError("'return' outside a function") from None
            except (BreakSignal, ContinueSignal):
                raise TetraError(
                    "'break'/'continue' outside a loop"
                ) from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def variables(self) -> list[tuple[str, str, str]]:
        """(name, type, value) for every session variable."""
        rows = []
        for name in sorted(self.frame.vars):
            info = self.scope.lookup(name)
            type_text = str(info.type) if info else "?"
            rows.append((name, type_text, display(self.frame.vars[name])))
        return rows

    def function_signatures(self) -> list[str]:
        rows = [
            str(self.symbols.classes[name])
            for name in sorted(self.classes)
        ]
        rows += [
            str(self.symbols.functions[name])
            for name in sorted(self.functions)
        ]
        return rows

    def load_file(self, path: str) -> list[str]:
        with open(path, "r", encoding="utf-8") as handle:
            return self.define_functions(handle.read())


class Repl:
    """The interactive loop over a :class:`ReplSession`."""

    def __init__(self, stdin: TextIO | None = None,
                 stdout: TextIO | None = None,
                 io: IOChannel | None = None):
        import sys

        self.stdin = stdin or sys.stdin
        self.stdout = stdout or sys.stdout
        self.session = ReplSession(io)

    def _say(self, text: str = "") -> None:
        self.stdout.write(text + "\n")

    @staticmethod
    def _block_complete(text: str) -> bool:
        """Does the accumulated block parse (as definitions or statements)?"""
        from repro.parser import parse_source as _parse

        for candidate in (text, "def __probe__():\n"
                          + "\n".join(f"    {l}" for l in text.split("\n"))):
            try:
                _parse(candidate)
                return True
            except TetraError:
                continue
        return False

    def _read_block(self, first: str) -> str:
        """Collect continuation lines.

        A blank line ends the block once the text parses — so class bodies
        and functions may contain internal blank lines; two consecutive
        blank lines always end it (the escape hatch for broken input).
        """
        lines = [first]
        blank_run = 0
        while True:
            self.stdout.write(CONTINUATION)
            self.stdout.flush()
            line = self.stdin.readline()
            if not line:
                break
            if line.strip() == "":
                blank_run += 1
                text = "\n".join(lines) + "\n"
                if blank_run >= 2 or self._block_complete(text):
                    break
                lines.append("")
                continue
            blank_run = 0
            lines.append(line.rstrip("\n"))
        return "\n".join(lines) + "\n"

    def handle(self, text: str) -> bool:
        """Process one complete input.  Returns False to exit."""
        stripped = text.strip()
        if not stripped:
            return True
        if stripped in (":quit", ":q", ":exit"):
            return False
        if stripped in (":help", ":h"):
            self._say(_HELP)
            return True
        if stripped == ":vars":
            rows = self.session.variables()
            if not rows:
                self._say("(no variables yet)")
            for name, type_text, value in rows:
                self._say(f"  {name} {type_text} = {value}")
            return True
        if stripped == ":funcs":
            signatures = self.session.function_signatures()
            if not signatures:
                self._say("(no functions yet)")
            for signature in signatures:
                self._say(f"  {signature}")
            return True
        if stripped.startswith(":type "):
            self._say(self.session.static_type_of(stripped[len(":type "):]))
            return True
        if stripped.startswith(":load "):
            names = self.session.load_file(stripped[len(":load "):].strip())
            self._say(f"loaded: {', '.join(names) if names else '(nothing)'}")
            return True
        if stripped.startswith(":"):
            self._say(f"unknown command {stripped.split()[0]!r}; try :help")
            return True

        if (stripped.startswith("def ") or stripped.startswith("def\t")
                or stripped.startswith("class ")):
            names = self.session.define_functions(text)
            self._say(f"defined {', '.join(names)}")
            return True

        # Syntactically an expression? Evaluate and echo.  Otherwise run as
        # statements.  The classification is purely syntactic so a failing
        # expression is never re-executed as a statement.
        expr = self.session.try_parse_expression(text)
        if expr is not None:
            result = self.session.eval_expression(expr)
            if result is not None:
                self._say(result)
            return True
        self.session.run_statements(text)
        return True

    def loop(self) -> None:
        self._say("Tetra REPL — :help for commands, :quit to leave")
        while True:
            self.stdout.write(PROMPT)
            self.stdout.flush()
            line = self.stdin.readline()
            if not line:
                self._say()
                break
            text = line.rstrip("\n")
            if (text.strip().startswith("def ")
                    or text.strip().startswith("class ")
                    or ReplSession.needs_continuation(text)):
                text = self._read_block(text)
            try:
                if not self.handle(text):
                    break
            except TetraError as exc:
                self._say(f"! {exc.render()}")
            except OSError as exc:
                self._say(f"! {exc}")


def repl_main() -> None:
    """Entry point for ``tetra repl``."""
    Repl().loop()
