"""Command-line tooling for Tetra."""
