"""Visitor infrastructure for AST passes.

Two styles are provided:

* :class:`NodeVisitor` — classic ``visit_<ClassName>`` dispatch with a
  ``generic_visit`` fallback that recurses into children.  Used by the type
  checker, the code generator, and several analyses.
* :class:`NodeTransformer` — like NodeVisitor but rebuilds lists of child
  statements from return values, enabling desugaring passes.
"""

from __future__ import annotations

from dataclasses import fields

from .nodes import Node


class NodeVisitor:
    """Dispatch ``visit(node)`` to ``visit_<ClassName>`` methods."""

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is None:
            return self.generic_visit(node)
        return method(node)

    def generic_visit(self, node: Node):
        for child in node.children():
            self.visit(child)
        return None


class NodeTransformer(NodeVisitor):
    """A visitor whose ``visit`` methods may return replacement nodes.

    Returning ``None`` from a statement visitor removes the statement;
    returning a node replaces it; the default keeps the node and recurses.
    """

    def generic_visit(self, node: Node):
        for f in fields(node):
            value = getattr(node, f.name)
            if isinstance(value, Node):
                new = self.visit(value)
                setattr(node, f.name, new if new is not None else value)
            elif isinstance(value, list):
                new_list = []
                for item in value:
                    if isinstance(item, Node):
                        replacement = self.visit(item)
                        if replacement is not None:
                            new_list.append(replacement)
                    else:
                        new_list.append(item)
                setattr(node, f.name, new_list)
        return node
