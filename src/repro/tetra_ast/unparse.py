"""Turn an AST back into Tetra source text.

The unparser is precedence-aware (it inserts the minimal parentheses needed)
and is exercised by the property test that ``parse(unparse(p))`` is
structurally equal to ``p`` — which pins down both this module and the
parser against each other.
"""

from __future__ import annotations

from .nodes import (
    ArrayLiteral,
    ArrayTypeExpr,
    Assign,
    Attribute,
    AugAssign,
    BackgroundBlock,
    BinaryOp,
    BinOp,
    Block,
    BoolLiteral,
    Break,
    Call,
    ClassDef,
    ClassTypeExpr,
    Continue,
    Declare,
    DictLiteral,
    DictTypeExpr,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    If,
    Index,
    IntLiteral,
    LockStmt,
    MethodCall,
    Name,
    ParallelBlock,
    ParallelFor,
    Pass,
    PrimitiveTypeExpr,
    Program,
    RangeLiteral,
    RealLiteral,
    Return,
    Stmt,
    StringLiteral,
    TryStmt,
    TupleLiteral,
    TupleTypeExpr,
    TypeExpr,
    Unary,
    UnaryOp,
    Unpack,
    While,
)

#: Binding strength of each binary operator (higher binds tighter).
BINARY_PRECEDENCE: dict[BinaryOp, int] = {
    BinaryOp.OR: 1,
    BinaryOp.AND: 2,
    BinaryOp.EQ: 4,
    BinaryOp.NE: 4,
    BinaryOp.LT: 4,
    BinaryOp.LE: 4,
    BinaryOp.GT: 4,
    BinaryOp.GE: 4,
    BinaryOp.ADD: 5,
    BinaryOp.SUB: 5,
    BinaryOp.MUL: 6,
    BinaryOp.DIV: 6,
    BinaryOp.MOD: 6,
    BinaryOp.POW: 8,
}

UNARY_PRECEDENCE: dict[UnaryOp, int] = {
    UnaryOp.NOT: 3,
    UnaryOp.NEG: 7,
    UnaryOp.POS: 7,
}

#: ``**`` is right-associative; everything else is left-associative.
RIGHT_ASSOCIATIVE = frozenset({BinaryOp.POW})

_ATOM_PRECEDENCE = 10
_STRING_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\t": "\\t", "\r": "\\r", "\0": "\\0"}


def escape_string(value: str) -> str:
    """Render a string literal body with Tetra escape sequences."""
    return "".join(_STRING_ESCAPES.get(ch, ch) for ch in value)


class Unparser:
    def __init__(self, indent: str = "    "):
        self.indent = indent
        self.lines: list[str] = []

    # -- types ----------------------------------------------------------
    def type_text(self, t: TypeExpr) -> str:
        if isinstance(t, PrimitiveTypeExpr):
            return t.name
        if isinstance(t, ArrayTypeExpr):
            return f"[{self.type_text(t.element)}]"
        if isinstance(t, DictTypeExpr):
            return f"{{{self.type_text(t.key)}: {self.type_text(t.value)}}}"
        if isinstance(t, TupleTypeExpr):
            inner = ", ".join(self.type_text(e) for e in t.elements)
            return f"({inner})"
        if isinstance(t, ClassTypeExpr):
            return t.name
        raise TypeError(f"unknown type expression {t!r}")

    # -- expressions ------------------------------------------------------
    def expr_text(self, e: Expr, parent_prec: int = 0) -> str:
        text, prec = self._expr(e)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr(self, e: Expr) -> tuple[str, int]:
        if isinstance(e, IntLiteral):
            return str(e.value), _ATOM_PRECEDENCE
        if isinstance(e, RealLiteral):
            return repr(e.value), _ATOM_PRECEDENCE
        if isinstance(e, BoolLiteral):
            return ("true" if e.value else "false"), _ATOM_PRECEDENCE
        if isinstance(e, StringLiteral):
            return f'"{escape_string(e.value)}"', _ATOM_PRECEDENCE
        if isinstance(e, Name):
            return e.id, _ATOM_PRECEDENCE
        if isinstance(e, ArrayLiteral):
            inner = ", ".join(self.expr_text(x) for x in e.elements)
            return f"[{inner}]", _ATOM_PRECEDENCE
        if isinstance(e, TupleLiteral):
            inner = ", ".join(self.expr_text(x) for x in e.elements)
            return f"({inner})", _ATOM_PRECEDENCE
        if isinstance(e, DictLiteral):
            inner = ", ".join(
                f"{self.expr_text(k)}: {self.expr_text(v)}"
                for k, v in e.entries
            )
            return f"{{{inner}}}", _ATOM_PRECEDENCE
        if isinstance(e, RangeLiteral):
            return (
                f"[{self.expr_text(e.start)} ... {self.expr_text(e.stop)}]",
                _ATOM_PRECEDENCE,
            )
        if isinstance(e, Index):
            base = self.expr_text(e.base, 9)
            return f"{base}[{self.expr_text(e.index)}]", 9
        if isinstance(e, Attribute):
            return f"{self.expr_text(e.base, 9)}.{e.attr}", 9
        if isinstance(e, MethodCall):
            args = ", ".join(self.expr_text(a) for a in e.args)
            return f"{self.expr_text(e.base, 9)}.{e.method}({args})", 9
        if isinstance(e, Call):
            args = ", ".join(self.expr_text(a) for a in e.args)
            return f"{e.func}({args})", 9
        if isinstance(e, Unary):
            prec = UNARY_PRECEDENCE[e.op]
            spacer = " " if e.op is UnaryOp.NOT else ""
            return f"{e.op.value}{spacer}{self.expr_text(e.operand, prec)}", prec
        if isinstance(e, BinOp):
            prec = BINARY_PRECEDENCE[e.op]
            if e.op in RIGHT_ASSOCIATIVE:
                left = self.expr_text(e.left, prec + 1)
                right = self.expr_text(e.right, prec)
            else:
                left = self.expr_text(e.left, prec)
                right = self.expr_text(e.right, prec + 1)
            return f"{left} {e.op.value} {right}", prec
        raise TypeError(f"unknown expression node {type(e).__name__}")

    # -- statements -------------------------------------------------------
    def emit(self, depth: int, text: str) -> None:
        self.lines.append(f"{self.indent * depth}{text}")

    def block(self, block: Block, depth: int) -> None:
        if not block.statements:
            self.emit(depth, "pass")
            return
        for stmt in block.statements:
            self.stmt(stmt, depth)

    def stmt(self, s: Stmt, depth: int) -> None:
        if isinstance(s, ExprStmt):
            self.emit(depth, self.expr_text(s.expr))
        elif isinstance(s, Assign):
            self.emit(depth, f"{self.expr_text(s.target)} = {self.expr_text(s.value)}")
        elif isinstance(s, AugAssign):
            self.emit(
                depth,
                f"{self.expr_text(s.target)} {s.op.value}= {self.expr_text(s.value)}",
            )
        elif isinstance(s, Unpack):
            targets = ", ".join(self.expr_text(t) for t in s.targets)
            self.emit(depth, f"{targets} = {self.expr_text(s.value)}")
        elif isinstance(s, Declare):
            self.emit(
                depth,
                f"{s.name} {self.type_text(s.declared_type)} = "
                f"{self.expr_text(s.value)}",
            )
        elif isinstance(s, TryStmt):
            self.emit(depth, "try:")
            self.block(s.body, depth + 1)
            self.emit(depth, f"catch {s.error_name}:")
            self.block(s.handler, depth + 1)
        elif isinstance(s, If):
            self.emit(depth, f"if {self.expr_text(s.cond)}:")
            self.block(s.then, depth + 1)
            for clause in s.elifs:
                self.emit(depth, f"elif {self.expr_text(clause.cond)}:")
                self.block(clause.body, depth + 1)
            if s.orelse is not None:
                self.emit(depth, "else:")
                self.block(s.orelse, depth + 1)
        elif isinstance(s, While):
            self.emit(depth, f"while {self.expr_text(s.cond)}:")
            self.block(s.body, depth + 1)
        elif isinstance(s, For):
            self.emit(depth, f"for {s.var} in {self.expr_text(s.iterable)}:")
            self.block(s.body, depth + 1)
        elif isinstance(s, ParallelFor):
            self.emit(depth, f"parallel for {s.var} in {self.expr_text(s.iterable)}:")
            self.block(s.body, depth + 1)
        elif isinstance(s, ParallelBlock):
            self.emit(depth, "parallel:")
            self.block(s.body, depth + 1)
        elif isinstance(s, BackgroundBlock):
            self.emit(depth, "background:")
            self.block(s.body, depth + 1)
        elif isinstance(s, LockStmt):
            self.emit(depth, f"lock {s.name}:")
            self.block(s.body, depth + 1)
        elif isinstance(s, Return):
            if s.value is None:
                self.emit(depth, "return")
            else:
                self.emit(depth, f"return {self.expr_text(s.value)}")
        elif isinstance(s, Break):
            self.emit(depth, "break")
        elif isinstance(s, Continue):
            self.emit(depth, "continue")
        elif isinstance(s, Pass):
            self.emit(depth, "pass")
        else:
            raise TypeError(f"unknown statement node {type(s).__name__}")

    # -- declarations -------------------------------------------------------
    def function(self, fn: FunctionDef) -> None:
        params = ", ".join(f"{p.name} {self.type_text(p.type)}" for p in fn.params)
        ret = f" {self.type_text(fn.return_type)}" if fn.return_type is not None else ""
        self.emit(0, f"def {fn.name}({params}){ret}:")
        self.block(fn.body, 1)

    def class_def(self, cls: ClassDef) -> None:
        self.emit(0, f"class {cls.name}:")
        if not cls.fields and not cls.methods:
            self.emit(1, "pass")
        for f in cls.fields:
            self.emit(1, f"{f.name} {self.type_text(f.type)}")
        for method in cls.methods:
            self.lines.append("")
            params = ", ".join(
                f"{p.name} {self.type_text(p.type)}" for p in method.params
            )
            ret = (f" {self.type_text(method.return_type)}"
                   if method.return_type is not None else "")
            self.emit(1, f"def {method.name}({params}){ret}:")
            self.block(method.body, 2)

    def program(self, prog: Program) -> str:
        first = True
        for cls in getattr(prog, "classes", []):
            if not first:
                self.lines.append("")
            first = False
            self.class_def(cls)
        for fn in prog.functions:
            if not first:
                self.lines.append("")
            first = False
            self.function(fn)
        return "\n".join(self.lines) + "\n"


def unparse(node: Program | FunctionDef | Stmt | Expr) -> str:
    """Render any AST node back to Tetra source text."""
    up = Unparser()
    if isinstance(node, Program):
        return up.program(node)
    if isinstance(node, FunctionDef):
        up.function(node)
        return "\n".join(up.lines) + "\n"
    if isinstance(node, Stmt):
        up.stmt(node, 0)
        return "\n".join(up.lines) + "\n"
    if isinstance(node, Expr):
        return up.expr_text(node)
    raise TypeError(f"cannot unparse {type(node).__name__}")
