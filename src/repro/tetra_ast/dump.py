"""Readable tree dumps of the AST (the ``tetra ast`` CLI subcommand).

The format is indentation-structured and stable, so golden tests can assert
against it; spans are optional to keep goldens robust against formatting
changes in test sources.
"""

from __future__ import annotations

from dataclasses import fields

from .nodes import Node


def dump(node: Node, include_spans: bool = False, _depth: int = 0) -> str:
    """Pretty-print an AST subtree, one node per line."""
    pad = "  " * _depth
    label = type(node).__name__
    scalars: list[str] = []
    child_lines: list[str] = []
    for f in fields(node):
        value = getattr(node, f.name)
        if f.name == "span":
            if include_spans and value.line:
                scalars.append(f"@{value.line}:{value.column}")
            continue
        if isinstance(value, Node):
            child_lines.append(f"{pad}  {f.name}:")
            child_lines.append(dump(value, include_spans, _depth + 2))
        elif isinstance(value, list) and value and isinstance(value[0], Node):
            child_lines.append(f"{pad}  {f.name}: [{len(value)}]")
            for item in value:
                child_lines.append(dump(item, include_spans, _depth + 2))
        elif (isinstance(value, list) and value
              and isinstance(value[0], tuple)
              and all(isinstance(x, Node) for pair in value for x in pair)):
            # Dict literal entries: list of (key, value) node pairs.
            child_lines.append(f"{pad}  {f.name}: [{len(value)} pairs]")
            for pair in value:
                for node in pair:
                    child_lines.append(dump(node, include_spans, _depth + 2))
        elif isinstance(value, list) and not value:
            continue
        elif value is None:
            continue
        else:
            rendered = value.name if hasattr(value, "name") and hasattr(value, "value") else repr(value)
            scalars.append(f"{f.name}={rendered}")
    head = f"{pad}{label}" + (f" {' '.join(scalars)}" if scalars else "")
    return "\n".join([head, *child_lines]) if child_lines else head
