"""AST node definitions for Tetra.

The hierarchy follows the paper's grammar: a program is a list of function
definitions; statements include the four parallel constructs (``parallel``,
``background``, ``parallel for``, ``lock``) as first-class nodes rather than
library calls — that is the paper's central design point.

Nodes are dataclasses with ``eq=False``: identity equality is what the
interpreter and debugger need (nodes are dict keys for breakpoints and cost
attribution).  Structural comparison — used by the parse/unparse round-trip
property tests — is provided by :func:`node_equal`, which ignores spans and
inferred types.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields

from ..source import NO_SPAN, Span


class BinaryOp(enum.Enum):
    """Binary operators, including short-circuiting ``and`` / ``or``."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    POW = "**"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "and"
    OR = "or"

    @property
    def is_comparison(self) -> bool:
        return self in (BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT,
                        BinaryOp.LE, BinaryOp.GT, BinaryOp.GE)

    @property
    def is_logical(self) -> bool:
        return self in (BinaryOp.AND, BinaryOp.OR)

    @property
    def is_arithmetic(self) -> bool:
        return not (self.is_comparison or self.is_logical)


class UnaryOp(enum.Enum):
    NEG = "-"
    POS = "+"
    NOT = "not"


@dataclass(eq=False)
class Node:
    """Base class of every AST node."""

    span: Span = field(default=NO_SPAN, kw_only=True)

    def children(self):
        """Yield all direct child nodes (used by generic walkers)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item


# ----------------------------------------------------------------------
# Types as written in source (distinct from semantic types in repro.types)
# ----------------------------------------------------------------------
@dataclass(eq=False)
class TypeExpr(Node):
    """A type annotation as it appears in the source."""


@dataclass(eq=False)
class PrimitiveTypeExpr(TypeExpr):
    name: str = ""  # "int" | "real" | "string" | "bool"


@dataclass(eq=False)
class ArrayTypeExpr(TypeExpr):
    element: TypeExpr = None  # type: ignore[assignment]


@dataclass(eq=False)
class DictTypeExpr(TypeExpr):
    """``{K: V}`` — an associative array annotation (future-work feature)."""

    key: TypeExpr = None  # type: ignore[assignment]
    value: TypeExpr = None  # type: ignore[assignment]


@dataclass(eq=False)
class TupleTypeExpr(TypeExpr):
    """``(T1, T2, ...)`` — a tuple annotation (future-work feature)."""

    elements: list[TypeExpr] = field(default_factory=list)


@dataclass(eq=False)
class ClassTypeExpr(TypeExpr):
    """A class name used as a type annotation (future-work feature)."""

    name: str = ""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(eq=False)
class Expr(Node):
    """Base class for expressions.  ``ty`` is filled in by the checker."""

    def __post_init__(self) -> None:
        self.ty = None  # annotated by repro.types.check; not a field


@dataclass(eq=False)
class IntLiteral(Expr):
    value: int = 0


@dataclass(eq=False)
class RealLiteral(Expr):
    value: float = 0.0


@dataclass(eq=False)
class StringLiteral(Expr):
    value: str = ""


@dataclass(eq=False)
class BoolLiteral(Expr):
    value: bool = False


@dataclass(eq=False)
class Name(Expr):
    id: str = ""


@dataclass(eq=False)
class ArrayLiteral(Expr):
    elements: list[Expr] = field(default_factory=list)


@dataclass(eq=False)
class TupleLiteral(Expr):
    """``(e1, e2, ...)`` — a fixed-arity heterogeneous value (>= 2 items)."""

    elements: list[Expr] = field(default_factory=list)


@dataclass(eq=False)
class DictLiteral(Expr):
    """``{k1: v1, k2: v2}`` — an associative array literal."""

    entries: list[tuple[Expr, Expr]] = field(default_factory=list)

    def children(self):
        for key, value in self.entries:
            yield key
            yield value


@dataclass(eq=False)
class RangeLiteral(Expr):
    """Inclusive integer range ``[start ... stop]`` (Figure II's ``[1...100]``)."""

    start: Expr = None  # type: ignore[assignment]
    stop: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Index(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Attribute(Expr):
    """``obj.field`` — read (or, as an assignment target, write) a field."""

    base: Expr = None  # type: ignore[assignment]
    attr: str = ""


@dataclass(eq=False)
class MethodCall(Expr):
    """``obj.method(args)`` — invoke a class method on an instance."""

    base: Expr = None  # type: ignore[assignment]
    method: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass(eq=False)
class Call(Expr):
    """A call to a user function or builtin.  Functions are not first-class
    values in Tetra, so the callee is a bare name."""

    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass(eq=False)
class BinOp(Expr):
    op: BinaryOp = BinaryOp.ADD
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Unary(Expr):
    op: UnaryOp = UnaryOp.NEG
    operand: Expr = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(eq=False)
class Stmt(Node):
    """Base class for statements."""


@dataclass(eq=False)
class Block(Node):
    """An indented suite of statements."""

    statements: list[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Assign(Stmt):
    """``target = value`` where target is a Name or an Index chain."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class AugAssign(Stmt):
    """``target op= value`` for ``+= -= *= /= %=``."""

    target: Expr = None  # type: ignore[assignment]
    op: BinaryOp = BinaryOp.ADD
    value: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Unpack(Stmt):
    """``a, b = expr`` — destructure a tuple into assignment targets."""

    targets: list[Expr] = field(default_factory=list)
    value: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class Declare(Stmt):
    """``name type = value`` — an explicitly typed local declaration.

    Inference covers most locals (the paper's design); the explicit form
    exists for the cases inference cannot reach, chiefly empty array and
    dict literals: ``scores {string: int} = {}``.
    """

    name: str = ""
    declared_type: TypeExpr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(eq=False)
class ElifClause(Node):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    elifs: list[ElifClause] = field(default_factory=list)
    orelse: Block | None = None


@dataclass(eq=False)
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class For(Stmt):
    """Sequential ``for var in sequence:``."""

    var: str = ""
    iterable: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class ParallelFor(Stmt):
    """``parallel for var in sequence:`` — iterations may run concurrently;
    the induction variable is private to each worker (paper §IV)."""

    var: str = ""
    iterable: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class ParallelBlock(Stmt):
    """``parallel:`` — each child statement runs in its own thread; the
    block joins them all before continuing (paper §II)."""

    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class BackgroundBlock(Stmt):
    """``background:`` — like ``parallel`` but without the join."""

    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class LockStmt(Stmt):
    """``lock name:`` — mutual exclusion keyed by a name in a separate
    namespace from variables (paper §II)."""

    name: str = ""
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class TryStmt(Stmt):
    """``try:`` / ``catch name:`` — runtime error handling (future work in
    the paper, implemented here).  The error message is bound to ``name``
    (a ``string``) inside the catch block."""

    body: Block = None  # type: ignore[assignment]
    error_name: str = ""
    handler: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class Return(Stmt):
    value: Expr | None = None


@dataclass(eq=False)
class Break(Stmt):
    pass


@dataclass(eq=False)
class Continue(Stmt):
    pass


@dataclass(eq=False)
class Pass(Stmt):
    pass


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass(eq=False)
class Param(Node):
    name: str = ""
    type: TypeExpr = None  # type: ignore[assignment]


@dataclass(eq=False)
class FunctionDef(Node):
    """``def name(p1 T1, p2 T2) R:`` — parameter and return types are
    declared; a missing return type means the function returns nothing."""

    name: str = ""
    params: list[Param] = field(default_factory=list)
    return_type: TypeExpr | None = None
    body: Block = None  # type: ignore[assignment]


@dataclass(eq=False)
class FieldDecl(Node):
    """One typed field inside a ``class`` block: ``name type``."""

    name: str = ""
    type: TypeExpr = None  # type: ignore[assignment]


@dataclass(eq=False)
class ClassDef(Node):
    """``class Name:`` with typed fields and methods (future-work feature).

    Instances are created with ``Name(field1, field2, ...)`` — an implicit
    constructor taking the fields in declaration order.  Methods see the
    instance as an implicit ``self``.  There is no inheritance.
    """

    name: str = ""
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[FunctionDef] = field(default_factory=list)


@dataclass(eq=False)
class Program(Node):
    """A Tetra compilation unit: class and function definitions.

    Execution starts at ``main()``.
    """

    functions: list[FunctionDef] = field(default_factory=list)
    classes: list[ClassDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef | None:
        for fn in self.functions:
            if fn.name == name:
                return fn
        return None

    def class_def(self, name: str) -> ClassDef | None:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


# ----------------------------------------------------------------------
# Structural comparison and traversal
# ----------------------------------------------------------------------
_IGNORED_FIELDS = {"span"}


def node_equal(a: object, b: object) -> bool:
    """Structural equality ignoring spans and inferred types.

    Used by the property test ``parse(unparse(p))`` ≡ ``p``.
    """
    if isinstance(a, Node) or isinstance(b, Node):
        if type(a) is not type(b):
            return False
        for f in fields(a):  # type: ignore[arg-type]
            if f.name in _IGNORED_FIELDS:
                continue
            if not node_equal(getattr(a, f.name), getattr(b, f.name)):
                return False
        return True
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(node_equal(x, y) for x, y in zip(a, b))
    return a == b


def walk(node: Node):
    """Yield ``node`` and all its descendants, depth-first, pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def count_nodes(node: Node) -> int:
    """Number of nodes in the subtree (used by cost-model calibration)."""
    return sum(1 for _ in walk(node))
