"""``tetra serve`` — the hosted, multi-tenant execution service.

A long-running front door that accepts Tetra source + inputs + options
over HTTP (or WebSocket), runs each request in a sandboxed worker
process with the usual guardrails (time / memory / steps / output),
streams output live, and shares one compiled-program cache across all
tenants.  See README "Hosted execution (`tetra serve`)" and DESIGN.md §7.

Layering (each file one concern):

    protocol.py   request validation, limit clamping, run_key identity,
                  exit→HTTP mapping
    quotas.py     per-tenant token-bucket rate + concurrency quotas
    overload.py   admission control (shed-with-Retry-After) and the
                  poison-program circuit breaker
    pool.py       the sandbox worker pool (fork, stream, cancel, watchdog,
                  infra retries, queue-deadline shedding)
    cache.py      the bounded LRU of pure run results (optional crash-
                  atomic JSON persistence)
    chaos.py      seeded serve-layer fault injection (``--chaos-serve``)
    service.py    ExecutionService — validate → breaker → admit →
                  compile → dedup (cache / coalesce) → run; graceful
                  drain
    ws.py         minimal RFC 6455 framing (server and test-client side)
    http.py       the ThreadingHTTPServer transport and ``serve()`` loop
"""

from .cache import ResultCache
from .chaos import ServeFaultPlan
from .http import TetraServeHandler, TetraServer, serve
from .overload import AdmissionController, CircuitBreaker
from .pool import RunHandle, RunnerPool
from .protocol import (
    EXIT_HTTP_STATUS,
    ServeConfig,
    ServeError,
    http_status_for_exit,
    run_key,
    validate_request,
)
from .quotas import TenantQuotas
from .service import ANONYMOUS, ExecutionService

__all__ = [
    "ANONYMOUS",
    "AdmissionController",
    "CircuitBreaker",
    "EXIT_HTTP_STATUS",
    "ExecutionService",
    "ResultCache",
    "RunHandle",
    "RunnerPool",
    "ServeConfig",
    "ServeError",
    "ServeFaultPlan",
    "TenantQuotas",
    "TetraServeHandler",
    "TetraServer",
    "http_status_for_exit",
    "run_key",
    "serve",
    "validate_request",
]
