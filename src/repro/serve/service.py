"""The execution service behind every ``tetra serve`` transport.

:class:`ExecutionService` is transport-neutral — the HTTP handler, the
WebSocket session, the benchmark, and the tests all drive this one
object.  A request's life:

1. **Validate** (:func:`~repro.serve.protocol.validate_request`) — limits
   clamped to the operator's ceilings, unknown fields rejected.
2. **Admit** (:class:`~repro.serve.quotas.TenantQuotas`) — token-bucket
   rate plus a per-tenant concurrency quota; refused requests cost no
   worker time.
3. **Pre-compile** through the shared sha-keyed program cache
   (:func:`repro.api.cached_program`) — a syntax or type error is
   answered immediately (exit 1 → HTTP 422) without occupying a sandbox,
   and a warm entry makes the steady state (a whole classroom running the
   same assignment) compile exactly once, thanks to the single-flight
   cache.  Workers forked later inherit the warm cache for free.
4. **Run** in a sandboxed pool worker (:class:`~repro.serve.pool
   .RunnerPool`), streaming output, with cancel-by-kill and a watchdog.

The quota is released when the run *finishes* (the handle's ``on_done``
hook), not when it is submitted — "max concurrent" means concurrent.
"""

from __future__ import annotations

import itertools
import os
import threading

from ..api import cached_program, program_cache_info
from ..errors import TetraError, exit_code_for
from ..source import SourceFile
from .pool import RunHandle, RunnerPool
from .protocol import ServeConfig, ServeError, validate_request
from .quotas import TenantQuotas

#: Tenant attributed to requests that do not name one.
ANONYMOUS = "anonymous"


class ExecutionService:
    """One multi-tenant Tetra execution service."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        cfg = self.config
        self.quotas = TenantQuotas(rate=cfg.rate, burst=cfg.burst,
                                   max_concurrent=cfg.max_concurrent)
        self.pool = RunnerPool(size=cfg.workers,
                               recycle_after=cfg.recycle_after,
                               max_queue=cfg.max_queue,
                               watchdog_grace=cfg.watchdog_grace)
        self._mu = threading.Lock()
        self._seq = itertools.count(1)
        self._closed = False
        self.requests_total = 0
        self.rejected_total = 0
        self.compile_rejects = 0

    # -- identity ------------------------------------------------------
    def _request_id(self) -> str:
        return f"r{os.getpid():x}-{next(self._seq):06x}"

    # -- core entry points ---------------------------------------------
    def submit(self, payload: object,
               tenant: str = ANONYMOUS) -> RunHandle:
        """Validate, admit, pre-compile, and dispatch one request.

        Returns a :class:`~repro.serve.pool.RunHandle`; compile failures
        return an already-finished handle (the caller streams/reports it
        uniformly).  Raises :class:`ServeError` for refusals (400/413
        malformed, 429 quota, 503 capacity).
        """
        if self._closed:
            raise ServeError(503, "the server is shutting down")
        with self._mu:
            self.requests_total += 1
        try:
            request = validate_request(payload, self.config)
        except ServeError:
            with self._mu:
                self.rejected_total += 1
            raise
        request["tenant"] = tenant
        request["id"] = self._request_id()
        self.quotas.admit(tenant)  # raises ServeError(429)
        try:
            handle = self._dispatch(request)
        except BaseException:
            self.quotas.release(tenant)
            raise
        return handle

    def _dispatch(self, request: dict) -> RunHandle:
        tenant = request["tenant"]
        try:
            # The shared front-end cache: every tenant's identical source
            # hits one compiled tree, and concurrent first-requests are
            # single-flight.  (Workers compile their own instrumented
            # variants on demand; this also rejects broken programs
            # before they cost a sandbox slot.)
            cached_program(request["source"], request["name"],
                           request["entry"])
        except TetraError as exc:
            with self._mu:
                self.compile_rejects += 1
            source = SourceFile.from_string(request["source"],
                                            request["name"])
            handle = RunHandle(request)
            self.quotas.release(tenant)
            handle.finish({
                "status": "error",
                "phase": "compile",
                "exit_code": exit_code_for(exc),
                "output": "",
                "error": exc.attach_source(source).render(),
                "races": None,
                "race_count": 0,
                "metrics": None,
                "schedule": None,
                "wall_ms": 0.0,
            })
            return handle
        handle = self.pool.submit(request)
        handle.on_done = lambda _result: self.quotas.release(tenant)
        return handle

    def run(self, payload: object, tenant: str = ANONYMOUS,
            timeout: float | None = None) -> dict:
        """Submit and block for the result (the ``POST /api/run`` path).

        The default timeout covers the worst legitimate case — the
        request's clamped time limit plus the watchdog grace — so a
        caller can never wedge on a lost run.
        """
        handle = self.submit(payload, tenant)
        if timeout is None:
            timeout = (handle.request.get("time_limit",
                                          self.config.max_time_limit)
                       + self.config.watchdog_grace + 30.0)
        result = dict(handle.wait(timeout))
        result["id"] = handle.id
        return result

    def cancel(self, req_id: str,
               reason: str = "cancelled by the client") -> bool:
        return self.pool.cancel(req_id, reason)

    # -- introspection -------------------------------------------------
    def check(self, payload: object) -> dict:
        """Static diagnostics only (the ``POST /api/check`` path) — no
        quota charge beyond validation, no worker."""
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("source"), str):
            raise ServeError(400, "'source' must be a string")
        source = payload["source"]
        if len(source.encode("utf-8", "surrogatepass")) \
                > self.config.max_source_bytes:
            raise ServeError(
                413, f"source exceeds {self.config.max_source_bytes} bytes")
        from ..api import check_source

        diagnostics = check_source(source, payload.get("name", "<request>"))
        return {
            "ok": not diagnostics,
            "diagnostics": [exc.render() for exc in diagnostics],
        }

    def stats(self) -> dict:
        with self._mu:
            totals = {
                "requests_total": self.requests_total,
                "rejected_total": self.rejected_total,
                "compile_rejects": self.compile_rejects,
            }
        cache = program_cache_info()
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = (cache["hits"] / lookups) if lookups else 0.0
        return {
            **totals,
            "pool": self.pool.stats(),
            "quotas": self.quotas.stats(),
            "program_cache": cache,
        }

    def shutdown(self) -> None:
        self._closed = True
        self.pool.shutdown()
