"""The execution service behind every ``tetra serve`` transport.

:class:`ExecutionService` is transport-neutral — the HTTP handler, the
WebSocket session, the benchmark, and the tests all drive this one
object.  A request's life:

1. **Validate** (:func:`~repro.serve.protocol.validate_request`) — limits
   clamped to the operator's ceilings, unknown fields rejected.
2. **Admit** (:class:`~repro.serve.quotas.TenantQuotas`) — token-bucket
   rate plus a per-tenant concurrency quota; refused requests cost no
   worker time.
3. **Pre-compile** through the shared sha-keyed program cache
   (:func:`repro.api.cached_program`) — a syntax or type error is
   answered immediately (exit 1 → HTTP 422) without occupying a sandbox,
   and a warm entry makes the steady state (a whole classroom running the
   same assignment) compile exactly once, thanks to the single-flight
   cache.  Workers forked later inherit the warm cache for free.
4. **Deduplicate** — the same single-flight idea, one level up.  Every
   validated request has an execution identity, its
   :func:`~repro.serve.protocol.run_key` (program sha, entry, inputs,
   backend, limits, flags).  Two dedup layers consult it:

   * **Result cache** — if the static determinism analysis
     (:mod:`repro.analysis.determinism`) proves the run a pure function
     of its key, a previously stored result is returned without touching
     a sandbox.  Racy thread-backend runs, ``clock()`` readers, chaos
     and schedule-recording runs are *never* cached: replaying one
     sampled schedule as truth would teach a student their racy program
     is deterministic.
   * **Coalescing** — concurrent identical submissions attach to the
     run already in flight instead of starting their own.  Output fans
     out to every waiter live (buffered chunks are replayed to late
     joiners), and the one result finishes them all.  Cancelling one
     waiter detaches just that waiter; only the *last* waiter's cancel
     kills the underlying sandbox run.  Coalescing is safe even for
     nondeterministic programs — every waiter observes one real
     execution, the same guarantee a lone submitter gets.

5. **Run** in a sandboxed pool worker (:class:`~repro.serve.pool
   .RunnerPool`), streaming output, with cancel-by-kill and a watchdog.

The quota is released when the run *finishes* (the handle's ``on_done``
hook), not when it is submitted — "max concurrent" means concurrent.

Lock order, outermost first: ``service._mu`` → ``shared.mu``;
``service._mu`` → ``pool._mu``.  The pool never calls back into the
service while holding its own lock (handles are finished outside
``pool._mu``), so the ``on_done`` → :meth:`_finish_shared` hop cannot
invert the order.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import threading
import time

from ..analysis.determinism import nondeterminism_reason
from ..api import cached_program, program_cache_info
from ..errors import EXIT_CANCELLED, TetraError, exit_code_for
from ..source import SourceFile
from ..stdlib.builtin_time import monotonic_clock
from .cache import ResultCache
from .chaos import ServeFaultPlan
from .overload import AdmissionController, CircuitBreaker
from .pool import RunHandle, RunnerPool, pool_result
from .protocol import ServeConfig, ServeError, run_key, validate_request
from .quotas import TenantQuotas

#: Tenant attributed to requests that do not name one.
ANONYMOUS = "anonymous"


class _SharedRun:
    """One in-flight sandbox execution, shared by its attached waiters."""

    __slots__ = ("key", "exec_request", "handle", "waiters", "chunks",
                 "done", "cancelled", "cacheable", "mu")

    def __init__(self, key: tuple, exec_request: dict, cacheable: bool):
        self.key = key
        self.exec_request = exec_request
        self.handle: _ExecHandle | None = None
        self.waiters: list[RunHandle] = []
        self.chunks: list[str] = []
        self.done = False
        self.cancelled = False
        self.cacheable = cacheable
        self.mu = threading.Lock()


class _ExecHandle(RunHandle):
    """The pool-side handle of a shared run: broadcasts live output to
    every attached waiter and records it for late joiners."""

    def __init__(self, request: dict, shared: _SharedRun):
        # Before super().__init__: RunHandle assigns ``worker_pid`` and
        # the property setter below already needs ``self.shared``.
        self.shared = shared
        self._worker_pid: int | None = None
        super().__init__(request)

    def emit_output(self, text: str) -> None:
        shared = self.shared
        with shared.mu:
            if shared.done:
                return
            shared.chunks.append(text)
            waiters = list(shared.waiters)
        for waiter in waiters:
            waiter.emit_output(text)

    # Waiters surface the sandbox pid (tests and transports poll it to
    # learn a run left the queue), so forward the pool's assignment.
    @property
    def worker_pid(self) -> int | None:
        return self._worker_pid

    @worker_pid.setter
    def worker_pid(self, pid: int | None) -> None:
        self._worker_pid = pid
        shared = self.shared
        with shared.mu:
            waiters = list(shared.waiters)
        for waiter in waiters:
            waiter.worker_pid = pid


class _Entry:
    """The service's registration of one admitted request."""

    __slots__ = ("handle", "shared")

    def __init__(self, handle: RunHandle):
        self.handle = handle
        self.shared: _SharedRun | None = None


class ExecutionService:
    """One multi-tenant Tetra execution service."""

    def __init__(self, config: ServeConfig | None = None, *,
                 chaos: ServeFaultPlan | None = None):
        self.config = config or ServeConfig()
        cfg = self.config
        if chaos is None and cfg.chaos_serve_seed is not None:
            chaos = ServeFaultPlan(cfg.chaos_serve_seed)
        self.chaos = chaos
        self.quotas = TenantQuotas(rate=cfg.rate, burst=cfg.burst,
                                   max_concurrent=cfg.max_concurrent)
        self.admission = AdmissionController(max_queue=cfg.max_queue)
        self.breaker = CircuitBreaker(threshold=cfg.breaker_threshold,
                                      backoff=cfg.breaker_backoff,
                                      backoff_cap=cfg.breaker_backoff_cap)
        self.pool = RunnerPool(size=cfg.workers,
                               recycle_after=cfg.recycle_after,
                               max_queue=cfg.max_queue,
                               watchdog_grace=cfg.watchdog_grace,
                               infra_retries=cfg.infra_retries,
                               infra_retry_backoff=cfg.infra_retry_backoff,
                               chaos=chaos)
        self.result_cache = ResultCache(capacity=cfg.result_cache_size,
                                        path=cfg.result_cache_path)
        self._mu = threading.Lock()
        self._seq = itertools.count(1)
        self._closed = False
        self._draining = False
        #: Set once a drain has fully completed (pool down, cache saved).
        self.drained = threading.Event()
        self._drain_thread: threading.Thread | None = None
        self.drain_cancelled = 0
        #: request id → _Entry for every admitted, unfinished request.
        self._runs: dict[str, _Entry] = {}
        #: run_key → live _SharedRun (removed the moment it finishes or
        #: its last waiter cancels, so a stale run is never joined).
        self._shared: dict[tuple, _SharedRun] = {}
        self.requests_total = 0
        self.rejected_total = 0
        self.compile_rejects = 0
        self.coalesced_total = 0
        self.cancelled_total = 0

    # -- identity ------------------------------------------------------
    def _request_id(self) -> str:
        return f"r{os.getpid():x}-{next(self._seq):06x}"

    # -- core entry points ---------------------------------------------
    def submit(self, payload: object,
               tenant: str = ANONYMOUS) -> RunHandle:
        """Validate, admit, pre-compile, and dispatch one request.

        Returns a :class:`~repro.serve.pool.RunHandle`; compile failures
        return an already-finished handle (the caller streams/reports it
        uniformly).  Raises :class:`ServeError` for refusals (400/413
        malformed, 429 quota, 503 shed/quarantined/capacity/draining).
        Refusals are ordered so a refused request costs nothing: breaker
        and admission fire *before* the quota charge and the sandbox.
        """
        if self._closed or self._draining:
            raise ServeError(503, "the server is draining — no new runs "
                             "are being admitted", retry_after=30.0)
        with self._mu:
            self.requests_total += 1
        try:
            request = validate_request(payload, self.config)
        except ServeError:
            with self._mu:
                self.rejected_total += 1
            raise
        request["tenant"] = tenant
        request["id"] = self._request_id()
        sha = hashlib.sha256(
            request["source"].encode("utf-8")).hexdigest()
        request["program_sha"] = sha
        # Fail-fast order: quarantine first (cheapest, names the program),
        # then occupancy shedding, then the per-tenant quota charge.  A
        # successful breaker admit in the half-open state claims the
        # probe, so any later refusal must hand it back.
        self.breaker.admit(sha)  # raises ServeError(503) when quarantined
        try:
            self.admission.check(self.pool.occupancy(),
                                 request["queue_deadline"])
            self.quotas.admit(tenant)  # raises ServeError(429)
        except BaseException:
            self.breaker.release(sha)
            raise
        waiter = RunHandle(request)
        waiter.on_done = lambda _result: self.quotas.release(tenant)
        entry = _Entry(waiter)
        with self._mu:
            self._runs[request["id"]] = entry
        try:
            self._place(entry, waiter, request)
        except BaseException:
            with self._mu:
                if self._runs.get(request["id"]) is entry:
                    del self._runs[request["id"]]
            self.breaker.release(sha)
            if not waiter.done.is_set():
                waiter.on_done = None
                self.quotas.release(tenant)
            raise
        return waiter

    def _place(self, entry: _Entry, waiter: RunHandle,
               request: dict) -> None:
        """Satisfy ``request``: cached result, an in-flight identical
        run, or a fresh sandbox execution — in that order.

        Breaker contract: every path that does *not* hand the request to
        a fresh sandbox execution (compile reject, cache hit, cancelled
        under us, coalesced join) releases the program's half-open probe
        claim — only a real execution may settle it with a verdict.
        """
        req_id = request["id"]
        sha = request["program_sha"]
        if self.chaos is not None:
            stall = self.chaos.compile_stall()
            if stall:
                time.sleep(stall)
        try:
            # The shared front-end cache: every tenant's identical source
            # hits one compiled tree, and concurrent first-requests are
            # single-flight.  (Workers compile their own instrumented
            # variants on demand; this also rejects broken programs
            # before they cost a sandbox slot.)
            program, _source = cached_program(
                request["source"], request["name"], request["entry"])
        except TetraError as exc:
            with self._mu:
                self.compile_rejects += 1
                if self._runs.get(req_id) is entry:
                    del self._runs[req_id]
            self.breaker.release(sha)
            source = SourceFile.from_string(request["source"],
                                            request["name"])
            waiter.finish({
                "status": "error",
                "phase": "compile",
                "exit_code": exit_code_for(exc),
                "output": "",
                "error": exc.attach_source(source).render(),
                "races": None,
                "race_count": 0,
                "metrics": None,
                "schedule": None,
                "wall_ms": 0.0,
            })
            return
        key = run_key(request)
        cacheable = self._uncacheable_reason(request, program) is None
        if cacheable:
            cached = self.result_cache.get(key)
            if cached is not None:
                with self._mu:
                    if self._runs.get(req_id) is not entry:
                        self.breaker.release(sha)
                        return  # cancelled while we were compiling
                    del self._runs[req_id]
                self.breaker.release(sha)
                result = dict(cached)
                result["cached"] = True
                waiter.dedup = "cache"
                if result.get("output"):
                    waiter.emit_output(result["output"])
                waiter.finish(result)
                return
        with self._mu:
            if self._runs.get(req_id) is not entry:
                # Cancelled between admission and dispatch: the cancel
                # already finished the waiter; starting the sandbox run
                # anyway would burn a worker on a dead request.
                self.breaker.release(sha)
                return
            if self.config.coalesce:
                shared = self._shared.get(key)
                if shared is not None:
                    with shared.mu:
                        if not shared.done and not shared.cancelled:
                            shared.waiters.append(waiter)
                            entry.shared = shared
                            waiter.dedup = "coalesced"
                            self.coalesced_total += 1
                            # Replay what the run printed before we
                            # joined, then the live broadcast takes over.
                            for chunk in shared.chunks:
                                waiter.events.put(("out", chunk))
                            if shared.handle is not None:
                                pid = shared.handle._worker_pid
                                if pid is not None:
                                    waiter.worker_pid = pid
                            # The in-flight execution (not this waiter)
                            # owns the breaker verdict.
                            self.breaker.release(sha)
                            return
            # Fresh execution.  The sandbox run gets its own id (the
            # submitter's id + "x") so a waiter cancel and an execution
            # kill are distinct operations on the pool.
            exec_request = dict(request)
            exec_request["id"] = req_id + "x"
            shared = _SharedRun(key, exec_request, cacheable)
            handle = _ExecHandle(exec_request, shared)
            handle.on_done = \
                lambda result, s=shared: self._finish_shared(s, result)
            shared.waiters.append(waiter)
            entry.shared = shared
            # Submit while still holding our lock: a concurrent cancel
            # of this waiter cannot slip between registration and
            # dispatch, and pool.submit never re-enters the service.
            self.pool.submit(exec_request, handle=handle)
            shared.handle = handle
            if self.config.coalesce:
                self._shared[key] = shared

    def _uncacheable_reason(self, request: dict, program) -> str | None:
        """``None`` when the run is a pure function of its run_key."""
        if request.get("chaos_seed") is not None:
            return "chaos injection perturbs the schedule"
        if request.get("record_schedule"):
            return "schedule recordings are per-run artifacts"
        if request.get("metrics"):
            return "metrics report per-run wall-clock timings"
        return nondeterminism_reason(program, request["backend"])

    def _finish_shared(self, shared: _SharedRun, result: dict) -> None:
        """The shared run completed: store (if pure), fan out, unregister.

        Runs on whatever thread finished the pool handle — the router,
        the watchdog, or a cancel — always outside ``pool._mu``.
        """
        # Breaker verdict for this execution.  Only *worker-killing*
        # outcomes (a real crash/OOM, or a wedge the watchdog ended) are
        # failures; any worker-produced result — even a program
        # diagnostic — proves the program harmless.  Everything else
        # (cancel, shutdown, infra loss, shed) is no verdict at all and
        # merely hands back a half-open probe claim.
        sha = shared.key[0]
        cause = result.get("cause")
        if cause == "crash":
            self.breaker.record_failure(sha, "crashed its sandbox worker")
        elif cause == "watchdog":
            self.breaker.record_failure(
                sha, "been killed by the server watchdog")
        elif result.get("phase") in ("run", "compile", "internal"):
            self.breaker.record_success(sha)
        else:
            self.breaker.release(sha)
        with shared.mu:
            shared.done = True
            waiters = list(shared.waiters)
            shared.waiters.clear()
        with self._mu:
            if self._shared.get(shared.key) is shared:
                del self._shared[shared.key]
            for waiter in waiters:
                entry = self._runs.get(waiter.id)
                if entry is not None and entry.handle is waiter:
                    del self._runs[waiter.id]
        # Store only completed program-level outcomes: clean runs and
        # program diagnostics.  Races (exit 3) never reach here cacheable
        # (racy = nondeterministic); guardrail trips (4), deadlock (5),
        # cancellations (130), worker crashes and internal errors are
        # events of *this* execution, not properties of the program.
        if (shared.cacheable
                and result.get("phase") in ("run", "compile")
                and result.get("exit_code") in (0, 1)
                and result.get("status") in ("ok", "error")):
            self.result_cache.put(shared.key, result)
        for waiter in waiters:
            waiter.finish(dict(result))

    def run(self, payload: object, tenant: str = ANONYMOUS,
            timeout: float | None = None) -> dict:
        """Submit and block for the result (the ``POST /api/run`` path).

        The default timeout covers the worst legitimate case — the
        request's clamped time limit plus the watchdog grace — so a
        caller can never wedge on a lost run.
        """
        handle = self.submit(payload, tenant)
        if timeout is None:
            timeout = (handle.request.get("time_limit",
                                          self.config.max_time_limit)
                       + self.config.watchdog_grace + 30.0)
        result = dict(handle.wait(timeout))
        result["id"] = handle.id
        if handle.dedup:
            result["dedup"] = handle.dedup
        return result

    def cancel(self, req_id: str,
               reason: str = "cancelled by the client") -> bool:
        """Cancel one admitted request, wherever it is in its life.

        Detaches the waiter from its shared run; the underlying sandbox
        execution is killed only when this was the *last* waiter.  A
        request cancelled before dispatch (still compiling, still being
        placed) is marked so :meth:`_place` never starts it.
        """
        kill_id = None
        with self._mu:
            entry = self._runs.pop(req_id, None)
            if entry is not None:
                self.cancelled_total += 1
                shared = entry.shared
                if shared is not None:
                    with shared.mu:
                        try:
                            shared.waiters.remove(entry.handle)
                        except ValueError:
                            pass
                        if (not shared.waiters and not shared.done
                                and not shared.cancelled):
                            shared.cancelled = True
                            kill_id = shared.exec_request["id"]
                    if (kill_id is not None
                            and self._shared.get(shared.key) is shared):
                        del self._shared[shared.key]
        if entry is None:
            # Not one of ours (already finished, or a bare pool id from
            # an older client) — let the pool decide.
            return self.pool.cancel(req_id, reason)
        entry.handle.finish(pool_result(
            "cancelled", EXIT_CANCELLED,
            f"the run was cancelled — {reason}"))
        if kill_id is not None:
            self.pool.cancel(kill_id, reason)
        return True

    # -- drain ---------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self, grace: float | None = None) -> threading.Event:
        """Stop admissions and wind the service down gracefully.

        New submissions are refused with 503 immediately; in-flight runs
        get up to ``grace`` seconds (default ``config.drain_grace``) to
        finish, then are cancelled with whatever output they produced.
        The pool is shut down and the result cache persisted.  Returns
        the event set once the drain has fully completed; idempotent —
        a second call just returns the same event.
        """
        with self._mu:
            if self._draining or self._closed:
                return self.drained
            self._draining = True
        if grace is None:
            grace = self.config.drain_grace
        self._drain_thread = threading.Thread(
            target=self._drain, args=(float(grace),),
            name="tetra-serve-drain", daemon=True)
        self._drain_thread.start()
        return self.drained

    def _drain(self, grace: float) -> None:
        deadline = monotonic_clock() + grace
        while monotonic_clock() < deadline:
            with self._mu:
                if not self._runs:
                    break
            time.sleep(0.05)
        with self._mu:
            leftovers = list(self._runs)
        for req_id in leftovers:
            if self.cancel(req_id, reason="the server is draining and "
                           "the drain deadline passed"):
                self.drain_cancelled += 1
        self.shutdown()
        self.drained.set()

    # -- introspection -------------------------------------------------
    def check(self, payload: object) -> dict:
        """Static diagnostics only (the ``POST /api/check`` path) — no
        quota charge beyond validation, no worker."""
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("source"), str):
            raise ServeError(400, "'source' must be a string")
        source = payload["source"]
        if len(source.encode("utf-8", "surrogatepass")) \
                > self.config.max_source_bytes:
            raise ServeError(
                413, f"source exceeds {self.config.max_source_bytes} bytes")
        from ..api import check_source

        diagnostics = check_source(source, payload.get("name", "<request>"))
        return {
            "ok": not diagnostics,
            "diagnostics": [exc.render() for exc in diagnostics],
        }

    def stats(self) -> dict:
        with self._mu:
            totals = {
                "requests_total": self.requests_total,
                "rejected_total": self.rejected_total,
                "compile_rejects": self.compile_rejects,
            }
            dedup = {
                "coalesced": self.coalesced_total,
                "cancelled": self.cancelled_total,
                "inflight_shared": len(self._shared),
            }
        cache = program_cache_info()
        lookups = cache["hits"] + cache["misses"]
        cache["hit_rate"] = (cache["hits"] / lookups) if lookups else 0.0
        pool_stats = self.pool.stats()
        result_cache = self.result_cache.stats()
        dedup["cache_hits"] = result_cache["hits"]
        dedup["executions"] = pool_stats["submitted"]
        dedup["result_cache"] = result_cache
        overload = {
            "admission": self.admission.stats(),
            "breaker": self.breaker.stats(),
            "shed_expired": pool_stats["shed_expired"],
            "infra_retried": pool_stats["infra_retried"],
            "draining": self._draining,
            "drain_cancelled": self.drain_cancelled,
        }
        out = {
            **totals,
            "dedup": dedup,
            "overload": overload,
            "pool": pool_stats,
            "quotas": self.quotas.stats(),
            "program_cache": cache,
        }
        if self.chaos is not None:
            out["chaos"] = self.chaos.stats()
        return out

    def shutdown(self) -> None:
        """Stop the service immediately (idempotent; :meth:`begin_drain`
        ends here too, after its grace period)."""
        self._closed = True
        # Closing the pool finishes every in-flight exec handle with a
        # cancelled result, which fans out to the waiters via on_done.
        self.pool.shutdown()
        self.result_cache.save()
