"""Per-tenant admission control: token-bucket rate limits + run quotas.

A tenant is whatever string the transport attributes the request to (the
``X-Tetra-Tenant`` header; ``"anonymous"`` otherwise).  Admission asks two
questions, both answered under one lock:

* **Rate**: a classic token bucket — ``burst`` tokens capacity, refilled
  at ``rate`` tokens/second — absorbs a classroom's click-storms while
  bounding sustained throughput per tenant.  ``rate=0`` is the operator's
  off switch: once the initial burst is spent the tenant is refused
  cleanly (no division by the zero refill rate, no bogus wait estimate).
* **Concurrency**: at most ``max_concurrent`` *running* requests per
  tenant, so a single tenant cannot occupy every sandbox worker and
  starve the rest of the class.

Refusals carry ``retry_after`` so clients can back off politely; the
advertised wait is always capped at :data:`RETRY_AFTER_CAP` — a client
told "retry in 1000 seconds" treats the number as noise, and a disabled
tenant has no honest wait at all.

The bucket table is bounded two ways, both **lossless**: a bucket may
only be dropped when it is indistinguishable from a fresh one (no active
runs *and* fully refilled).  Evicting anything else would resurrect the
tenant with a free burst on its next request — exactly what a tenant
mid-rate-storm (or one the operator disabled) must not get.  Buckets
that cannot refill (``rate=0``, tokens spent) are therefore pinned in
the table by design.
"""

from __future__ import annotations

import threading

from ..stdlib.builtin_time import monotonic_clock
from .protocol import ServeError

#: Largest wait (seconds) ever advertised in ``Retry-After``.
RETRY_AFTER_CAP = 60.0

#: Bucket-table size that triggers a prune sweep before a new tenant is
#: added.  A soft cap: only fresh-equivalent buckets are evicted, so a
#: storm of non-idle tenants can still grow past it (correctness over
#: bound; ``stats()`` exposes the size).
DEFAULT_MAX_TENANTS = 4096


class _Bucket:
    __slots__ = ("tokens", "stamp", "active")

    def __init__(self, burst: float, now: float):
        self.tokens = burst
        self.stamp = now
        self.active = 0


class TenantQuotas:
    """Thread-safe per-tenant admission state.

    ``clock`` is injectable for deterministic tests; it must be monotonic
    seconds.  Buckets for idle tenants are pruned once they are full again
    and have no active runs, so the table stays proportional to *current*
    tenants, not everyone ever seen.
    """

    def __init__(self, rate: float = 10.0, burst: int = 20,
                 max_concurrent: int = 4, clock=monotonic_clock,
                 max_tenants: int = DEFAULT_MAX_TENANTS):
        self.rate = max(0.0, float(rate))
        self.burst = max(0.0, float(burst))
        self.max_concurrent = int(max_concurrent)
        self.max_tenants = max(1, int(max_tenants))
        self._clock = clock
        self._mu = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        self.admitted = 0
        self.rate_limited = 0
        self.over_concurrency = 0
        self.pruned = 0

    def _refill(self, bucket: _Bucket, now: float) -> None:
        bucket.tokens = min(
            self.burst,
            bucket.tokens + (now - bucket.stamp) * self.rate,
        )
        bucket.stamp = now

    def _prune_locked(self, now: float) -> None:
        """Drop every bucket indistinguishable from a fresh one.

        Only idle-and-fully-refilled buckets qualify: evicting a bucket
        with spent tokens would hand its tenant a brand-new burst on the
        next request — a rate-limited tenant mid-storm (or a disabled
        ``rate=0`` tenant) would be resurrected at full credit.
        """
        for tenant in list(self._buckets):
            bucket = self._buckets[tenant]
            if bucket.active:
                continue
            self._refill(bucket, now)
            if bucket.tokens >= self.burst:
                del self._buckets[tenant]
                self.pruned += 1

    def _bucket(self, tenant: str, now: float) -> _Bucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            if len(self._buckets) >= self.max_tenants:
                self._prune_locked(now)
            bucket = self._buckets[tenant] = _Bucket(self.burst, now)
        else:
            self._refill(bucket, now)
        return bucket

    def admit(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise ``ServeError(429)``.

        On success the tenant's active-run count is incremented — callers
        must pair every successful ``admit`` with a :meth:`release`.
        """
        with self._mu:
            now = self._clock()
            bucket = self._bucket(tenant, now)
            if bucket.active >= self.max_concurrent:
                self.over_concurrency += 1
                raise ServeError(
                    429,
                    f"tenant {tenant!r} already has {bucket.active} "
                    f"running request(s) (limit {self.max_concurrent}) — "
                    "wait for one to finish",
                    retry_after=1.0,
                )
            if bucket.tokens < 1.0:
                self.rate_limited += 1
                if self.rate <= 0.0:
                    # The operator's off switch: no refill is coming, so
                    # there is no honest wait to advertise — refuse with
                    # the capped default instead of dividing by zero.
                    raise ServeError(
                        429,
                        f"tenant {tenant!r} has requests disabled "
                        "(rate 0) — contact the operator",
                        retry_after=RETRY_AFTER_CAP,
                    )
                wait = min((1.0 - bucket.tokens) / self.rate,
                           RETRY_AFTER_CAP)
                raise ServeError(
                    429,
                    f"tenant {tenant!r} is over its request rate "
                    f"({self.rate:g}/s, burst {self.burst:g}) — retry in "
                    f"{wait:.1f}s",
                    retry_after=wait,
                )
            bucket.tokens -= 1.0
            bucket.active += 1
            self.admitted += 1

    def release(self, tenant: str) -> None:
        """Mark one of ``tenant``'s admitted requests finished."""
        with self._mu:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                return
            bucket.active = max(0, bucket.active - 1)
            # Prune tenants that are idle *and* fully refilled — keeping
            # them would only replay the same full-bucket state later.
            self._refill(bucket, self._clock())
            if bucket.active == 0 and bucket.tokens >= self.burst:
                del self._buckets[tenant]

    def active(self, tenant: str) -> int:
        with self._mu:
            bucket = self._buckets.get(tenant)
            return bucket.active if bucket is not None else 0

    def stats(self) -> dict:
        with self._mu:
            return {
                "tenants_tracked": len(self._buckets),
                "active_runs": sum(b.active
                                   for b in self._buckets.values()),
                "admitted": self.admitted,
                "rate_limited": self.rate_limited,
                "over_concurrency": self.over_concurrency,
                "pruned": self.pruned,
                "rate": self.rate,
                "burst": self.burst,
                "max_concurrent": self.max_concurrent,
                "max_tenants": self.max_tenants,
            }
