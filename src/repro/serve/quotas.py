"""Per-tenant admission control: token-bucket rate limits + run quotas.

A tenant is whatever string the transport attributes the request to (the
``X-Tetra-Tenant`` header; ``"anonymous"`` otherwise).  Admission asks two
questions, both answered under one lock:

* **Rate**: a classic token bucket — ``burst`` tokens capacity, refilled
  at ``rate`` tokens/second — absorbs a classroom's click-storms while
  bounding sustained throughput per tenant.
* **Concurrency**: at most ``max_concurrent`` *running* requests per
  tenant, so a single tenant cannot occupy every sandbox worker and
  starve the rest of the class.

Refusals carry ``retry_after`` so clients can back off politely.
"""

from __future__ import annotations

import threading

from ..stdlib.builtin_time import monotonic_clock
from .protocol import ServeError


class _Bucket:
    __slots__ = ("tokens", "stamp", "active")

    def __init__(self, burst: float, now: float):
        self.tokens = burst
        self.stamp = now
        self.active = 0


class TenantQuotas:
    """Thread-safe per-tenant admission state.

    ``clock`` is injectable for deterministic tests; it must be monotonic
    seconds.  Buckets for idle tenants are pruned once they are full again
    and have no active runs, so the table stays proportional to *current*
    tenants, not everyone ever seen.
    """

    def __init__(self, rate: float = 10.0, burst: int = 20,
                 max_concurrent: int = 4, clock=monotonic_clock):
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_concurrent = int(max_concurrent)
        self._clock = clock
        self._mu = threading.Lock()
        self._buckets: dict[str, _Bucket] = {}
        self.admitted = 0
        self.rate_limited = 0
        self.over_concurrency = 0

    def _bucket(self, tenant: str, now: float) -> _Bucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = _Bucket(self.burst, now)
        else:
            bucket.tokens = min(
                self.burst,
                bucket.tokens + (now - bucket.stamp) * self.rate,
            )
            bucket.stamp = now
        return bucket

    def admit(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise ``ServeError(429)``.

        On success the tenant's active-run count is incremented — callers
        must pair every successful ``admit`` with a :meth:`release`.
        """
        with self._mu:
            now = self._clock()
            bucket = self._bucket(tenant, now)
            if bucket.active >= self.max_concurrent:
                self.over_concurrency += 1
                raise ServeError(
                    429,
                    f"tenant {tenant!r} already has {bucket.active} "
                    f"running request(s) (limit {self.max_concurrent}) — "
                    "wait for one to finish",
                    retry_after=1.0,
                )
            if bucket.tokens < 1.0:
                self.rate_limited += 1
                wait = (1.0 - bucket.tokens) / self.rate if self.rate \
                    else 60.0
                raise ServeError(
                    429,
                    f"tenant {tenant!r} is over its request rate "
                    f"({self.rate:g}/s, burst {self.burst:g}) — retry in "
                    f"{wait:.1f}s",
                    retry_after=wait,
                )
            bucket.tokens -= 1.0
            bucket.active += 1
            self.admitted += 1

    def release(self, tenant: str) -> None:
        """Mark one of ``tenant``'s admitted requests finished."""
        with self._mu:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                return
            bucket.active = max(0, bucket.active - 1)
            # Prune tenants that are idle *and* fully refilled — keeping
            # them would only replay the same full-bucket state later.
            now = self._clock()
            self._bucket(tenant, now)
            if bucket.active == 0 and bucket.tokens >= self.burst:
                del self._buckets[tenant]

    def active(self, tenant: str) -> int:
        with self._mu:
            bucket = self._buckets.get(tenant)
            return bucket.active if bucket is not None else 0

    def stats(self) -> dict:
        with self._mu:
            return {
                "tenants_tracked": len(self._buckets),
                "active_runs": sum(b.active
                                   for b in self._buckets.values()),
                "admitted": self.admitted,
                "rate_limited": self.rate_limited,
                "over_concurrency": self.over_concurrency,
                "rate": self.rate,
                "burst": self.burst,
                "max_concurrent": self.max_concurrent,
            }
