"""Sandboxed run workers for ``tetra serve``.

Each worker is a separate OS **process** — the unit of isolation the
hosted scenario needs: a crashed or OOM-killed student program takes down
its own worker, never the server or a sibling tenant's run.  The design
borrows the proc backend's shape (persistent processes that bootstrap
through the sha-keyed program cache — free under ``fork``, which inherits
the parent's warm cache) but serves *whole requests* instead of loop
chunks:

* One duplex :func:`multiprocessing.Pipe` per worker.  A killed worker
  corrupts nothing shared — the parent sees EOF on that worker's pipe and
  respawns it, which is what makes **cancel-by-kill** and crash recovery
  safe (a shared queue's internal lock could be held by the victim).
* Output **streams**: the worker runs the program with an IO channel that
  forwards every chunk to the parent as it is written, so ``/api/stream``
  and the WebSocket endpoint show output live.
* Workers **recycle** after ``recycle_after`` requests: the parent retires
  the old process and starts a fresh one *before* routing more work to
  it, reclaiming whatever a thousand student programs leaked.
* A parent-side **watchdog** kills any worker that blows well past its
  run's time limit — the in-worker guardrail fires at statement
  boundaries, so a run wedged inside a join or a blocking wait still
  cannot hold a sandbox slot forever.

Workers are *not* daemonic: a request may pick ``backend=proc``, and the
proc backend's own pool processes must be legal children.  Orphan safety
comes from the pipe instead — when the parent dies, the worker's next
``recv`` raises EOF and it exits.

Worker deaths are **classified** by a start-ack: the worker sends
``("start", id)`` the moment it picks a request up, immediately before
user code runs.  A death *before* the ack is infrastructure's fault
(spawn failure, recycle race, severed pipe) — the pool silently retries
the dispatch on a fresh worker with capped exponential backoff
(``infra_retries`` × ``infra_retry_backoff``) instead of surfacing a
500.  A death *after* the ack is the program's doing (crash, OOM,
deliberate kill): never retried, reported as a crash, and counted by
the service's circuit breaker.  Queued requests also carry an optional
queue deadline (``request["queue_deadline"]``): the dispatch sweep sheds
any never-dispatched request whose deadline passed with a 503-shaped
result, so an optimistic admission estimate cannot become an unbounded
wait.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import signal
import threading
import time
import traceback
from collections import deque
from multiprocessing.connection import wait as _conn_wait

from ..errors import (
    EXIT_CANCELLED,
    EXIT_LIMIT,
    EXIT_RACES,
    TetraError,
    exit_code_for,
)
from ..stdlib.builtin_time import monotonic_clock
from ..stdlib.io import CapturingIO
from .protocol import ServeError

#: Statuses the pool itself produces (workers produce run statuses).
_CRASH_RESULT = "the worker process died mid-run (crashed or OOM-killed)"


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
#: Serializes every send on the worker's pipe: program threads stream
#: output concurrently, and the final result must not interleave.
_send_mu = threading.Lock()


class _StreamIO(CapturingIO):
    """A :class:`CapturingIO` that also ships each chunk to the parent the
    moment it is written — the live half of ``/api/stream``."""

    def __init__(self, conn, req_id: str, inputs):
        super().__init__(inputs)
        self._conn = conn
        self._req_id = req_id

    def write(self, text: str) -> None:
        with self._write_lock:
            self._chunks.append(text)
            over = self._meter(text)
        if not over:
            with _send_mu:
                try:
                    self._conn.send(("out", self._req_id, text))
                except (BrokenPipeError, OSError):
                    pass  # parent gone; the run still completes locally
        if over:
            self._overflow()


def _run_request(conn, req: dict) -> dict:
    """Execute one validated request; everything in the result is plain
    picklable data (diagnostics pre-rendered worker-side)."""
    from ..api import run_source
    from ..analysis import render_race_panel
    from ..runtime import RuntimeConfig
    from ..source import SourceFile

    io = _StreamIO(conn, req["id"], req.get("inputs") or ())
    config = RuntimeConfig(
        num_workers=req.get("workers"),
        chunking=req.get("chunking", "block"),
        step_limit=req["step_limit"],
    )
    # The service's time budget is host seconds; sim/coop clocks tick
    # virtual units, where "5.0" would abort a healthy run instantly.
    # Deterministic backends are bounded by the step limit and the parent
    # watchdog instead.
    host_clock = req["backend"] in ("thread", "sequential", "proc")
    t0 = monotonic_clock()
    try:
        result = run_source(
            req["source"],
            backend=req["backend"],
            name=req.get("name", "<request>"),
            entry=req.get("entry", "main"),
            detect_races=req["detect_races"],
            metrics=req["metrics"],
            time_limit=req["time_limit"] if host_clock else 0.0,
            memory_limit=req["memory_limit"],
            output_limit=req["output_limit"],
            chaos_seed=req.get("chaos_seed"),
            record_schedule=req.get("record_schedule", False),
            config=config,
            io=io,
            on_error="return",
        )
    except TetraError as exc:
        # Compile-time diagnostics raise even under on_error="return";
        # the parent pre-compiles so this is the rare cache-variant case.
        source = SourceFile.from_string(req["source"],
                                        req.get("name", "<request>"))
        return {
            "status": "error",
            "phase": "compile",
            "exit_code": exit_code_for(exc),
            "output": io.output,
            "error": exc.attach_source(source).render(),
            "races": None,
            "race_count": 0,
            "metrics": None,
            "schedule": None,
            "wall_ms": (monotonic_clock() - t0) * 1000.0,
        }
    wall_ms = (monotonic_clock() - t0) * 1000.0
    code = 0
    error_text = None
    if result.error is not None:
        code = exit_code_for(result.error)
        source = SourceFile.from_string(req["source"],
                                        req.get("name", "<request>"))
        error_text = result.error.attach_source(source).render()
    races_text = None
    if req["detect_races"]:
        source = SourceFile.from_string(req["source"],
                                        req.get("name", "<request>"))
        races_text = render_race_panel(result.races, source)
        if result.races and code == 0:
            code = EXIT_RACES
    return {
        "status": result.aborted_by or "ok",
        "phase": "run",
        "exit_code": code,
        "output": result.output,
        "error": error_text,
        "races": races_text,
        "race_count": len(result.races),
        "metrics": result.metrics.render() if result.metrics is not None
        else None,
        "schedule": result.schedule,
        "wall_ms": wall_ms,
    }


def _worker_main(conn, worker_index: int) -> None:
    """One sandbox worker: serve requests off the pipe until retirement
    (a ``None`` message), parent death (EOF), or a kill."""
    def _term(signum, frame):
        raise SystemExit(128 + signum)

    try:
        # The parent coordinates shutdown; Ctrl-C at the server terminal
        # must not kill workers out from under it.  SIGTERM (cancel /
        # watchdog) raises SystemExit so multiprocessing's atexit cleanup
        # still reaps any proc-backend grandchildren.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, _term)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # Under fork this process inherited the parent's program-cache lock
    # (acquired around Process.start, so never mid-critical-section) and
    # single-flight table; both must be reset — an inherited in-flight
    # Event would never be set in this process.
    from .. import api as api_mod

    api_mod._cache_lock = threading.Lock()
    api_mod._inflight = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # parent gone
        except KeyboardInterrupt:  # pragma: no cover - masked above
            return
        if msg is None:
            try:
                conn.close()
            except OSError:
                pass
            return
        # Start-ack: everything after this line is the program's fault.
        # The parent uses it to classify a death as infra (retry) vs
        # program-caused (crash, breaker-counted) — see _on_worker_death.
        with _send_mu:
            try:
                conn.send(("start", msg["id"], None))
            except (BrokenPipeError, OSError):
                return
        try:
            payload = _run_request(conn, msg)
        except (SystemExit, KeyboardInterrupt):
            # A cancel/watchdog SIGTERM mid-run: die as asked — catching
            # it here would leave a "killed" worker alive and recv-ing.
            raise
        except BaseException:  # noqa: BLE001 - shipped to the parent
            payload = {
                "status": "error",
                "phase": "internal",
                "exit_code": 1,
                "output": "",
                "error": "internal error in the serve worker:\n"
                         + traceback.format_exc(),
                "races": None,
                "race_count": 0,
                "metrics": None,
                "schedule": None,
                "wall_ms": 0.0,
            }
        with _send_mu:
            try:
                conn.send(("done", msg["id"], payload))
            except (BrokenPipeError, OSError):
                return


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class RunHandle:
    """The parent's view of one submitted request: a stream of
    ``("out", text)`` events ending in ``("done", result)``."""

    def __init__(self, request: dict):
        self.request = request
        self.id = request["id"]
        self.events: queue_mod.Queue = queue_mod.Queue()
        self.result: dict | None = None
        self.done = threading.Event()
        self.worker_pid: int | None = None
        self.started_at: float | None = None
        #: The worker's start-ack arrived: user code is (about to be)
        #: running, so a worker death is now the program's fault.
        self.run_started = False
        #: Transient-infra redispatches consumed so far.
        self.infra_retries = 0
        #: Earliest time the dispatch sweep may (re)assign this handle.
        self.retry_at: float | None = None
        #: Queue deadline (absolute): a never-dispatched handle is shed
        #: once this passes.  Cleared on first dispatch.
        self.expires_at: float | None = None
        #: Called exactly once with the result (quota release hooks).
        self.on_done = None
        #: ``"coalesced"`` / ``"cache"`` when the service satisfied this
        #: request without its own sandbox run; ``None`` otherwise.
        self.dedup: str | None = None

    def emit_output(self, text: str) -> None:
        """Deliver one chunk of live output (a no-op once finished)."""
        if not self.done.is_set():
            self.events.put(("out", text))

    def finish(self, result: dict) -> None:
        if self.done.is_set():
            return
        self.result = result
        self.done.set()
        self.events.put(("done", result))
        hook, self.on_done = self.on_done, None
        if hook is not None:
            hook(result)

    def wait(self, timeout: float | None = None) -> dict:
        """Block until the run finishes; raises ``ServeError(504)`` on
        timeout (the pool watchdog normally fires first)."""
        if not self.done.wait(timeout):
            raise ServeError(504, "the run did not finish in time")
        return self.result


def pool_result(status: str, exit_code: int, message: str, *,
                cause: str | None = None,
                http_status: int | None = None,
                retry_after: float | None = None) -> dict:
    """A result the *pool* synthesizes when no worker payload exists
    (crash, cancellation, shutdown, watchdog kill, shed).

    ``cause`` names the server-side event ("crash" / "watchdog" /
    "infra" / "cancel" / "shutdown" / "shed") so the service can decide
    what feeds the circuit breaker; ``http_status`` overrides the
    exit-code→status mapping for conditions the uniform exit codes do
    not express (503 shed, 500 worker loss)."""
    result = {
        "status": status,
        "phase": "serve",
        "exit_code": exit_code,
        "output": "",
        "error": message,
        "races": None,
        "race_count": 0,
        "metrics": None,
        "schedule": None,
        "wall_ms": 0.0,
    }
    if cause is not None:
        result["cause"] = cause
    if http_status is not None:
        result["http_status"] = http_status
    if retry_after is not None:
        result["retry_after"] = retry_after
    return result


class _Worker:
    __slots__ = ("index", "proc", "conn", "handle", "served")

    def __init__(self, index, proc, conn):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.handle: RunHandle | None = None
        self.served = 0


class RunnerPool:
    """A persistent set of sandbox workers plus the routing thread."""

    def __init__(self, size: int = 2, recycle_after: int = 0,
                 max_queue: int = 32, watchdog_grace: float = 3.0,
                 infra_retries: int = 2,
                 infra_retry_backoff: float = 0.05,
                 chaos=None):
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(method)
        self._mu = threading.Lock()
        self._workers: dict[int, _Worker] = {}
        self._handles: dict[str, RunHandle] = {}
        self._pending: deque[RunHandle] = deque()
        self._retired: list = []
        self._next_index = 0
        self._closed = False
        self.size = max(1, int(size))
        self.recycle_after = int(recycle_after)
        self.max_queue = int(max_queue)
        self.watchdog_grace = float(watchdog_grace)
        self.infra_retries = max(0, int(infra_retries))
        self.infra_retry_backoff = float(infra_retry_backoff)
        #: Optional :class:`~repro.serve.chaos.ServeFaultPlan`.
        self.chaos = chaos
        self.submitted = 0
        self.served = 0
        self.crashed = 0
        self.recycled = 0
        self.cancelled = 0
        self.watchdog_kills = 0
        self.infra_retried = 0
        self.shed_expired = 0
        #: EWMA of recent run durations (seconds) — feeds the admission
        #: controller's wait estimate.
        self._avg_run_s = 0.05
        with self._mu:
            for _ in range(self.size):
                self._spawn_locked()
        self._router = threading.Thread(target=self._route,
                                        name="tetra-serve-router",
                                        daemon=True)
        self._router.start()

    # -- lifecycle -----------------------------------------------------
    def _spawn_locked(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        index = self._next_index
        self._next_index += 1
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, index),
            name=f"tetra-serve-worker-{index}",
            daemon=False,  # may parent a proc-backend pool
        )
        # Under fork a child inherits every mutex as-is; hold the program
        # cache's lock across the fork so the worker never inherits it
        # mid-critical-section (same dance as the proc backend's pool).
        from ..api import _cache_lock

        with _cache_lock:
            proc.start()
        child_conn.close()
        worker = _Worker(index, proc, parent_conn)
        self._workers[index] = worker
        return worker

    def _retire_locked(self, worker: _Worker, *, kill: bool) -> None:
        """Remove ``worker`` from the registry; reaped by the router."""
        self._workers.pop(worker.index, None)
        self._retired.append((worker, kill, monotonic_clock()))

    def _reap_retired(self) -> None:
        """Escalate politely-retired workers that ignored their sentinel
        and join() finished ones (non-daemonic children must be reaped)."""
        keep = []
        for worker, kill, stamp in self._retired:
            proc = worker.proc
            if kill:
                if proc.is_alive():
                    proc.terminate()
                kill = False
            if proc.is_alive():
                if monotonic_clock() - stamp > 5.0:
                    proc.kill()
                keep.append((worker, kill, stamp))
            else:
                proc.join(timeout=0.1)
                try:
                    worker.conn.close()
                except OSError:
                    pass
        self._retired = keep

    def shutdown(self) -> None:
        with self._mu:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
            pending = list(self._pending)
            self._pending.clear()
        for handle in pending:
            handle.finish(pool_result(
                "cancelled", EXIT_CANCELLED, "the server is shutting down"))
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = monotonic_clock() + 2.0
        for worker in workers:
            worker.proc.join(
                timeout=max(0.0, deadline - monotonic_clock()))
        for worker in workers:
            if worker.proc.is_alive():
                worker.proc.terminate()
        for worker in workers:
            if worker.proc.is_alive():
                worker.proc.join(timeout=0.5)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=0.5)
            if worker.handle is not None:
                worker.handle.finish(pool_result(
                    "cancelled", EXIT_CANCELLED,
                    "the server is shutting down"))
            try:
                worker.conn.close()
            except OSError:
                pass
        with self._mu:
            # The router is gone; escalate anything still retired NOW —
            # a lingering non-daemonic child would hang interpreter exit.
            for worker, _kill, _stamp in self._retired:
                if worker.proc.is_alive():
                    worker.proc.kill()
            for worker, _kill, _stamp in self._retired:
                worker.proc.join(timeout=1.0)
                try:
                    worker.conn.close()
                except OSError:
                    pass
            self._retired = []

    # -- submission ----------------------------------------------------
    def submit(self, request: dict,
               handle: RunHandle | None = None) -> RunHandle:
        """Queue one request for a sandbox worker.  The service may pass
        its own ``handle`` (a broadcasting subclass for coalesced runs);
        the pool treats it exactly like one it built itself."""
        if handle is None:
            handle = RunHandle(request)
        deadline = request.get("queue_deadline")
        with self._mu:
            if self._closed:
                raise ServeError(503, "the server is shutting down")
            idle = self._idle_worker_locked()
            if idle is None and len(self._pending) >= self.max_queue:
                raise ServeError(
                    503,
                    f"server is at capacity ({self.max_queue} requests "
                    "queued) — retry shortly",
                    retry_after=1.0,
                )
            self._handles[handle.id] = handle
            self.submitted += 1
            if idle is not None:
                self._assign_locked(idle, handle)
            else:
                if deadline:
                    handle.expires_at = monotonic_clock() + float(deadline)
                self._pending.append(handle)
        return handle

    def _idle_worker_locked(self) -> _Worker | None:
        for worker in self._workers.values():
            if worker.handle is None:
                return worker
        return None

    def _assign_locked(self, worker: _Worker, handle: RunHandle) -> None:
        chaos = self.chaos
        if chaos is not None:
            delay = chaos.pipe_delay()
            if delay:
                time.sleep(delay)
            if chaos.kill_pre_dispatch():
                # The send below usually still succeeds into the dying
                # pipe; the router then sees EOF before any start-ack —
                # exactly the infra-death shape the retry path handles.
                worker.proc.kill()
            elif chaos.sever_pipe():
                try:
                    worker.conn.close()
                except OSError:
                    pass
        worker.handle = handle
        handle.expires_at = None  # dispatched: the queue deadline is met
        handle.worker_pid = worker.proc.pid
        handle.started_at = monotonic_clock()
        try:
            worker.conn.send(handle.request)
        except (BrokenPipeError, OSError):
            # Died between requests: replace it and put the request first
            # in line — the router dispatches when the new worker is up.
            worker.handle = None
            self.crashed += 1
            self.infra_retried += 1
            self._retire_locked(worker, kill=True)
            self._spawn_locked()
            handle.worker_pid = None
            handle.started_at = None
            self._pending.appendleft(handle)

    def _dispatch_pending_locked(self) -> list[RunHandle]:
        """Assign queued handles to idle workers, skipping handles whose
        retry backoff has not lapsed and shedding those whose queue
        deadline passed.  Returns the shed handles — the caller finishes
        them *outside* ``_mu`` (handles are never finished under it)."""
        now = monotonic_clock()
        expired: list[RunHandle] = []
        backlog, self._pending = self._pending, deque()
        while backlog:
            handle = backlog.popleft()
            if handle.expires_at is not None and now >= handle.expires_at:
                self._handles.pop(handle.id, None)
                self.shed_expired += 1
                expired.append(handle)
                continue
            if handle.retry_at is not None and now < handle.retry_at:
                self._pending.append(handle)
                continue
            worker = self._idle_worker_locked()
            if worker is None:
                self._pending.append(handle)
                self._pending.extend(backlog)
                break
            handle.retry_at = None
            self._assign_locked(worker, handle)
        return expired

    def _finish_shed(self, expired: list[RunHandle]) -> None:
        for handle in expired:
            waited = handle.request.get("queue_deadline", 0)
            handle.finish(pool_result(
                "shed", EXIT_CANCELLED,
                f"shed: the run waited {waited:g}s in the queue without "
                "reaching a worker (its queue deadline) — retry shortly",
                cause="shed", http_status=503,
                retry_after=max(1.0, round(self._avg_run_s, 1)),
            ))

    # -- routing -------------------------------------------------------
    def _route(self) -> None:
        while True:
            with self._mu:
                if self._closed:
                    return
                conns = {worker.conn: worker
                         for worker in self._workers.values()}
                self._reap_retired()
            try:
                ready = _conn_wait(list(conns), timeout=0.1)
            except OSError:
                ready = []
            for conn in ready:
                worker = conns[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._on_worker_death(worker)
                    continue
                self._on_message(worker, msg)
            self._check_watchdog()

    def _on_message(self, worker: _Worker, msg: tuple) -> None:
        kind, req_id, payload = msg
        if kind == "out":
            handle = self._handles.get(req_id)
            if handle is not None:
                handle.emit_output(payload)
            return
        if kind == "start":
            # The worker's ack: user code is running.  From here on a
            # worker death is the program's fault (crash path, breaker-
            # counted), never retried.
            handle = self._handles.get(req_id)
            if handle is not None:
                handle.run_started = True
                chaos = self.chaos
                if chaos is not None:
                    src = handle.request.get("source", "")
                    if chaos.is_poison(src):
                        chaos.count_poison_kill()
                        worker.proc.kill()
                    elif chaos.kill_mid_run():
                        worker.proc.kill()
            return
        # "done"
        with self._mu:
            if self._workers.get(worker.index) is not worker:
                # Retired under us (a cancel raced its final message);
                # the handle was already finished by whoever retired it.
                return
            handle, worker.handle = worker.handle, None
            worker.served += 1
            self.served += 1
            if handle is not None and handle.started_at is not None:
                dt = monotonic_clock() - handle.started_at
                self._avg_run_s += 0.2 * (dt - self._avg_run_s)
            recycle = (self.recycle_after
                       and worker.served >= self.recycle_after
                       and not self._closed)
            if recycle:
                # Replace *before* retiring so capacity never dips.
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                self._retire_locked(worker, kill=False)
                self._spawn_locked()
                self.recycled += 1
            self._handles.pop(req_id, None)
            expired = self._dispatch_pending_locked()
        if handle is not None:
            handle.finish(payload)
        self._finish_shed(expired)

    def _on_worker_death(self, worker: _Worker) -> None:
        crash = None
        with self._mu:
            if self._workers.get(worker.index) is not worker:
                return  # already retired by cancel()/recycle
            handle, worker.handle = worker.handle, None
            self._retire_locked(worker, kill=True)
            if not self._closed:
                self._spawn_locked()
            if handle is not None:
                self.crashed += 1
                if (not handle.run_started
                        and handle.infra_retries < self.infra_retries):
                    # Infra's fault (the start-ack never came): redispatch
                    # on a fresh worker after a capped backoff, invisibly
                    # to the client and to the circuit breaker.
                    handle.infra_retries += 1
                    self.infra_retried += 1
                    handle.worker_pid = None
                    handle.started_at = None
                    handle.retry_at = monotonic_clock() + min(
                        self.infra_retry_backoff
                        * (2 ** (handle.infra_retries - 1)),
                        1.0)
                    self._pending.appendleft(handle)
                    handle = None
                else:
                    self._handles.pop(handle.id, None)
                    if handle.run_started:
                        crash = pool_result(
                            "error", 1, _CRASH_RESULT,
                            cause="crash", http_status=500)
                    else:
                        crash = pool_result(
                            "error", 1,
                            "the worker process died before the program "
                            f"started, {handle.infra_retries + 1} time(s) "
                            "in a row — server infrastructure trouble, "
                            "not the program's fault; retry shortly",
                            cause="infra", http_status=500,
                            retry_after=1.0)
            expired = self._dispatch_pending_locked()
        if handle is not None and crash is not None:
            handle.finish(crash)
        self._finish_shed(expired)

    def _check_watchdog(self) -> None:
        """Kill workers wedged well past their run's time budget."""
        now = monotonic_clock()
        victims = []
        with self._mu:
            for worker in self._workers.values():
                handle = worker.handle
                if handle is None or handle.started_at is None:
                    continue
                allowed = handle.request.get("time_limit") or 0.0
                if now - handle.started_at > allowed + self.watchdog_grace:
                    victims.append((worker, handle))
            for worker, handle in victims:
                worker.handle = None
                self._retire_locked(worker, kill=True)
                if not self._closed:
                    self._spawn_locked()
                self._handles.pop(handle.id, None)
                self.watchdog_kills += 1
            expired = self._dispatch_pending_locked()
        for _worker, handle in victims:
            handle.finish(pool_result(
                "time", EXIT_LIMIT,
                f"the run exceeded its time budget of "
                f"{handle.request.get('time_limit', 0):g}s and was killed "
                "by the server watchdog",
                cause="watchdog",
            ))
        self._finish_shed(expired)

    # -- cancellation --------------------------------------------------
    def cancel(self, req_id: str,
               reason: str = "cancelled by the client") -> bool:
        """Cancel a pending or running request.  A running request's
        worker is killed and replaced — cancellation must not depend on
        the program reaching a statement boundary."""
        expired: list[RunHandle] = []
        with self._mu:
            handle = self._handles.pop(req_id, None)
            if handle is None:
                return False
            victim = None
            if handle in self._pending:
                self._pending.remove(handle)
            else:
                for worker in self._workers.values():
                    if worker.handle is handle:
                        victim = worker
                        break
                if victim is not None:
                    victim.handle = None
                    self._retire_locked(victim, kill=True)
                    if not self._closed:
                        self._spawn_locked()
                    expired = self._dispatch_pending_locked()
            self.cancelled += 1
        handle.finish(pool_result(
            "cancelled", EXIT_CANCELLED, f"the run was cancelled — {reason}",
            cause="cancel"))
        self._finish_shed(expired)
        return True

    # -- stats ---------------------------------------------------------
    def occupancy(self) -> dict:
        """A live snapshot for the admission controller: who is busy,
        how deep the queue is, and the run-duration EWMA."""
        with self._mu:
            busy = sum(1 for w in self._workers.values()
                       if w.handle is not None)
            return {
                "workers": len(self._workers),
                "busy": busy,
                "idle": len(self._workers) - busy,
                "pending": len(self._pending),
                "max_queue": self.max_queue,
                "avg_run_seconds": self._avg_run_s,
            }

    def stats(self) -> dict:
        with self._mu:
            return {
                "workers": len(self._workers),
                "busy": sum(1 for w in self._workers.values()
                            if w.handle is not None),
                "pending": len(self._pending),
                "submitted": self.submitted,
                "served": self.served,
                "crashed": self.crashed,
                "recycled": self.recycled,
                "cancelled": self.cancelled,
                "watchdog_kills": self.watchdog_kills,
                "infra_retried": self.infra_retried,
                "shed_expired": self.shed_expired,
                "avg_run_seconds": round(self._avg_run_s, 4),
                "worker_pids": sorted(w.proc.pid
                                      for w in self._workers.values()),
            }
