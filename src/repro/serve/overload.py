"""Overload policy for ``tetra serve``: admission control and the
poison-program circuit breaker.

The service refuses work in three escalating ways, each costing the
refused tenant nothing (no quota slot, no rate token, no sandbox):

* **Load shedding** (:class:`AdmissionController`) — every request
  carries a *queue deadline* (how long it is willing to wait for a
  worker; clamped like every other limit).  At submit time the
  controller looks at the live pool occupancy — busy workers, queued
  requests, and an EWMA of recent run durations — and computes the wait
  a new arrival would face.  A full queue, or an estimated wait already
  past the request's deadline, is shed **immediately** with 503 and a
  ``Retry-After`` derived from that same occupancy estimate: the client
  learns in milliseconds what it would otherwise learn by timing out.
  Requests that queue anyway are swept by the pool: once a queued
  request's deadline passes it is shed with the same 503 shape, so an
  optimistic estimate never turns into an unbounded wait.

* **Circuit breaking** (:class:`CircuitBreaker`) — a program that keeps
  *killing its sandbox worker* (a real crash or OOM, or a wedge the
  parent watchdog had to end) is a poison pill: every resubmission costs
  a worker respawn and a pool hiccup.  The breaker tracks outcomes per
  program sha.  ``threshold`` consecutive worker-deaths **open** the
  breaker: further submissions fail fast with a named diagnostic and
  ``Retry-After``, for an exponentially growing quarantine
  (``backoff * 2^(trips-1)``, capped).  When the quarantine lapses the
  breaker goes **half-open**: exactly one probe execution is admitted —
  success closes the breaker and forgets the program entirely, another
  worker-death re-opens it with the next backoff step.  Only
  *worker-killing* outcomes count: a program that merely raises, trips
  an in-worker guardrail, or loses a race is handled cleanly and never
  quarantined.  Infra-caused deaths (a worker lost *before* user code
  started) are retried by the pool and never blamed on the program.

* The quota layer (:mod:`repro.serve.quotas`) stays in charge of
  per-tenant fairness; this module is about protecting the *service*.

Both tables are bounded: the breaker only holds programs with recorded
failures (a success deletes the entry), and overflow evicts the oldest
closed entry first — an open breaker is never evicted, because evicting
it would un-quarantine the poison program.
"""

from __future__ import annotations

import threading

from ..stdlib.builtin_time import monotonic_clock
from .protocol import ServeError
from .quotas import RETRY_AFTER_CAP

#: Seed for the run-duration EWMA before any run has finished — a small
#: classroom program, so an empty server never over-estimates the wait.
INITIAL_AVG_RUN_S = 0.05

#: Breaker table size that triggers an eviction sweep (closed entries
#: first; open entries are pinned — evicting one would un-quarantine
#: the very program the breaker exists for).
DEFAULT_MAX_PROGRAMS = 1024


class AdmissionController:
    """Shed-or-admit decisions from a live pool-occupancy snapshot."""

    def __init__(self, max_queue: int = 32, clock=monotonic_clock):
        self.max_queue = int(max_queue)
        self._clock = clock
        self._mu = threading.Lock()
        self.shed_queue_full = 0
        self.shed_deadline = 0

    @staticmethod
    def estimated_wait(occupancy: dict) -> float:
        """Seconds a new arrival would wait for a worker, from the pool's
        own snapshot: everyone ahead of it (queued + running) divided by
        the service rate the pool is actually sustaining."""
        workers = max(int(occupancy.get("workers", 1)), 1)
        ahead = (int(occupancy.get("pending", 0))
                 + int(occupancy.get("busy", 0)))
        avg = max(float(occupancy.get("avg_run_seconds",
                                      INITIAL_AVG_RUN_S)), 1e-3)
        return ahead * avg / workers

    def check(self, occupancy: dict, queue_deadline: float) -> None:
        """Admit or raise ``ServeError(503)`` — **before** any quota or
        sandbox cost.  ``Retry-After`` is the occupancy estimate itself:
        the honest answer to "when would a slot actually free up?"."""
        pending = int(occupancy.get("pending", 0))
        if pending == 0 and int(occupancy.get("idle", 0)) > 0:
            return  # a worker is free right now
        wait = self.estimated_wait(occupancy)
        retry = min(max(wait, 1.0), RETRY_AFTER_CAP)
        if pending >= self.max_queue:
            with self._mu:
                self.shed_queue_full += 1
            raise ServeError(
                503,
                f"shed: the run queue is full ({pending} queued, "
                f"{occupancy.get('busy', 0)} running on "
                f"{occupancy.get('workers', 0)} workers) — retry in "
                f"{retry:.0f}s",
                retry_after=retry,
            )
        if wait > queue_deadline:
            with self._mu:
                self.shed_deadline += 1
            raise ServeError(
                503,
                f"shed: estimated queue wait {wait:.1f}s exceeds this "
                f"request's queue deadline ({queue_deadline:g}s) — "
                f"retry in {retry:.0f}s",
                retry_after=retry,
            )

    def stats(self) -> dict:
        with self._mu:
            return {
                "max_queue": self.max_queue,
                "shed_queue_full": self.shed_queue_full,
                "shed_deadline": self.shed_deadline,
            }


class _Program:
    """Breaker state for one program sha (exists only while failing)."""

    __slots__ = ("failures", "trips", "state", "open_until", "probing",
                 "last_cause")

    def __init__(self):
        self.failures = 0       #: worker-deaths since the last success
        self.trips = 0          #: times the breaker opened (backoff step)
        self.state = "closed"   #: "closed" | "open" | "half-open"
        self.open_until = 0.0
        self.probing = False    #: a half-open probe is in flight
        self.last_cause = "crashed its sandbox worker"


class CircuitBreaker:
    """Per-program-sha quarantine for programs that kill workers.

    Thread-safe; ``clock`` is injectable for deterministic tests.  The
    caller contract: every successful :meth:`admit` for a program in the
    half-open state *claims the probe* and must eventually be settled by
    exactly one of :meth:`record_success`, :meth:`record_failure`, or
    :meth:`release` (when the request dies before producing an execution
    verdict — refused by quota, compile-rejected, answered from cache,
    or cancelled).
    """

    def __init__(self, threshold: int = 3, backoff: float = 30.0,
                 backoff_cap: float = 600.0, clock=monotonic_clock,
                 max_programs: int = DEFAULT_MAX_PROGRAMS):
        self.threshold = max(1, int(threshold))
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.max_programs = max(1, int(max_programs))
        self._clock = clock
        self._mu = threading.Lock()
        self._programs: dict[str, _Program] = {}
        self.trips_total = 0
        self.fast_fails = 0
        self.failures_recorded = 0
        self.recovered = 0
        self.evicted = 0

    # -- admission -----------------------------------------------------
    def admit(self, sha: str) -> None:
        """Let the program through, or fail fast with ``ServeError(503)``
        naming the quarantine.  In the half-open state exactly one caller
        passes (and becomes the probe); everyone else fails fast."""
        with self._mu:
            prog = self._programs.get(sha)
            if prog is None:
                return
            now = self._clock()
            if prog.state == "open":
                remaining = prog.open_until - now
                if remaining > 0:
                    self.fast_fails += 1
                    raise ServeError(
                        503,
                        f"program {sha[:12]} is quarantined by the "
                        f"circuit breaker — it has {prog.last_cause} "
                        f"{prog.failures} time(s); next probe in "
                        f"{max(remaining, 1.0):.0f}s",
                        retry_after=min(max(remaining, 1.0),
                                        RETRY_AFTER_CAP),
                    )
                prog.state = "half-open"
                prog.probing = True  # this caller is the probe
                return
            if prog.state == "half-open" and prog.probing:
                self.fast_fails += 1
                raise ServeError(
                    503,
                    f"program {sha[:12]} is quarantined (half-open) — a "
                    "probe execution is already in flight; retry shortly",
                    retry_after=5.0,
                )
            if prog.state == "half-open":
                prog.probing = True

    def release(self, sha: str) -> None:
        """A claimed probe never reached an execution verdict — free the
        half-open slot so the next submission can probe instead."""
        with self._mu:
            prog = self._programs.get(sha)
            if prog is not None and prog.state == "half-open":
                prog.probing = False

    # -- verdicts ------------------------------------------------------
    def record_failure(self, sha: str, cause: str) -> None:
        """One execution of ``sha`` killed its worker (``cause`` is the
        human phrase for the diagnostic: crashed / watchdog-killed)."""
        with self._mu:
            prog = self._programs.get(sha)
            if prog is None:
                if len(self._programs) >= self.max_programs:
                    self._evict_locked()
                prog = self._programs[sha] = _Program()
            prog.failures += 1
            prog.last_cause = cause
            self.failures_recorded += 1
            if prog.state == "half-open" \
                    or prog.failures >= self.threshold:
                prog.trips += 1
                self.trips_total += 1
                prog.state = "open"
                prog.probing = False
                prog.open_until = self._clock() + min(
                    self.backoff * (2 ** (prog.trips - 1)),
                    self.backoff_cap)

    def record_success(self, sha: str) -> None:
        """One execution of ``sha`` completed without harming its worker
        (any worker-produced result, even a program diagnostic).  The
        program is healthy — forget it entirely, so the breaker table
        only ever holds programs that are actually failing."""
        with self._mu:
            prog = self._programs.pop(sha, None)
            if prog is not None and prog.state != "closed":
                self.recovered += 1

    def _evict_locked(self) -> None:
        """Drop the oldest non-open entry (insertion order).  Open
        entries are pinned: evicting one would un-quarantine a poison
        program mid-backoff."""
        for sha in list(self._programs):
            if self._programs[sha].state != "open":
                del self._programs[sha]
                self.evicted += 1
                return
        # Everything is open (pathological): drop the oldest anyway
        # rather than grow without bound.
        sha = next(iter(self._programs))
        del self._programs[sha]
        self.evicted += 1

    # -- introspection -------------------------------------------------
    def state(self, sha: str) -> str:
        with self._mu:
            prog = self._programs.get(sha)
            return prog.state if prog is not None else "closed"

    def stats(self) -> dict:
        with self._mu:
            now = self._clock()
            per_program = {}
            open_count = half_open = 0
            for sha, prog in self._programs.items():
                if prog.state == "open":
                    open_count += 1
                elif prog.state == "half-open":
                    half_open += 1
                per_program[sha[:12]] = {
                    "state": prog.state,
                    "failures": prog.failures,
                    "trips": prog.trips,
                    "retry_in": round(max(0.0, prog.open_until - now), 3)
                    if prog.state == "open" else 0.0,
                }
            return {
                "programs_tracked": len(self._programs),
                "open": open_count,
                "half_open": half_open,
                "trips": self.trips_total,
                "fast_fails": self.fast_fails,
                "failures_recorded": self.failures_recorded,
                "recovered": self.recovered,
                "evicted": self.evicted,
                "threshold": self.threshold,
                "per_program": per_program,
            }
