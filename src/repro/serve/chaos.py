"""Seeded fault injection for the serve layer (``--chaos-serve SEED``).

The runtime's chaos harness (:mod:`repro.resilience.faults`) perturbs
*one program's* schedule; this plan perturbs the *service around* the
programs — the faults a hosted deployment actually meets:

* **kill a worker pre-dispatch** — the sandbox process dies between
  being handed a request and starting user code (a spawn failure or
  recycle race).  Must surface as a transparent infra retry, never a
  user-facing error.
* **kill a worker mid-run** — indistinguishable from a crashing or
  OOM-killed student program; exercises crash recovery and feeds the
  circuit breaker exactly like real poison would.
* **delay or sever a worker pipe** — a slow or broken duplex channel at
  dispatch time.
* **drop a client connection** mid-stream — the vanished-browser case;
  the server must detect it and release the run's quota slot.
* **stall the compile single-flight** — widens the cancel-before-
  dispatch race window the service must tolerate.

Every fault site draws from its own :class:`random.Random` stream seeded
as ``tetra-serve-chaos:<site>:<seed>``, so one seed is one reproducible
fault plan per site regardless of how other sites interleave (the same
per-stream idiom as ``FaultPlan``).  Fired faults are counted and
reported in ``/api/stats`` under ``chaos``.

**Poison marker**: when chaos is armed, any program whose source carries
the literal ``chaos:poison`` (a comment in Tetra) has its worker killed
the moment user code starts — a *deterministic* poison pill, so soak
tests can drive the circuit breaker without relying on a real OOM.  The
kill happens after the worker's start-ack, so it is attributed to the
program (breaker-counted), exactly like a genuine crash.
"""

from __future__ import annotations

import random
import threading

#: Source substring that marks a program as a deterministic poison pill
#: (only honoured while a ServeFaultPlan is armed).
POISON_MARKER = "chaos:poison"


class ServeFaultPlan:
    """One seeded serve-layer fault schedule."""

    def __init__(self, seed: int, *,
                 kill_pre_dispatch_prob: float = 0.04,
                 kill_mid_run_prob: float = 0.04,
                 pipe_delay_prob: float = 0.05,
                 max_pipe_delay_ms: float = 10.0,
                 sever_pipe_prob: float = 0.02,
                 drop_client_prob: float = 0.06,
                 compile_stall_prob: float = 0.05,
                 max_compile_stall_ms: float = 10.0):
        self.seed = int(seed)
        self.kill_pre_dispatch_prob = float(kill_pre_dispatch_prob)
        self.kill_mid_run_prob = float(kill_mid_run_prob)
        self.pipe_delay_prob = float(pipe_delay_prob)
        self.max_pipe_delay_ms = float(max_pipe_delay_ms)
        self.sever_pipe_prob = float(sever_pipe_prob)
        self.drop_client_prob = float(drop_client_prob)
        self.compile_stall_prob = float(compile_stall_prob)
        self.max_compile_stall_ms = float(max_compile_stall_ms)
        self._mu = threading.Lock()
        self._rngs: dict[str, random.Random] = {}
        self.counts: dict[str, int] = {}

    def _draw(self, site: str) -> float:
        """One uniform draw from ``site``'s private stream (locked —
        pool and transport threads fire faults concurrently)."""
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(
                f"tetra-serve-chaos:{site}:{self.seed}")
        return rng.random()

    def _fire(self, site: str, prob: float) -> bool:
        with self._mu:
            hit = prob > 0.0 and self._draw(site) < prob
            if hit:
                self.counts[site] = self.counts.get(site, 0) + 1
        return hit

    # -- fault sites ---------------------------------------------------
    def kill_pre_dispatch(self) -> bool:
        """Kill the chosen worker before the request is sent to it."""
        return self._fire("kill_pre_dispatch", self.kill_pre_dispatch_prob)

    def kill_mid_run(self) -> bool:
        """Kill the worker the moment user code starts (≙ crash/OOM)."""
        return self._fire("kill_mid_run", self.kill_mid_run_prob)

    def sever_pipe(self) -> bool:
        """Close the parent's end of the worker pipe at dispatch."""
        return self._fire("sever_pipe", self.sever_pipe_prob)

    def drop_client(self) -> bool:
        """Abort the client connection mid-stream (vanished browser)."""
        return self._fire("drop_client", self.drop_client_prob)

    def pipe_delay(self) -> float:
        """Seconds to stall the dispatch pipe (0.0 = no fault)."""
        with self._mu:
            if self.pipe_delay_prob <= 0.0 \
                    or self._draw("pipe_delay") >= self.pipe_delay_prob:
                return 0.0
            self.counts["pipe_delay"] = self.counts.get("pipe_delay", 0) + 1
            return self._draw("pipe_delay") * self.max_pipe_delay_ms / 1e3

    def compile_stall(self) -> float:
        """Seconds to stall before entering the compile single-flight."""
        with self._mu:
            if self.compile_stall_prob <= 0.0 \
                    or self._draw("compile_stall") >= self.compile_stall_prob:
                return 0.0
            self.counts["compile_stall"] = \
                self.counts.get("compile_stall", 0) + 1
            return (self._draw("compile_stall")
                    * self.max_compile_stall_ms / 1e3)

    # -- the deterministic poison pill ---------------------------------
    @staticmethod
    def is_poison(source: str) -> bool:
        return POISON_MARKER in source

    def count_poison_kill(self) -> None:
        with self._mu:
            self.counts["poison_kill"] = self.counts.get("poison_kill", 0) + 1

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        with self._mu:
            return {"seed": self.seed, "counts": dict(self.counts)}
