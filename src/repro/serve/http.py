"""The HTTP + WebSocket transport for ``tetra serve`` (stdlib only).

Endpoints (tenant = the ``X-Tetra-Tenant`` header, else ``anonymous``):

    GET  /healthz        liveness probe (503 + {"draining": true} while
                         a graceful drain is in progress)
    GET  /api/stats      pool / quota / dedup / overload / program-cache
                         statistics
    POST /api/check      static diagnostics only (no sandbox)
    POST /api/run        run to completion, JSON result
    POST /api/stream     run with live output as NDJSON lines
    POST /api/cancel     {"id": ...} — cancel a pending or running request
    POST /api/drain      begin a graceful drain (stop admissions, finish
                         in-flight runs, persist the cache, exit)
    GET  /api/ws         WebSocket: send one run request, receive streamed
                         {"type": "start"|"out"|"done"} messages; send
                         {"type": "cancel"} any time

``/api/run``'s HTTP status is the documented exit-code mapping
(:data:`repro.serve.protocol.EXIT_HTTP_STATUS`), unless the result
carries an explicit ``http_status`` override — conditions the uniform
exit codes cannot express (a 503 shed with ``Retry-After``, a 500
worker loss).  The body always carries the full result, including
``exit_code``, so clients never parse status text.  Streaming responses
are always ``200`` — the verdict travels in the final ``done`` event
instead.  A streaming client that vanishes — even while its run is
still *queued*, before any worker picked it up — is detected within a
poll tick and its request cancelled, releasing the quota slot.

Built on :class:`http.server.ThreadingHTTPServer`: one OS thread per
connection is plenty for a classroom-sized front door, and the actual
program execution never runs on these threads — it is dispatched to the
sandbox worker pool.
"""

from __future__ import annotations

import json
import queue as queue_mod
import select
import socket
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import __version__
from .protocol import ServeError, http_status_for_exit
from .service import ANONYMOUS, ExecutionService
from . import ws as ws_mod

#: Non-standard but widely understood (nginx): client cancelled/closed.
_STATUS_MESSAGES = {499: "Client Closed Request"}


class TetraServeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"tetra-serve/{__version__}"

    # The default handler logs every request to stderr; keep the server
    # quiet unless the operator asked for chatter.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------
    @property
    def service(self) -> ExecutionService:
        return self.server.service

    def _tenant(self) -> str:
        return self.headers.get("X-Tetra-Tenant", ANONYMOUS).strip() \
            or ANONYMOUS

    def _read_json(self) -> object:
        length = self.headers.get("Content-Length")
        if length is None:
            raise ServeError(411, "Content-Length required")
        try:
            length = int(length)
        except ValueError:
            raise ServeError(400, "bad Content-Length") from None
        cap = self.service.config.max_source_bytes * 4 + 65536
        if length > cap:
            raise ServeError(413, f"request body exceeds {cap} bytes")
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except ValueError:
            raise ServeError(400, "request body is not valid JSON") \
                from None

    def _send_json(self, status: int, payload: dict,
                   retry_after: float | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status,
                           _STATUS_MESSAGES.get(status))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(1, round(retry_after))}")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc: ServeError) -> None:
        self._send_json(exc.status, {"error": exc.message},
                        retry_after=exc.retry_after)

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/healthz":
                if self.service.draining:
                    self._send_json(503, {"ok": False, "draining": True,
                                          "version": __version__},
                                    retry_after=30.0)
                else:
                    self._send_json(200, {"ok": True,
                                          "version": __version__})
            elif self.path == "/api/stats":
                self._send_json(200, self.service.stats())
            elif self.path == "/api/ws":
                self._websocket_session()
            else:
                self._send_json(404, {"error": f"no route {self.path}"})
        except ServeError as exc:
            self._send_error_json(exc)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/api/run":
                self._run()
            elif self.path == "/api/stream":
                self._stream()
            elif self.path == "/api/check":
                self._send_json(200, self.service.check(self._read_json()))
            elif self.path == "/api/cancel":
                self._cancel()
            elif self.path == "/api/drain":
                self._drain()
            else:
                self._send_json(404, {"error": f"no route {self.path}"})
        except ServeError as exc:
            self._send_error_json(exc)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    # -- endpoints -----------------------------------------------------
    def _run(self) -> None:
        result = self.service.run(self._read_json(), self._tenant())
        status = result.get("http_status") \
            or http_status_for_exit(result["exit_code"])
        self._send_json(status, result,
                        retry_after=result.get("retry_after"))

    def _drain(self) -> None:
        self.service.begin_drain()
        server = self.server
        if hasattr(server, "begin_drain"):
            server.begin_drain()
        self._send_json(202, {"draining": True})

    def _cancel(self) -> None:
        payload = self._read_json()
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("id"), str):
            raise ServeError(400, "'id' must be a request id string")
        ok = self.service.cancel(payload["id"])
        self._send_json(200 if ok else 404,
                        {"cancelled": ok, "id": payload["id"]})

    def _client_vanished(self) -> bool:
        """True when the client closed its side of the connection.  A
        well-behaved streaming client sends nothing after its request,
        so a *readable* socket that peeks EOF means it hung up."""
        try:
            readable, _, _ = select.select([self.connection], [], [], 0)
            if not readable:
                return False
            return self.connection.recv(1, socket.MSG_PEEK) == b""
        except (OSError, ValueError):
            return True

    def _stream(self) -> None:
        handle = self.service.submit(self._read_json(), self._tenant())
        chaos = self.service.chaos
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True

        def emit(event: dict) -> None:
            self.wfile.write(json.dumps(event).encode("utf-8") + b"\n")
            self.wfile.flush()

        start = {"type": "start", "id": handle.id}
        if handle.dedup:
            start["dedup"] = handle.dedup
        try:
            emit(start)
            while True:
                try:
                    kind, payload = handle.events.get(timeout=0.25)
                except queue_mod.Empty:
                    # No event yet (possibly still *queued*, pre-
                    # dispatch): poll for a vanished client so a hung-up
                    # stream never holds its quota slot to the deadline.
                    if self._client_vanished():
                        raise BrokenPipeError from None
                    continue
                if kind == "out":
                    if chaos is not None and chaos.drop_client():
                        # Simulate the browser vanishing mid-stream.
                        try:
                            self.connection.shutdown(socket.SHUT_RDWR)
                        except OSError:
                            pass
                        raise BrokenPipeError
                    emit({"type": "out", "text": payload})
                else:
                    payload = dict(payload)
                    payload["id"] = handle.id
                    payload["http_status"] = payload.get("http_status") \
                        or http_status_for_exit(payload["exit_code"])
                    emit({"type": "done", **payload})
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            # The client hung up mid-stream: free its sandbox slot.
            self.service.cancel(handle.id, "client disconnected")

    # -- websocket -----------------------------------------------------
    def _websocket_session(self) -> None:
        if not ws_mod.is_upgrade(self.headers):
            raise ServeError(426, "this endpoint speaks WebSocket — "
                                  "send an Upgrade request")
        self.connection.sendall(ws_mod.handshake_response(self.headers))
        self.close_connection = True
        send = self._ws_send
        try:
            opcode, payload = ws_mod.read_frame(self.rfile)
        except ws_mod.WSError:
            return
        if opcode != ws_mod.OP_TEXT:
            send({"type": "error", "error": "expected a text frame "
                                            "with a run request"})
            return
        try:
            request = json.loads(payload.decode("utf-8"))
        except ValueError:
            send({"type": "error", "error": "run request is not JSON"})
            return
        try:
            handle = self.service.submit(request, self._tenant())
        except ServeError as exc:
            send({"type": "error", "status": exc.status,
                  "error": exc.message})
            return
        start = {"type": "start", "id": handle.id}
        if handle.dedup:
            start["dedup"] = handle.dedup
        send(start)
        try:
            self._ws_pump(handle, send)
        except (BrokenPipeError, ConnectionResetError, OSError):
            self.service.cancel(handle.id, "websocket client disconnected")

    def _ws_send(self, message: dict) -> None:
        data = json.dumps(message).encode("utf-8")
        self.connection.sendall(ws_mod.encode_frame(data))

    def _ws_pump(self, handle, send) -> None:
        """Interleave streaming run events out with watching the socket
        for a ``cancel`` message (or the client closing) coming in."""
        while True:
            readable, _, _ = select.select([self.connection], [], [], 0)
            if readable:
                try:
                    opcode, payload = ws_mod.read_frame(self.rfile)
                except ws_mod.WSError:
                    self.service.cancel(handle.id,
                                        "websocket client disconnected")
                    return
                if opcode == ws_mod.OP_CLOSE:
                    self.service.cancel(handle.id,
                                        "websocket client closed")
                    self.connection.sendall(
                        ws_mod.encode_frame(b"", ws_mod.OP_CLOSE))
                    return
                if opcode == ws_mod.OP_PING:
                    self.connection.sendall(
                        ws_mod.encode_frame(payload, ws_mod.OP_PONG))
                elif opcode == ws_mod.OP_TEXT:
                    try:
                        msg = json.loads(payload.decode("utf-8"))
                    except ValueError:
                        msg = {}
                    if msg.get("type") == "cancel":
                        self.service.cancel(handle.id,
                                            "cancelled over websocket")
            try:
                kind, payload = handle.events.get(timeout=0.05)
            except queue_mod.Empty:
                continue
            if kind == "out":
                send({"type": "out", "text": payload})
            else:
                payload = dict(payload)
                payload["id"] = handle.id
                payload["http_status"] = payload.get("http_status") \
                    or http_status_for_exit(payload["exit_code"])
                send({"type": "done", **payload})
                self.connection.sendall(
                    ws_mod.encode_frame(b"", ws_mod.OP_CLOSE))
                return


class TetraServer(ThreadingHTTPServer):
    """The listening server: one of these per ``tetra serve``."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ExecutionService,
                 verbose: bool = False):
        super().__init__(address, TetraServeHandler)
        self.service = service
        self.verbose = verbose
        self._drain_watcher: threading.Thread | None = None

    def begin_drain(self) -> None:
        """Stop the accept loop once the service's drain completes.

        The listener stays up through the drain so ``/healthz`` keeps
        answering 503-draining (load balancers need it) and in-flight
        streams finish; idempotent.
        """
        if self._drain_watcher is not None:
            return
        self.service.begin_drain()

        def _watch():
            self.service.drained.wait()
            self.shutdown()

        self._drain_watcher = threading.Thread(
            target=_watch, name="tetra-serve-drain-watch", daemon=True)
        self._drain_watcher.start()


def serve(config=None, verbose: bool = False,
          ready=None) -> int:  # pragma: no cover - CLI loop (tests
    """Run the service until SIGINT.      drive TetraServer directly)

    SIGINT stops immediately (the operator's Ctrl-C); SIGTERM (what
    ``kill`` and process supervisors send) triggers a **graceful
    drain**: admissions stop, ``/healthz`` turns 503-draining, in-flight
    runs finish up to ``config.drain_grace`` seconds, the result cache
    is persisted, and the process exits 0.

    ``ready`` is an optional callback receiving the bound (host, port) —
    the CI smoke test uses it to learn an ephemeral port.
    """
    from .protocol import ServeConfig

    import signal

    config = config or ServeConfig()
    service = ExecutionService(config)
    server = TetraServer((config.host, config.port), service, verbose)
    host, port = server.server_address[:2]
    if ready is not None:
        ready((host, port))

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    def _drain(signum, frame):
        print("tetra serve: draining (SIGTERM) — finishing in-flight "
              f"runs, up to {config.drain_grace:g}s", file=sys.stderr)
        server.begin_drain()

    # A server launched from a script often arrives with SIGINT *ignored*
    # (`cmd &` in a non-interactive shell), which Python inherits — a
    # plain `kill -INT` would then be a silent no-op and the process
    # would outlive its operator.  Re-arm it; SIGTERM gets the graceful
    # drain instead of an abrupt stop.
    signal.signal(signal.SIGINT, _interrupt)
    signal.signal(signal.SIGTERM, _drain)
    print(f"tetra serve: listening on http://{host}:{port} "
          f"({config.workers} sandbox workers, "
          f"{config.rate:g} req/s per tenant)", file=sys.stderr)
    if service.chaos is not None:
        print(f"tetra serve: CHAOS armed "
              f"(seed {service.chaos.seed}) — do not use in production",
              file=sys.stderr)
    try:
        server.serve_forever(poll_interval=0.2)
        print("tetra serve: drained, exiting", file=sys.stderr)
    except KeyboardInterrupt:
        print("\ntetra serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
        service.shutdown()
    return 0
