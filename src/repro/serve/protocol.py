"""Wire protocol for ``tetra serve``: request validation, guardrail
clamping, and the exit-code → HTTP-status mapping.

A run request is a JSON object::

    {
      "source": "def main():\\n    print(1)\\n",   # required
      "inputs": ["line1", "line2"],                # read_* lines
      "entry": "main",
      "backend": "thread",       # thread | sequential | coop | sim | proc
      "detect_races": false,
      "metrics": false,
      "time_limit": 2.0,         # clamped to the server's ceiling
      "memory_limit": 100000,    # value cells
      "step_limit": 1000000,
      "output_limit": 500000,    # characters
      "chaos_seed": null,
      "workers": null,           # parallel-for workers
      "chunking": "block",
      "record_schedule": false
    }

Every limit is clamped between a server default (applied when the client
sends nothing) and a hard ceiling — a tenant can lower its budget, never
raise it past the operator's cap.  Unknown fields are rejected so typos
fail loudly instead of silently running with defaults.

The **exit-code → HTTP-status mapping** (the same exit codes ``tetra run``
reports, README "Guardrails & chaos testing"):

    ==== ============================================== ===========
    exit meaning                                        HTTP status
    ==== ============================================== ===========
    0    clean run                                      200
    1    program diagnostic (syntax, type, runtime)     422
    2    malformed request / bad option                  400
    3    data races found (run itself clean)            200
    4    a guardrail tripped (time/memory/steps/output) 408
    5    deadlock detected and aborted                  409
    130  cancelled (client cancel, shutdown)            499
    ==== ============================================== ===========

Server-level conditions use the usual codes on top: 404 unknown route,
405 wrong method, 413 source too large, 429 quota or rate limit,
500 worker crash, 503 shed (queue full or queue deadline unreachable,
with ``Retry-After`` from live pool occupancy), quarantined by the
poison-program circuit breaker, draining, or shutting down.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

from ..errors import (
    EXIT_CANCELLED,
    EXIT_DEADLOCK,
    EXIT_ERROR,
    EXIT_LIMIT,
    EXIT_OK,
    EXIT_RACES,
    EXIT_USAGE,
)

#: The documented mapping (also rendered in README).
EXIT_HTTP_STATUS = {
    EXIT_OK: 200,
    EXIT_ERROR: 422,
    EXIT_USAGE: 400,
    EXIT_RACES: 200,
    EXIT_LIMIT: 408,
    EXIT_DEADLOCK: 409,
    EXIT_CANCELLED: 499,
}


def http_status_for_exit(code: int) -> int:
    """HTTP status for a run's uniform exit code (unknown → 500)."""
    return EXIT_HTTP_STATUS.get(code, 500)


class ServeError(Exception):
    """A request the service refuses, with its HTTP status.

    ``retry_after`` (seconds) is set for rate-limit refusals so the
    handler can emit a ``Retry-After`` header.
    """

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


#: Backends a tenant may pick (everything the CLI offers).
ALLOWED_BACKENDS = ("thread", "sequential", "coop", "sim", "proc")
ALLOWED_CHUNKINGS = ("block", "cyclic", "dynamic")


@dataclass
class ServeConfig:
    """Operator knobs for one :class:`~repro.serve.service.ExecutionService`.

    The per-request entries come in (default, ceiling) pairs: the default
    applies when the client sends nothing (or 0), the ceiling clamps what
    it may ask for.  Quotas are per tenant (the ``X-Tetra-Tenant`` header,
    ``"anonymous"`` when absent).
    """

    host: str = "127.0.0.1"
    port: int = 8722
    #: Sandbox worker processes (each runs one request at a time).
    workers: int = 2
    #: Retire a worker after this many requests (0 = never) — a fresh
    #: process reclaims whatever a thousand student programs leaked.
    recycle_after: int = 64
    #: Requests queued waiting for a worker before the service says 503.
    max_queue: int = 32
    #: Queue-wait budget in seconds: the default applies when a request
    #: names no ``queue_deadline``, the ceiling clamps what it may ask
    #: for.  A request is shed (503 + ``Retry-After``) the moment the
    #: estimated wait exceeds its deadline — at admission when the pool
    #: is already that far behind, or in the queue when the estimate
    #: proves optimistic.
    default_queue_wait: float = 10.0
    max_queue_wait: float = 60.0
    #: Poison-program circuit breaker: consecutive worker-killing
    #: outcomes (crash / OOM / watchdog kill) before a program sha is
    #: quarantined, the first quarantine length in seconds (doubling per
    #: re-trip), and the backoff ceiling.
    breaker_threshold: int = 3
    breaker_backoff: float = 30.0
    breaker_backoff_cap: float = 600.0
    #: Transient-infra retries: how many times a dispatch whose worker
    #: died *before user code started* (spawn failure, recycle race,
    #: pipe EOF) is retried on a fresh worker, and the first retry
    #: backoff in seconds (doubling, capped at 1s).  Program-caused
    #: deaths are never retried — they feed the breaker instead.
    infra_retries: int = 2
    infra_retry_backoff: float = 0.05
    #: Graceful-drain budget: seconds in-flight runs get to finish after
    #: SIGTERM / ``POST /api/drain`` before being cancelled with partial
    #: output.
    drain_grace: float = 10.0
    #: Seeded serve-layer fault injection (``--chaos-serve``); ``None``
    #: disables it.  See :mod:`repro.serve.chaos`.
    chaos_serve_seed: int | None = None
    #: Token-bucket refill per tenant, requests/second.
    rate: float = 10.0
    #: Token-bucket capacity (burst size) per tenant.
    burst: int = 20
    #: Simultaneously *running* requests per tenant.
    max_concurrent: int = 4
    #: Wall-clock guardrail in host seconds.  Enforced in-worker on the
    #: host-clock backends (thread/sequential/proc); sim and coop tick
    #: virtual units, so there the step limit and the parent watchdog
    #: (time limit + ``watchdog_grace``) bound the run instead.
    default_time_limit: float = 5.0
    max_time_limit: float = 30.0
    #: Value-heap cells (see RuntimeConfig.memory_limit).
    default_memory_limit: int = 500_000
    max_memory_limit: int = 2_000_000
    #: Interpreted statements.
    default_step_limit: int = 5_000_000
    max_step_limit: int = 50_000_000
    #: Captured output characters.
    default_output_limit: int = 1_000_000
    max_output_limit: int = 8_000_000
    #: Request body / source size caps.
    max_source_bytes: int = 200_000
    max_inputs: int = 1_000
    #: Parallel-for workers a request may ask for.
    max_workers_per_run: int = 8
    #: Seconds past a run's time limit before the parent kills its worker
    #: outright (the in-worker guardrail normally fires first; the
    #: watchdog catches wedged runs that never reach a statement
    #: boundary).
    watchdog_grace: float = 3.0
    #: Collapse concurrent identical submissions (same :func:`run_key`)
    #: into one sandbox execution fanned out to every waiter.
    coalesce: bool = True
    #: Entries in the pure-result cache (0 disables it).  Only runs the
    #: determinism analysis proves replayable are ever stored.
    result_cache_size: int = 256
    #: Optional JSON file the result cache loads at boot and saves at
    #: shutdown, so a restart keeps yesterday's classroom warm.
    result_cache_path: str | None = None


def _clamp(value, default, ceiling, *, kind=float, name=""):
    """Clamp one guardrail between the operator default (what 0/absent
    means) and the hard ceiling.

    Only finite, non-negative JSON numbers pass.  ``min(value, ceiling)``
    alone is not a clamp: ``NaN`` compares false against everything (so
    ``min`` hands it straight through and every later ``elapsed > limit``
    check silently never fires), and ``Infinity`` survives the old
    ``< 0`` test only to blow up ``int()`` with an ``OverflowError`` deep
    in dispatch.  Both are a 400 at the front door now.
    """
    if value is None:
        value = 0
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeError(400, f"{name} must be a number") from None
    value = float(value)
    if not math.isfinite(value):
        raise ServeError(400, f"{name} must be a finite number")
    if value < 0:
        raise ServeError(400, f"{name} must be non-negative")
    if not value:
        value = default
    return kind(min(value, ceiling))


def run_key(request: dict) -> tuple:
    """The execution-identity key of one *validated* request.

    Two requests with equal keys ask for the same computation: same
    program (by sha), entry point, input lines, backend and scheduling
    knobs, guardrail budgets, and instrumentation flags.  Tenant,
    request id, and the queue deadline are deliberately excluded —
    identity is *what* runs, not *who* asked or how long they were
    willing to wait.  This is the key both request coalescing and the
    result cache share.
    """
    return (
        hashlib.sha256(request["source"].encode("utf-8")).hexdigest(),
        request["name"],
        request["entry"],
        tuple(request["inputs"]),
        request["backend"],
        request["chunking"],
        request["workers"],
        bool(request["detect_races"]),
        bool(request["metrics"]),
        bool(request["record_schedule"]),
        request["chaos_seed"],
        request["time_limit"],
        request["memory_limit"],
        request["step_limit"],
        request["output_limit"],
    )


_KNOWN_FIELDS = frozenset({
    "source", "inputs", "entry", "backend", "detect_races", "metrics",
    "time_limit", "memory_limit", "step_limit", "output_limit",
    "chaos_seed", "workers", "chunking", "record_schedule", "name",
    "queue_deadline",
})


def validate_request(payload: object, cfg: ServeConfig) -> dict:
    """Normalize one run request, clamping every limit to the server's
    ceilings.  Raises :class:`ServeError` (HTTP 400/413) on anything
    malformed — the tenant hears *why*, with the field named."""
    if not isinstance(payload, dict):
        raise ServeError(400, "request body must be a JSON object")
    unknown = sorted(set(payload) - _KNOWN_FIELDS)
    if unknown:
        raise ServeError(400, f"unknown request field(s): {', '.join(unknown)}")
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ServeError(400, "'source' must be a non-empty string")
    if len(source.encode("utf-8", "surrogatepass")) > cfg.max_source_bytes:
        raise ServeError(
            413, f"source exceeds {cfg.max_source_bytes} bytes")
    inputs = payload.get("inputs") or []
    if not isinstance(inputs, list) \
            or not all(isinstance(line, str) for line in inputs):
        raise ServeError(400, "'inputs' must be a list of strings")
    if len(inputs) > cfg.max_inputs:
        raise ServeError(413, f"more than {cfg.max_inputs} input lines")
    entry = payload.get("entry", "main")
    if not isinstance(entry, str) or not entry.isidentifier():
        raise ServeError(400, "'entry' must be a function name")
    backend = payload.get("backend", "thread")
    if backend not in ALLOWED_BACKENDS:
        raise ServeError(
            400, f"unknown backend {backend!r}; pick one of "
                 f"{', '.join(ALLOWED_BACKENDS)}")
    chunking = payload.get("chunking", "block")
    if chunking not in ALLOWED_CHUNKINGS:
        raise ServeError(
            400, f"unknown chunking {chunking!r}; pick one of "
                 f"{', '.join(ALLOWED_CHUNKINGS)}")
    chaos_seed = payload.get("chaos_seed")
    if chaos_seed is not None and not isinstance(chaos_seed, int):
        raise ServeError(400, "'chaos_seed' must be an integer or null")
    workers = payload.get("workers")
    if workers is not None:
        if not isinstance(workers, int) or workers < 1:
            raise ServeError(400, "'workers' must be a positive integer")
        workers = min(workers, cfg.max_workers_per_run)
    name = payload.get("name", "<request>")
    if not isinstance(name, str):
        raise ServeError(400, "'name' must be a string")
    return {
        "source": source,
        "inputs": list(inputs),
        "entry": entry,
        "backend": backend,
        "name": name,
        "detect_races": bool(payload.get("detect_races", False)),
        "metrics": bool(payload.get("metrics", False)),
        "record_schedule": bool(payload.get("record_schedule", False)),
        "chaos_seed": chaos_seed,
        "workers": workers,
        "chunking": chunking,
        "time_limit": _clamp(payload.get("time_limit"),
                             cfg.default_time_limit, cfg.max_time_limit,
                             kind=float, name="'time_limit'"),
        "memory_limit": _clamp(payload.get("memory_limit"),
                               cfg.default_memory_limit,
                               cfg.max_memory_limit,
                               kind=int, name="'memory_limit'"),
        "step_limit": _clamp(payload.get("step_limit"),
                             cfg.default_step_limit, cfg.max_step_limit,
                             kind=int, name="'step_limit'"),
        "output_limit": _clamp(payload.get("output_limit"),
                               cfg.default_output_limit,
                               cfg.max_output_limit,
                               kind=int, name="'output_limit'"),
        "queue_deadline": _clamp(payload.get("queue_deadline"),
                                 cfg.default_queue_wait,
                                 cfg.max_queue_wait,
                                 kind=float, name="'queue_deadline'"),
    }
