"""A minimal RFC 6455 WebSocket layer (stdlib only).

Just enough protocol for ``tetra serve``'s streaming endpoint — and for
its tests and benchmark to act as clients: the opening handshake, text /
close / ping frames, client-side masking.  Fragmented messages are not
produced by either side here and are rejected loudly rather than
mis-assembled.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct

#: Fixed GUID from RFC 6455 §1.3.
_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class WSError(Exception):
    """A protocol violation or an unexpectedly closed socket."""


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's nonce."""
    digest = hashlib.sha1((client_key + _GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def is_upgrade(headers) -> bool:
    """Does this request ask for a WebSocket upgrade?  ``headers`` is any
    case-insensitive mapping (``http.client.HTTPMessage`` qualifies)."""
    upgrade = (headers.get("Upgrade") or "").lower()
    connection = (headers.get("Connection") or "").lower()
    return upgrade == "websocket" and "upgrade" in connection \
        and headers.get("Sec-WebSocket-Key") is not None


def handshake_response(headers) -> bytes:
    """The 101 response bytes for an upgrade request."""
    key = headers.get("Sec-WebSocket-Key")
    if key is None:
        raise WSError("missing Sec-WebSocket-Key")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
        "\r\n"
    ).encode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_TEXT,
                 mask: bool = False) -> bytes:
    """One unfragmented frame.  Clients MUST mask (RFC 6455 §5.3);
    servers MUST NOT."""
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


def _read_exact(rfile, n: int) -> bytes:
    data = b""
    while len(data) < n:
        chunk = rfile.read(n - len(data))
        if not chunk:
            raise WSError("socket closed mid-frame")
        data += chunk
    return data


def read_frame(rfile) -> tuple[int, bytes]:
    """Read one frame; returns ``(opcode, payload)`` with masking undone.
    Control frames (close/ping/pong) are returned to the caller — this
    layer does not auto-respond."""
    b0, b1 = _read_exact(rfile, 2)
    if not b0 & 0x80:
        raise WSError("fragmented frames are not supported")
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    if length == 126:
        (length,) = struct.unpack("!H", _read_exact(rfile, 2))
    elif length == 127:
        (length,) = struct.unpack("!Q", _read_exact(rfile, 8))
    key = _read_exact(rfile, 4) if masked else None
    payload = _read_exact(rfile, length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload
