"""Bounded LRU cache of *pure* run results, with optional persistence.

The service consults this before dispatching a run and stores into it
after one finishes — but only for runs the determinism analysis
(:mod:`repro.analysis.determinism`) proved replayable.  The cache itself
is deliberately dumb: it never judges cacheability, it just remembers
what the service tells it to, keyed by :func:`repro.serve.protocol.run_key`.

Keys are nested tuples (hashable, JSON-roundtrippable as nested lists);
values are the plain result dicts the pool produces.  Stored results are
copied on the way in and handed out as-is — the service copies again per
waiter before mutating (adding ``"cached": True``), so entries stay
frozen.

Persistence is best-effort JSON: load errors at boot and save errors at
shutdown are swallowed (a cold cache is always correct), and the file
format is simply ``[[key, result], ...]`` in LRU order, oldest first.
Saves are **crash-atomic**: the snapshot is written to a private temp
file (unique per process), fsync'd, then renamed over the target — a
process killed mid-save leaves the previous cache file byte-identical,
never a truncated one.  Drain and shutdown both save, and concurrent
saves serialize, so a drain racing a final shutdown cannot interleave
two writers on one temp file.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict


def _freeze(obj):
    """Recursively convert JSON lists back into the tuples run_key built."""
    if isinstance(obj, list):
        return tuple(_freeze(item) for item in obj)
    return obj


class ResultCache:
    """Thread-safe LRU of run results.  ``capacity <= 0`` disables it
    (gets always miss, puts are dropped) while keeping the call sites
    unconditional."""

    def __init__(self, capacity: int = 256, path: str | None = None):
        self.capacity = int(capacity)
        self.path = path
        self._mu = threading.Lock()
        self._save_mu = threading.Lock()
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evicted = 0
        if path:
            self._load()

    def get(self, key: tuple) -> dict | None:
        with self._mu:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: tuple, result: dict) -> None:
        if self.capacity <= 0:
            return
        with self._mu:
            self._entries[key] = dict(result)
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evicted += 1

    def __len__(self) -> int:
        with self._mu:
            return len(self._entries)

    def stats(self) -> dict:
        with self._mu:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evicted": self.evicted,
            }

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                pairs = json.load(fh)
            if not isinstance(pairs, list):
                return
            for pair in pairs:
                if (not isinstance(pair, list) or len(pair) != 2
                        or not isinstance(pair[1], dict)):
                    continue
                key = _freeze(pair[0])
                if isinstance(key, tuple):
                    self._entries[key] = pair[1]
            while 0 < self.capacity < len(self._entries):
                self._entries.popitem(last=False)
        except (OSError, ValueError):
            # A missing or corrupt file just means a cold start.
            self._entries.clear()

    def save(self) -> None:
        """Persist the cache to ``path``, LRU order kept — crash-atomic:
        temp write + fsync + rename, so a kill at any instant leaves
        either the old file or the new one, never a truncation."""
        if not self.path:
            return
        with self._save_mu:
            with self._mu:
                pairs = [[list(key), result]
                         for key, result in self._entries.items()]
            tmp = f"{self.path}.tmp.{os.getpid()}"
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(pairs, fh)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
