"""Canonical Tetra programs: the paper's listings and evaluation workloads.

The three figure listings are verbatim from the paper (modulo the obvious
OCR fixes the paper's PDF needs: ``[1 100]`` is ``[1 ... 100]``).  The
evaluation workloads — the first-N primes counter and the travelling
salesman solver — reconstruct the two programs §IV says were used to
measure "approximately 5X speedup ... on 8 cores"; the paper does not print
their sources, so these are the straightforward Tetra renderings of those
algorithms using the language's own constructs (``parallel for`` + ``lock``).

Every program here is exercised by tests and regenerated into
``examples/tetra/*.ttr`` so users can run them from the CLI.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Figure I — "A Simple Sequential Program"
# ----------------------------------------------------------------------
FIGURE_1_FACTORIAL = '''\
# a simple factorial function
def fact(x int) int:
    if x == 0:
        return 1
    else:
        return x * fact(x - 1)

# a main function which handles I/O
def main():
    print("enter n: ")
    n = read_int()
    print(n, "! = ", fact(n))
'''

# ----------------------------------------------------------------------
# Figure II — "A Parallel Sum Program"
# ----------------------------------------------------------------------
FIGURE_2_PARALLEL_SUM = '''\
# sum a range of numbers
def sumr(nums [int], a int, b int) int:
    total = 0
    i = a
    while i <= b:
        total += nums[i]
        i += 1
    return total

# sum an array of numbers in parallel
def sum(nums [int]) int:
    mid = len(nums) / 2
    parallel:
        a = sumr(nums, 0, mid - 1)
        b = sumr(nums, mid, len(nums) - 1)
    return a + b

# print the sum of 1 through 100
def main():
    print(sum([1 ... 100]))
'''

# ----------------------------------------------------------------------
# Figure III — "A Parallel Max Program"
# ----------------------------------------------------------------------
FIGURE_3_PARALLEL_MAX = '''\
# find the max of an array
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

# run it on some numbers
def main():
    nums = [18, 32, 96, 48, 60]
    print(max(nums))
'''

# ----------------------------------------------------------------------
# Evaluation workload 1 — primes (§IV: "calculates the first million primes")
# ----------------------------------------------------------------------
# Parameterized by LIMIT so benchmarks can scale it; the paper's full-size
# run is LIMIT such that a million primes fit (≈15.5M), far beyond what a
# tree-walking interpreter should be asked to do in a test suite.
PRIMES_TEMPLATE = '''\
# trial-division primality test
def is_prime(n int) bool:
    if n < 2:
        return false
    if n % 2 == 0:
        return n == 2
    d = 3
    while d * d <= n:
        if n % d == 0:
            return false
        d += 2
    return true

# count the primes up to limit, in parallel
def count_primes(limit int) int:
    count = 0
    parallel for n in [2 ... limit]:
        if is_prime(n):
            lock count:
                count += 1
    return count

def main():
    print(count_primes({limit}))
'''


def primes_program(limit: int) -> str:
    """The primes workload, counting primes up to ``limit``."""
    return PRIMES_TEMPLATE.format(limit=limit)


#: Known prime counts for verifying workload output.
PRIME_COUNTS = {100: 25, 1000: 168, 2000: 303, 5000: 669, 10000: 1229}

# ----------------------------------------------------------------------
# Evaluation workload 2 — travelling salesman (§IV)
# ----------------------------------------------------------------------
# Exhaustive search over permutations, parallelized over the first hop from
# city 0 — the natural way to fan a TSP search out across Tetra's
# ``parallel for``.  Distances are a deterministic synthetic matrix so runs
# are reproducible.  The shared best tour is protected by the same
# double-check-then-lock idiom as Figure III.
TSP_TEMPLATE = '''\
# synthetic symmetric distance between cities a and b
def dist(a int, b int) int:
    lo = min(a, b)
    hi = max(a, b)
    return (lo * 7 + hi * 13) % 29 + 1

# cost of the best tour visiting everything in 'remaining', starting at
# 'current', having already paid 'so_far'; 'best_known' prunes the search
def search(current int, remaining [int], so_far int, best_known int) int:
    if so_far >= best_known:
        return best_known
    if len(remaining) == 0:
        return so_far + dist(current, 0)
    best = best_known
    i = 0
    while i < len(remaining):
        next_city = remaining[i]
        rest = array(len(remaining) - 1, 0)
        j = 0
        k = 0
        while j < len(remaining):
            if j != i:
                rest[k] = remaining[j]
                k += 1
            j += 1
        cost = search(next_city, rest, so_far + dist(current, next_city), best)
        if cost < best:
            best = cost
        i += 1
    return best

# best tour whose first two hops are 0 -> first -> second.  Worker-local
# scratch lives in this function's own activation, so parallel workers
# cannot interfere; p encodes the (first, second) pair.
def tour_from_pair(p int, n int, bound int) int:
    first = p / (n - 2) + 1
    second_index = p % (n - 2)
    second = 0
    k = 0
    c = 1
    while c < n:
        if c != first:
            if k == second_index:
                second = c
            k += 1
        c += 1
    rest = array(n - 3, 0)
    k = 0
    c = 1
    while c < n:
        if c != first and c != second:
            rest[k] = c
            k += 1
        c += 1
    start_cost = dist(0, first) + dist(first, second)
    return search(second, rest, start_cost, bound)

# solve TSP over cities 0..n-1, fanning the search out over the first two
# hops ((n-1)*(n-2) independent subtrees); per-worker results land in slots
# indexed by the private induction variable, and the shared pruning bound is
# updated under a lock (Figure III's double-check idiom)
def solve(n int) int:
    pairs = (n - 1) * (n - 2)
    best = 1000000
    results = array(pairs, 1000000)
    parallel for p in [0 ... pairs - 1]:
        results[p] = tour_from_pair(p, n, best)
        if results[p] < best:
            lock best:
                if results[p] < best:
                    best = results[p]
    return best

def main():
    print(solve({cities}))
'''


def tsp_program(cities: int) -> str:
    """The TSP workload over ``cities`` synthetic cities (cities >= 3)."""
    if cities < 3:
        raise ValueError("the TSP workload needs at least 3 cities")
    return TSP_TEMPLATE.format(cities=cities)


# ----------------------------------------------------------------------
# Teaching programs referenced by the IDE/debugger documentation
# ----------------------------------------------------------------------
RACE_DEMO = '''\
# A deliberately racy max: the check and the write are not atomic, so a
# thread can overwrite a larger value that landed in between.  Run it under
# the cooperative scheduler with different schedules to see both answers.
def racy_max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            largest = num
    return largest

def main():
    nums = [90, 1, 2, 3]
    print(racy_max(nums))
'''

DEADLOCK_DEMO = '''\
# Two threads take the same two locks in opposite orders — the classic
# deadlock.  Tetra detects the cycle and explains it instead of hanging.
def take_ab():
    lock a:
        x = 1
        lock b:
            x = 2

def take_ba():
    lock b:
        y = 1
        lock a:
            y = 2

def main():
    parallel:
        take_ab()
        take_ba()
'''

BACKGROUND_DEMO = '''\
# background blocks launch work without waiting for it
def chime(label string, times int):
    i = 0
    while i < times:
        print(label, " ", i)
        i += 1

def main():
    background:
        chime("background", 3)
    print("main keeps going")
'''

WORD_COUNT_DEMO = '''\
# The implemented future-work features in one program: associative arrays,
# typed declarations, and error handling.  Counts words in parallel, one
# shard per worker, merged under a lock.
def count_words(text string, workers int) {string: int}:
    words = split(text, " ")
    # array() deep-copies its initial value, so every shard is independent
    shards = array(workers, empty_counts())
    parallel for w in [0 ... workers - 1]:
        count_shard(words, w, workers, shards[w])
    totals {string: int} = {}
    for shard in shards:
        for word in shard:
            totals[word] = get_or(totals, word, 0) + shard[word]
    return totals

def empty_counts() {string: int}:
    fresh {string: int} = {}
    return fresh

# each worker counts the words at positions w, w+workers, ... into its own
# shard, so no locking is needed until the merge
def count_shard(words [string], w int, workers int, shard {string: int}):
    i = w
    while i < len(words):
        shard[words[i]] = get_or(shard, words[i], 0) + 1
        i += workers

def main():
    text = "the quick brown fox jumps over the lazy dog the fox"
    counts = count_words(text, 4)
    for word in counts:
        print(word, ": ", counts[word])
    try:
        print(counts["missing"])
    catch problem:
        print("lookup failed: ", problem)
'''

BANK_DEMO = """\
# Classes + locks: the textbook shared-account example.  Four tellers
# deposit concurrently; the lock keeps the read-modify-write atomic.
class Account:
    owner string
    balance int

    def deposit(amount int):
        self.balance += amount

    def describe() string:
        return self.owner + " has " + str(self.balance)

def main():
    account = Account("team", 0)
    parallel for i in [1 ... 100]:
        lock account:
            account.deposit(10)
    print(account.describe())
    print(account)
"""

#: Name → source for everything above (drives example generation and tests).
ALL_PROGRAMS: dict[str, str] = {
    "figure1_factorial": FIGURE_1_FACTORIAL,
    "figure2_parallel_sum": FIGURE_2_PARALLEL_SUM,
    "figure3_parallel_max": FIGURE_3_PARALLEL_MAX,
    "primes_2000": primes_program(2000),
    "tsp_7": tsp_program(7),
    "race_demo": RACE_DEMO,
    "deadlock_demo": DEADLOCK_DEMO,
    "background_demo": BACKGROUND_DEMO,
    "word_count": WORD_COUNT_DEMO,
    "bank_account": BANK_DEMO,
}
