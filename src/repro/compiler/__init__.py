"""Tetra → Python compiler (the paper's future-work native compiler)."""

from .codegen import CodeGenerator, compile_to_python, load_compiled, run_compiled

__all__ = ["CodeGenerator", "compile_to_python", "load_compiled", "run_compiled"]
