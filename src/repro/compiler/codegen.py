"""The Tetra compiler: AST → Python source using ``threading``.

The paper's future-work item: "add a native code compiler, which will
compile Tetra code into an efficient executable, possibly by targeting C
with Pthreads as the output language."  This reproduction targets Python
with ``threading`` (DESIGN.md §4): the pipeline position is identical
(typed AST → lower-level language with a thread library), and the generated
code is differential-tested against the interpreter.

Mapping highlights:

* Tetra functions become nested Python functions inside one ``_program``
  closure, giving them access to the per-run :class:`ProgramRuntime`
  (console, named locks, background threads) without globals.
* Variables are mangled ``v_<name>`` and functions ``t_<name>`` so Tetra
  identifiers can never collide with Python keywords or the runtime.
* ``parallel`` children compile to nested ``def``s that declare
  ``nonlocal`` for every enclosing-scope variable they assign — the
  compiled analogue of the interpreter's shared symbol tables.  Variables
  first assigned *inside* a parallel construct are pre-initialized at
  function entry so the ``nonlocal`` has a binding to refer to.
* The ``parallel for`` induction variable becomes the worker function's
  loop variable — lexically private, matching the private symbol table.
* Static types drive operator lowering: ``/`` on two ints emits
  ``rt.idiv`` (C-style truncation), otherwise checked real division.
"""

from __future__ import annotations

from ..errors import TetraInternalError
from ..source import SourceFile
from ..tetra_ast import (
    ArrayLiteral,
    Assign,
    Attribute,
    AugAssign,
    BackgroundBlock,
    BinaryOp,
    BinOp,
    Block,
    BoolLiteral,
    Break,
    Call,
    ClassDef,
    Continue,
    Declare,
    DictLiteral,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    If,
    Index,
    IntLiteral,
    LockStmt,
    MethodCall,
    Name,
    Node,
    ParallelBlock,
    ParallelFor,
    Pass,
    Program,
    RangeLiteral,
    RealLiteral,
    Return,
    Stmt,
    StringLiteral,
    TryStmt,
    TupleLiteral,
    Unary,
    UnaryOp,
    Unpack,
    While,
    walk,
)
from ..types import (
    BOOL,
    INT,
    REAL,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    DictType,
    IntType,
    RealType,
    TupleType,
    Type,
    check_program,
    from_type_expr,
)

_MODULE_HEADER = '''\
"""Python module compiled from Tetra source {name!r} by repro.compiler.

Run it with ``python thisfile.py`` or import it and call ``run()``.
"""

from repro.compiler import runtime_support as rt


def _program(_rt):
    _io = _rt.io
'''

_MODULE_FOOTER = '''

def run(io=None, num_workers=None, chunking="block"):
    """Execute the program once with fresh runtime state."""
    _rt = rt.ProgramRuntime(io, num_workers, chunking)
    functions = _program(_rt)
    try:
        functions["main"]()
    finally:
        _rt.finish()
    return _rt


if __name__ == "__main__":
    run()
'''


def _type_expr(t: Type) -> str:
    """Python expression that rebuilds a semantic type at runtime."""
    if isinstance(t, ArrayType):
        return f"rt.ArrayType({_type_expr(t.element)})"
    if isinstance(t, DictType):
        return f"rt.DictType({_type_expr(t.key)}, {_type_expr(t.value)})"
    if isinstance(t, TupleType):
        inner = ", ".join(_type_expr(e) for e in t.elements)
        return f"rt.TupleType(({inner},))"
    if isinstance(t, ClassType):
        return f"rt.ClassType({t.name!r})"
    return {INT: "rt.INT", REAL: "rt.REAL", STRING: "rt.STRING",
            BOOL: "rt.BOOL"}[t]


def _assigned_directly(stmts: list[Stmt]) -> set[str]:
    """Variable names a statement list assigns *in its own scope* — not
    inside nested parallel constructs (those become nested defs with their
    own nonlocal declarations)."""
    names: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, Assign) and isinstance(stmt.target, Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, AugAssign) and isinstance(stmt.target, Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, Declare):
            names.add(stmt.name)
        elif isinstance(stmt, Unpack):
            names |= {t.id for t in stmt.targets if isinstance(t, Name)}
        elif isinstance(stmt, TryStmt):
            names.add(stmt.error_name)
            names |= _assigned_directly(stmt.body.statements)
            names |= _assigned_directly(stmt.handler.statements)
        elif isinstance(stmt, For):
            names.add(stmt.var)
            names |= _assigned_directly(stmt.body.statements)
        elif isinstance(stmt, If):
            names |= _assigned_directly(stmt.then.statements)
            for clause in stmt.elifs:
                names |= _assigned_directly(clause.body.statements)
            if stmt.orelse is not None:
                names |= _assigned_directly(stmt.orelse.statements)
        elif isinstance(stmt, While):
            names |= _assigned_directly(stmt.body.statements)
        elif isinstance(stmt, LockStmt):
            names |= _assigned_directly(stmt.body.statements)
        # ParallelBlock / BackgroundBlock / ParallelFor bodies run in
        # nested defs; their assignments are not direct.
    return names


def _assigned_anywhere(stmts: list[Stmt]) -> set[str]:
    """All enclosing-scope names assigned in the subtree, including inside
    parallel constructs (but excluding induction variables, which are
    private to their workers)."""
    names: set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, (Assign, AugAssign)) and isinstance(stmt.target, Name):
            names.add(stmt.target.id)
        if isinstance(stmt, Declare):
            names.add(stmt.name)
        if isinstance(stmt, Unpack):
            names |= {t.id for t in stmt.targets if isinstance(t, Name)}
        if isinstance(stmt, TryStmt):
            names.add(stmt.error_name)
        if isinstance(stmt, For):
            names.add(stmt.var)
        for child_block in _blocks_of(stmt):
            names |= _assigned_anywhere(child_block.statements)
        if isinstance(stmt, ParallelFor):
            names.discard(stmt.var)
    return names


def _blocks_of(stmt: Stmt) -> list[Block]:
    blocks: list[Block] = []
    if isinstance(stmt, If):
        blocks.append(stmt.then)
        blocks.extend(c.body for c in stmt.elifs)
        if stmt.orelse is not None:
            blocks.append(stmt.orelse)
    elif isinstance(stmt, (While, For, ParallelFor, ParallelBlock,
                           BackgroundBlock, LockStmt)):
        blocks.append(stmt.body)
    elif isinstance(stmt, TryStmt):
        blocks.append(stmt.body)
        blocks.append(stmt.handler)
    return blocks


class CodeGenerator:
    def __init__(self, program: Program, source: SourceFile | None = None,
                 module_name: str = "<tetra>"):
        if not hasattr(program, "symbols"):
            check_program(program, source)
        self.program = program
        self.symbols = program.symbols  # type: ignore[attr-defined]
        self.module_name = module_name
        self.lines: list[str] = []
        self._tmp = 0
        self._user_functions = {fn.name for fn in program.functions}
        self._current_return_type: Type = VOID

    # ------------------------------------------------------------------
    def generate(self) -> str:
        self.lines = [_MODULE_HEADER.format(name=self.module_name)]
        for cls in getattr(self.program, "classes", []):
            self._class(cls)
        for fn in self.program.functions:
            self._function(fn)
            self.lines.append("")
        exports = ", ".join(
            f'"{fn.name}": t_{fn.name}' for fn in self.program.functions
        )
        self._emit(1, f"return {{{exports}}}")
        return "\n".join(self.lines) + _MODULE_FOOTER

    def _class(self, cls: ClassDef) -> None:
        """Methods compile to functions taking the instance explicitly."""
        info = self.symbols.classes[cls.name]
        names = ", ".join(repr(n) for n in info.field_names)
        types = ", ".join(
            f"{n!r}: {_type_expr(t)}"
            for n, t in zip(info.field_names, info.field_types)
        )
        self._emit(1, f"_fields_{cls.name} = {{{types}}}")
        self._emit(1, f"_order_{cls.name} = [{names}]")
        self.lines.append("")
        for method in cls.methods:
            self._current_return_type = info.methods[method.name].return_type
            params = ", ".join(
                ["v_self"] + [f"v_{p.name}" for p in method.params]
            )
            self._emit(1, f"def t_{cls.name}__{method.name}({params}):")
            direct = _assigned_directly(method.body.statements)
            everywhere = _assigned_anywhere(method.body.statements)
            param_names = {p.name for p in method.params} | {"self"}
            for name in sorted((everywhere - direct) - param_names):
                self._emit(2, f"v_{name} = None")
            if not method.body.statements:
                self._emit(2, "pass")
            self._block(method.body, 2)
            self.lines.append("")

    def _emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def _fresh(self, base: str) -> str:
        self._tmp += 1
        return f"_{base}{self._tmp}"

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def _function(self, fn: FunctionDef) -> None:
        params = ", ".join(f"v_{p.name}" for p in fn.params)
        self._emit(1, f"def t_{fn.name}({params}):")
        self._current_return_type = self.symbols.functions[fn.name].return_type
        param_names = {p.name for p in fn.params}
        direct = _assigned_directly(fn.body.statements)
        everywhere = _assigned_anywhere(fn.body.statements)
        # Pre-initialize names only ever assigned inside parallel constructs
        # so nested defs have a binding to declare nonlocal against.
        needs_init = sorted((everywhere - direct) - param_names)
        for name in needs_init:
            self._emit(2, f"v_{name} = None")
        if not fn.body.statements and not needs_init:
            self._emit(2, "pass")
        self._block(fn.body, 2)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _block(self, block: Block, depth: int) -> None:
        if not block.statements:
            self._emit(depth, "pass")
            return
        for stmt in block.statements:
            self._stmt(stmt, depth)

    def _stmt(self, stmt: Stmt, depth: int) -> None:
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is None:
            raise TetraInternalError(
                f"codegen has no handler for {type(stmt).__name__}"
            )
        handler(stmt, depth)

    def _stmt_ExprStmt(self, stmt: ExprStmt, depth: int) -> None:
        self._emit(depth, self._expr(stmt.expr))

    def _stmt_Assign(self, stmt: Assign, depth: int) -> None:
        value = self._coerced(stmt.value, getattr(stmt.target, "ty", None))
        if isinstance(stmt.target, Name):
            self._emit(depth, f"v_{stmt.target.id} = {value}")
        elif isinstance(stmt.target, Attribute):
            self._emit(
                depth,
                f"rt.set_attr({self._expr(stmt.target.base)}, "
                f"{stmt.target.attr!r}, {value}, {stmt.span.line})",
            )
        else:
            assert isinstance(stmt.target, Index)
            base = self._expr(stmt.target.base)
            index = self._expr(stmt.target.index)
            self._emit(
                depth,
                f"rt.store_index({base}, {index}, {value}, {stmt.span.line})",
            )

    def _stmt_AugAssign(self, stmt: AugAssign, depth: int) -> None:
        # Desugar to load-op-store; the double evaluation of the index
        # expression matches the interpreter exactly.
        load = self._expr(stmt.target)
        combined = self._binop_text(
            stmt.op, load, getattr(stmt.target, "ty", None),
            self._expr(stmt.value), getattr(stmt.value, "ty", None),
            stmt.span.line,
        )
        if isinstance(stmt.target, Name):
            self._emit(depth, f"v_{stmt.target.id} = {combined}")
        elif isinstance(stmt.target, Attribute):
            self._emit(
                depth,
                f"rt.set_attr({self._expr(stmt.target.base)}, "
                f"{stmt.target.attr!r}, {combined}, {stmt.span.line})",
            )
        else:
            assert isinstance(stmt.target, Index)
            base = self._expr(stmt.target.base)
            index = self._expr(stmt.target.index)
            self._emit(
                depth,
                f"rt.store_index({base}, {index}, {combined}, {stmt.span.line})",
            )

    def _stmt_Unpack(self, stmt: Unpack, depth: int) -> None:
        tmp = self._fresh("unpack")
        self._emit(depth, f"{tmp} = {self._expr(stmt.value)}.items")
        for i, target in enumerate(stmt.targets):
            if isinstance(target, Name):
                self._emit(depth, f"v_{target.id} = {tmp}[{i}]")
            elif isinstance(target, Attribute):
                self._emit(
                    depth,
                    f"rt.set_attr({self._expr(target.base)}, "
                    f"{target.attr!r}, {tmp}[{i}], {stmt.span.line})",
                )
            else:
                assert isinstance(target, Index)
                base = self._expr(target.base)
                index = self._expr(target.index)
                self._emit(
                    depth,
                    f"rt.store_index({base}, {index}, {tmp}[{i}], "
                    f"{stmt.span.line})",
                )

    def _stmt_Declare(self, stmt: Declare, depth: int) -> None:
        declared = from_type_expr(stmt.declared_type)
        value = self._coerced(stmt.value, declared)
        self._emit(depth, f"v_{stmt.name} = {value}")

    def _stmt_TryStmt(self, stmt: TryStmt, depth: int) -> None:
        err = self._fresh("err")
        self._emit(depth, "try:")
        self._block(stmt.body, depth + 1)
        self._emit(depth, f"except rt.TetraRuntimeError as {err}:")
        self._emit(depth + 1, f"if not rt.is_catchable({err}):")
        self._emit(depth + 2, "raise")
        self._emit(depth + 1, f"v_{stmt.error_name} = {err}.message")
        self._block(stmt.handler, depth + 1)

    def _stmt_If(self, stmt: If, depth: int) -> None:
        self._emit(depth, f"if {self._expr(stmt.cond)}:")
        self._block(stmt.then, depth + 1)
        for clause in stmt.elifs:
            self._emit(depth, f"elif {self._expr(clause.cond)}:")
            self._block(clause.body, depth + 1)
        if stmt.orelse is not None:
            self._emit(depth, "else:")
            self._block(stmt.orelse, depth + 1)

    def _stmt_While(self, stmt: While, depth: int) -> None:
        self._emit(depth, f"while {self._expr(stmt.cond)}:")
        self._block(stmt.body, depth + 1)

    def _stmt_For(self, stmt: For, depth: int) -> None:
        self._emit(
            depth,
            f"for v_{stmt.var} in rt.iter_value({self._expr(stmt.iterable)}, "
            f"{stmt.span.line}):",
        )
        self._block(stmt.body, depth + 1)

    def _stmt_ParallelFor(self, stmt: ParallelFor, depth: int) -> None:
        worker = self._fresh("worker")
        chunk = self._fresh("chunk")
        self._emit(depth, f"def {worker}({chunk}):")
        shared = sorted(_assigned_anywhere(stmt.body.statements) - {stmt.var})
        if shared:
            self._emit(depth + 1, "nonlocal " + ", ".join(f"v_{n}" for n in shared))
        self._emit(depth + 1, f"for v_{stmt.var} in {chunk}:")
        self._block(stmt.body, depth + 2)
        self._emit(
            depth,
            f"_rt.run_parallel_for(rt.iter_value({self._expr(stmt.iterable)}, "
            f"{stmt.span.line}), {worker}, {stmt.span.line})",
        )

    def _stmt_ParallelBlock(self, stmt: ParallelBlock, depth: int) -> None:
        self._spawn_group(stmt, depth, join=True)

    def _stmt_BackgroundBlock(self, stmt: BackgroundBlock, depth: int) -> None:
        self._spawn_group(stmt, depth, join=False)

    def _spawn_group(self, stmt, depth: int, join: bool) -> None:
        thunk_names: list[str] = []
        for child in stmt.body.statements:
            thunk = self._fresh("par")
            thunk_names.append(thunk)
            self._emit(depth, f"def {thunk}():")
            shared = sorted(_assigned_anywhere([child]))
            if shared:
                self._emit(
                    depth + 1, "nonlocal " + ", ".join(f"v_{n}" for n in shared)
                )
            self._stmt(child, depth + 1)
        joined = ", ".join(thunk_names)
        self._emit(
            depth,
            f"_rt.run_group([{joined}], join={join}, line={stmt.span.line})",
        )

    def _stmt_LockStmt(self, stmt: LockStmt, depth: int) -> None:
        self._emit(depth, f"with _rt.lock({stmt.name!r}, {stmt.span.line}):")
        self._block(stmt.body, depth + 1)

    def _stmt_Return(self, stmt: Return, depth: int) -> None:
        if stmt.value is None:
            self._emit(depth, "return")
        else:
            # _coerced widens int returns from real-returning functions.
            value = self._coerced(stmt.value, self._current_return_type)
            self._emit(depth, f"return {value}")

    def _stmt_Break(self, stmt: Break, depth: int) -> None:
        self._emit(depth, "break")

    def _stmt_Continue(self, stmt: Continue, depth: int) -> None:
        self._emit(depth, "continue")

    def _stmt_Pass(self, stmt: Pass, depth: int) -> None:
        self._emit(depth, "pass")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _coerced(self, expr: Expr, want: Type | None) -> str:
        """Expression text, widened to real if the destination wants one."""
        text = self._expr(expr)
        got = getattr(expr, "ty", None)
        if isinstance(want, RealType) and isinstance(got, IntType):
            return f"float({text})"
        if isinstance(want, TupleType) and got != want:
            return f"rt.coerce_to({text}, {_type_expr(want)})"
        return text

    def _expr(self, expr: Expr) -> str:
        handler = getattr(self, f"_expr_{type(expr).__name__}", None)
        if handler is None:
            raise TetraInternalError(
                f"codegen has no handler for {type(expr).__name__}"
            )
        return handler(expr)

    def _expr_IntLiteral(self, expr: IntLiteral) -> str:
        return repr(expr.value)

    def _expr_RealLiteral(self, expr: RealLiteral) -> str:
        return repr(expr.value)

    def _expr_StringLiteral(self, expr: StringLiteral) -> str:
        return repr(expr.value)

    def _expr_BoolLiteral(self, expr: BoolLiteral) -> str:
        return "True" if expr.value else "False"

    def _expr_Name(self, expr: Name) -> str:
        return f"v_{expr.id}"

    def _expr_ArrayLiteral(self, expr: ArrayLiteral) -> str:
        ty = getattr(expr, "ty", None)
        element = ty.element if isinstance(ty, ArrayType) else INT
        items = ", ".join(self._coerced(e, element) for e in expr.elements)
        return f"rt.make_array([{items}], {_type_expr(element)})"

    def _expr_TupleLiteral(self, expr: TupleLiteral) -> str:
        ty = getattr(expr, "ty", None)
        assert isinstance(ty, TupleType), "tuple literal was not typed"
        items = ", ".join(
            self._coerced(e, t) for e, t in zip(expr.elements, ty.elements)
        )
        return f"rt.TetraTuple(({items},))"

    def _expr_DictLiteral(self, expr: DictLiteral) -> str:
        ty = getattr(expr, "ty", None)
        assert isinstance(ty, DictType), "dict literal was not typed"
        entries = ", ".join(
            f"({self._expr(k)}, {self._coerced(v, ty.value)})"
            for k, v in expr.entries
        )
        return (f"rt.make_dict([{entries}], {_type_expr(ty.key)}, "
                f"{_type_expr(ty.value)})")

    def _expr_RangeLiteral(self, expr: RangeLiteral) -> str:
        return (
            f"rt.make_range({self._expr(expr.start)}, {self._expr(expr.stop)})"
        )

    def _expr_Index(self, expr: Index) -> str:
        return (
            f"rt.index_value({self._expr(expr.base)}, "
            f"{self._expr(expr.index)}, {expr.span.line})"
        )

    def _expr_Attribute(self, expr: Attribute) -> str:
        return (f"rt.get_attr({self._expr(expr.base)}, {expr.attr!r}, "
                f"{expr.span.line})")

    def _expr_MethodCall(self, expr: MethodCall) -> str:
        base_ty = getattr(expr.base, "ty", None)
        assert isinstance(base_ty, ClassType), "method call base untyped"
        sig = self.symbols.classes[base_ty.name].methods[expr.method]
        args = ", ".join(
            [self._expr(expr.base)]
            + [self._coerced(a, want)
               for a, want in zip(expr.args, sig.param_types[1:])]
        )
        return f"t_{base_ty.name}__{expr.method}({args})"

    def _expr_Call(self, expr: Call) -> str:
        if expr.func in self._user_functions:
            sig = self.symbols.functions[expr.func]
            args = ", ".join(
                self._coerced(a, want)
                for a, want in zip(expr.args, sig.param_types)
            )
            return f"t_{expr.func}({args})"
        if expr.func in self.symbols.classes:
            info = self.symbols.classes[expr.func]
            values = ", ".join(
                f"{n!r}: {self._coerced(a, t)}"
                for n, a, t in zip(info.field_names, expr.args,
                                   info.field_types)
            )
            return (f"rt.TetraObject({expr.func!r}, {{{values}}}, "
                    f"_fields_{expr.func}, _order_{expr.func})")
        args = ", ".join(self._expr(a) for a in expr.args)
        return (
            f"rt.call_builtin({expr.func!r}, [{args}], _io, {expr.span.line})"
        )

    def _expr_Unary(self, expr: Unary) -> str:
        operand = self._expr(expr.operand)
        if expr.op is UnaryOp.NEG:
            return f"(-({operand}))"
        if expr.op is UnaryOp.POS:
            return f"(+({operand}))"
        return f"(not ({operand}))"

    def _expr_BinOp(self, expr: BinOp) -> str:
        return self._binop_text(
            expr.op,
            self._expr(expr.left), getattr(expr.left, "ty", None),
            self._expr(expr.right), getattr(expr.right, "ty", None),
            expr.span.line,
        )

    def _binop_text(self, op: BinaryOp, left: str, left_ty: Type | None,
                    right: str, right_ty: Type | None, line: int) -> str:
        both_int = isinstance(left_ty, IntType) and isinstance(right_ty, IntType)
        if op is BinaryOp.DIV:
            if both_int:
                return f"rt.int_div({left}, {right}, rt.span_at({line}))"
            return (
                f"rt.real_div(float({left}), float({right}), rt.span_at({line}))"
            )
        if op is BinaryOp.MOD:
            if both_int:
                return f"rt.int_mod({left}, {right}, rt.span_at({line}))"
            return (
                f"rt.real_mod(float({left}), float({right}), rt.span_at({line}))"
            )
        if op is BinaryOp.POW:
            return f"rt.tetra_pow({left}, {right}, rt.span_at({line}))"
        symbol = {
            BinaryOp.ADD: "+", BinaryOp.SUB: "-", BinaryOp.MUL: "*",
            BinaryOp.EQ: "==", BinaryOp.NE: "!=", BinaryOp.LT: "<",
            BinaryOp.LE: "<=", BinaryOp.GT: ">", BinaryOp.GE: ">=",
            BinaryOp.AND: "and", BinaryOp.OR: "or",
        }[op]
        return f"(({left}) {symbol} ({right}))"


def compile_to_python(program_or_text, source: SourceFile | None = None,
                      module_name: str = "<tetra>") -> str:
    """Compile a (checked) program or raw Tetra text to Python source."""
    if isinstance(program_or_text, str):
        from ..parser import parse_source

        source = SourceFile.from_string(program_or_text, module_name)
        program = parse_source(source)
    else:
        program = program_or_text
    return CodeGenerator(program, source, module_name).generate()


def load_compiled(python_code: str):
    """Exec generated code and return its namespace (exposes ``run``)."""
    namespace: dict = {}
    exec(compile(python_code, "<tetra-compiled>", "exec"), namespace)
    return namespace


def run_compiled(tetra_text: str, inputs: list[str] | None = None,
                 num_workers: int | None = None, chunking: str = "block"):
    """Compile, load, and run Tetra source; returns the CapturingIO used.

    The mirror of :func:`repro.api.run_source` for the compiled path —
    differential tests assert both produce identical output.
    """
    from ..stdlib.io import CapturingIO

    code = compile_to_python(tetra_text)
    namespace = load_compiled(code)
    io = CapturingIO(inputs or [])
    namespace["run"](io=io, num_workers=num_workers, chunking=chunking)
    return io
