"""Runtime library linked against compiled Tetra programs.

The code generator (:mod:`repro.compiler.codegen`) emits Python that calls
into this module as ``rt`` — the analogue of the C runtime the paper's
future-work native compiler (Tetra → C + Pthreads) would link against.
Everything semantic is *shared with the interpreter* (same builtins, same
numeric helpers, same lock table with deadlock detection), so the two
execution paths cannot drift apart; this module only adds the glue compiled
code needs (thread groups, context managers, iteration helpers).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..errors import (
    TetraError,
    TetraRuntimeError,
    TetraThreadError,
    is_catchable,
)
from ..source import NO_SPAN, Span
from ..runtime.locks import LockTable
from ..runtime.values import (
    TetraArray,
    TetraDict,
    TetraObject,
    TetraTuple,
    coerce_to,
    int_div,
    int_mod,
    make_array,
    real_div,
    real_mod,
    tetra_pow,
)
from ..stdlib.io import IOChannel, StandardIO
from ..stdlib.registry import BUILTINS
from ..types.types import (
    BOOL,
    INT,
    REAL,
    STRING,
    ArrayType,
    ClassType,
    DictType,
    TupleType,
)

__all__ = [
    "BOOL", "INT", "REAL", "STRING", "ArrayType", "DictType",
    "TetraArray", "TetraDict", "TetraObject", "TetraTuple", "TupleType",
    "ClassType", "get_attr", "set_attr",
    "TetraRuntimeError", "is_catchable", "coerce_to",
    "int_div", "int_mod", "real_div", "real_mod", "tetra_pow",
    "make_array", "make_dict", "make_range",
    "iter_value", "index_value", "store_index",
    "call_builtin", "ProgramRuntime", "span_at",
]


def span_at(line: int) -> Span:
    """A minimal span for runtime error locations in compiled code."""
    return Span(0, 0, line, 1)


def make_range(start: int, stop: int) -> TetraArray:
    """Inclusive ``[start ... stop]`` range (empty when start > stop)."""
    return TetraArray(list(range(start, stop + 1)), INT)


def make_dict(entries, key_type, value_type) -> TetraDict:
    """Build a dict literal, widening int values into real-valued dicts."""
    return TetraDict(
        {k: coerce_to(v, value_type) for k, v in entries},
        key_type, value_type,
    )


def iter_value(value, line: int = 0):
    """The items a for-loop visits (arrays, strings, dict keys)."""
    if isinstance(value, TetraArray):
        return list(value.items)
    if isinstance(value, str):
        return list(value)
    if isinstance(value, TetraDict):
        return value.sorted_keys()
    raise TetraRuntimeError(
        "for loops need an array, a string, or a dict", span_at(line)
    )


def index_value(base, index, line: int = 0):
    if isinstance(base, TetraArray):
        return base.get(index, span_at(line))
    if isinstance(base, TetraDict):
        return base.get(index, span_at(line))
    if isinstance(base, TetraTuple):
        return base.get(index, span_at(line))
    if isinstance(base, str):
        if not 0 <= index < len(base):
            raise TetraRuntimeError(
                f"index {index} is out of range for a string of length "
                f"{len(base)}",
                span_at(line),
            )
        return base[index]
    raise TetraRuntimeError("this value cannot be indexed", span_at(line))


def store_index(base, index, value, line: int = 0) -> None:
    if isinstance(base, TetraArray):
        base.set(index, coerce_to(value, base.element_type), span_at(line))
        return
    if isinstance(base, TetraDict):
        base.set(index, coerce_to(value, base.value_type))
        return
    raise TetraRuntimeError(
        "only array and dict elements can be assigned through an index",
        span_at(line),
    )


def get_attr(obj, name: str, line: int = 0):
    if not isinstance(obj, TetraObject):
        raise TetraRuntimeError(
            "only class instances have fields", span_at(line)
        )
    return obj.get(name, span_at(line))


def set_attr(obj, name: str, value, line: int = 0) -> None:
    if not isinstance(obj, TetraObject):
        raise TetraRuntimeError(
            "only class instances have fields", span_at(line)
        )
    obj.set(name, value, span_at(line))


def call_builtin(name: str, args: list, io: IOChannel, line: int = 0):
    return BUILTINS[name].invoke(args, io, span_at(line))


class ProgramRuntime:
    """Per-program state of a compiled Tetra module: console, named locks,
    and background threads.  One instance is created per execution, so a
    compiled module can be run many times with fresh state."""

    def __init__(self, io: IOChannel | None = None,
                 num_workers: int | None = None, chunking: str = "block"):
        self.io = io or StandardIO()
        self.locks = LockTable()
        self.num_workers = num_workers
        self.chunking = chunking
        self._background: list[threading.Thread] = []
        self._bg_errors: list[BaseException] = []
        self._monitor = threading.Lock()

    # ------------------------------------------------------------------
    def run_group(self, thunks, join: bool, line: int = 0) -> None:
        """``parallel:`` (join=True) / ``background:`` (join=False)."""
        errors: list[BaseException] = []
        err_lock = threading.Lock()

        def runner(thunk):
            try:
                thunk()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with err_lock:
                    errors.append(exc)
                if not join:
                    with self._monitor:
                        self._bg_errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(t,), daemon=False)
            for t in thunks
        ]
        for thread in threads:
            thread.start()
        if join:
            for thread in threads:
                thread.join()
            if errors:
                exc = errors[0]
                if isinstance(exc, TetraError):
                    raise exc
                raise TetraThreadError(
                    f"a parallel thread failed with {type(exc).__name__}: {exc}",
                    span_at(line),
                ) from exc
        else:
            with self._monitor:
                self._background.extend(threads)

    def run_parallel_for(self, items, worker, line: int = 0) -> None:
        """``parallel for``: partition items, one thread per chunk."""
        import os

        if not items:
            return
        n = self.num_workers or os.cpu_count() or 1
        n = max(1, min(n, len(items)))
        if self.chunking == "cyclic":
            chunks = [items[w::n] for w in range(n)]
        else:
            base, extra = divmod(len(items), n)
            chunks, start = [], 0
            for w in range(n):
                size = base + (1 if w < extra else 0)
                chunks.append(items[start:start + size])
                start += size
        self.run_group(
            [lambda c=c: worker(c) for c in chunks if c], join=True, line=line
        )

    @contextmanager
    def lock(self, name: str, line: int = 0):
        key = threading.get_ident()
        self.locks.acquire(name, key, span_at(line))
        try:
            yield
        finally:
            self.locks.release(name, key)

    def finish(self) -> None:
        """Join background threads; called when main() returns."""
        while True:
            with self._monitor:
                if not self._background:
                    break
                thread = self._background.pop()
            thread.join()
        with self._monitor:
            if self._bg_errors:
                raise self._bg_errors[0]
