"""The native tier: Tetra → C kernels that escape the interpreter loop.

The paper's stated future work is "a compiler that compiles Tetra code
down to efficient low-level parallel code".  This module is that tier:
type-checked numeric functions and merge-safe ``parallel for`` bodies are
lowered to C, compiled once per program into a shared object (cached on
disk under ``~/.cache/tetra/native``), and invoked through cffi.  Kernel
calls release the GIL, and lowered ``parallel for`` loops run their chunks
on real OS threads *inside* C — multicore speedup with neither the proc
backend's pickling nor Python's interpreter overhead.

Eligibility reuses the static machinery that already exists:

* the checker's types decide what can be lowered (``int``/``real``/``bool``
  scalars and rank-1 arrays of them);
* :mod:`repro.runtime.parplan`'s merge-safety analysis decides which
  ``parallel for`` loops may offload, exactly as for the proc backend;
* every ineligible function or loop falls back to the current fast path
  with a ``(line, reason)`` surfaced in ``--metrics``, like proc fallbacks.

Lowering contract (see DESIGN §2c for the full write-up):

* ``int`` is ``int64_t`` with two's-complement wraparound (``-fwrapv``) —
  the one semantic deviation from Python's big integers.  Function calls
  whose *arguments* don't fit in 64 bits delegate to the Python fallback
  invoker, so the deviation is only observable through in-kernel overflow.
* ``real`` is ``double`` (bit-identical to CPython floats), ``bool`` is
  ``int64_t`` 0/1.
* Arrays are marshalled by copy (pointer + length); element stores are
  copied back only on success.  A kernel that errors mid-loop does not
  write partial results back — a deviation from the walker observable only
  through ``try``-recovered state.
* Runtime errors (division by zero, index out of range, sqrt domain) latch
  an error code + line in a shared ``tt_ctx`` struct; every loop back-edge
  polls it, so errors and time-limit/cancel interrupts stop hot C loops
  within ~1024 iterations.
"""

from __future__ import annotations

import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import threading
from dataclasses import dataclass, field

from ..errors import (
    TetraIndexError,
    TetraNativeError,
    TetraRuntimeError,
    TetraZeroDivisionError,
)
from ..runtime.parplan import plan_parallel_for
from ..runtime.values import TetraArray
from ..source import Span
from ..tetra_ast import (
    Assign,
    AugAssign,
    BinaryOp,
    BinOp,
    Block,
    BoolLiteral,
    Break,
    Call,
    Continue,
    Declare,
    ExprStmt,
    For,
    If,
    Index,
    IntLiteral,
    LockStmt,
    Name,
    ParallelFor,
    Pass,
    RangeLiteral,
    RealLiteral,
    Return,
    Unary,
    UnaryOp,
    While,
    walk,
)
from ..types import BOOL, INT, REAL, VOID, ArrayType, BoolType, IntType, RealType

#: Bumped whenever the C runtime protocol (tt_ctx layout, helper
#: signatures, kernel calling convention) changes; stale on-disk artifacts
#: with a different ABI recompile cold instead of erroring.
ABI_VERSION = 1

#: Cached shared objects beyond this count are evicted oldest-first.
CACHE_MAX_ENTRIES = 64

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

_SCALARS = (IntType, RealType, BoolType)


def _ctype(ty) -> str:
    return "double" if isinstance(ty, RealType) else "int64_t"


def _is_scalar(ty) -> bool:
    return isinstance(ty, _SCALARS)


def _is_scalar_array(ty) -> bool:
    return isinstance(ty, ArrayType) and _is_scalar(ty.element)


# ----------------------------------------------------------------------
# Toolchain probe
# ----------------------------------------------------------------------
_probe_lock = threading.Lock()
_probed: tuple[bool, str] | None = None


def find_compiler() -> str | None:
    """Path of a working C compiler, or None (probed once per process)."""
    global _probed
    with _probe_lock:
        if _probed is None:
            cc = next(
                (found for name in ("cc", "gcc", "clang")
                 if (found := shutil.which(name))),
                None,
            )
            _probed = (cc is not None, cc or "")
        return _probed[1] if _probed[0] else None


# ----------------------------------------------------------------------
# Per-run state (surfaced in --metrics)
# ----------------------------------------------------------------------
@dataclass
class NativeState:
    """What the native tier did (or why it didn't) during one run."""

    mode: str
    enabled: bool = False
    #: One-line reason the tier is disabled for this run ("" when enabled).
    notice: str = ""
    compiler: str = ""
    #: True when the shared object came from the on-disk artifact cache.
    cache_hit: bool | None = None
    functions: list[str] = field(default_factory=list)
    parallel_loops: int = 0
    calls: int = 0
    parallel_calls: int = 0
    #: (line, reason) for every function/loop that stayed on the fast path.
    fallbacks: list[tuple[int, str]] = field(default_factory=list)
    _seen: set[tuple[int, str]] = field(default_factory=set)

    def note_fallback(self, line: int, reason: str) -> None:
        key = (line, reason)
        if key not in self._seen:
            self._seen.add(key)
            self.fallbacks.append(key)

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "enabled": self.enabled,
            "notice": self.notice,
            "compiler": self.compiler,
            "cache_hit": self.cache_hit,
            "functions": list(self.functions),
            "parallel_loops": self.parallel_loops,
            "calls": self.calls,
            "parallel_calls": self.parallel_calls,
            "fallbacks": [list(f) for f in self.fallbacks],
        }


class _Ineligible(Exception):
    """Raised during emission when a construct cannot be lowered; the
    message is the human-readable fallback reason."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class _CFn:
    """One lowered function: its C name and marshalling signature."""

    name: str
    cname: str
    param_names: tuple[str, ...]
    param_types: tuple  # semantic types, parallel to param_names
    return_type: object
    line: int


@dataclass
class _CLoop:
    """One lowered ``parallel for``: kernel name and environment layout."""

    cname: str
    var: str
    var_ty: object
    #: Non-reduction free variables the body reads: (name, semantic type).
    env: tuple
    #: Reductions merged back by the parent: (name, "sum"|"min"|"max", ty).
    reductions: tuple
    line: int
    #: sha of the owning module's C source — pairs the annotation on the
    #: (shared, cached) AST node with the right compiled artifact.
    module_key: str = ""


@dataclass
class Lowering:
    """The pure result of lowering a program (no toolchain involved)."""

    c_source: str
    cdef: str
    functions: dict  # name -> _CFn
    loops: list  # (ParallelFor node, _CLoop)
    fallbacks: list  # (line, reason)
    line_spans: dict  # line -> Span, for reconstructing error spans

    @property
    def key(self) -> str:
        return hashlib.sha256(self.c_source.encode()).hexdigest()[:16]


@dataclass
class NativeModule:
    """A compiled-and-loaded shared object plus its cffi handles."""

    lowering: Lowering
    ffi: object
    lib: object
    so_path: str
    cache_hit: bool


# ----------------------------------------------------------------------
# Artifact cache + build
# ----------------------------------------------------------------------
class BuildError(Exception):
    pass


def _abi_tag() -> str:
    return f"abi{ABI_VERSION}-{sys.platform}-{platform.machine()}"


def cache_dir() -> str:
    override = os.environ.get("TETRA_NATIVE_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "tetra", "native")


def _evict_lru(directory: str) -> None:
    """Drop the oldest cached artifacts beyond CACHE_MAX_ENTRIES."""
    try:
        entries = [
            (os.path.getmtime(p), p)
            for name in os.listdir(directory)
            if name.endswith(".so")
            and os.path.isfile(p := os.path.join(directory, name))
        ]
    except OSError:
        return
    entries.sort()
    for _, path in entries[:max(0, len(entries) - CACHE_MAX_ENTRIES)]:
        try:
            os.unlink(path)
        except OSError:
            pass


def _compile_so(cc: str, c_source: str, out_path: str) -> None:
    """Compile ``c_source`` to ``out_path`` crash-atomically.

    The object is built in a temp directory and moved into place with
    ``os.replace`` (same discipline as serve/cache.py), so a crashed or
    concurrent build can never leave a half-written .so behind.
    """
    directory = os.path.dirname(out_path)
    os.makedirs(directory, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=directory) as tmp:
        c_path = os.path.join(tmp, "kernel.c")
        so_tmp = os.path.join(tmp, "kernel.so")
        with open(c_path, "w") as fh:
            fh.write(c_source)
        # -fwrapv makes signed int64 overflow well-defined wraparound —
        # part of the lowering contract, not an optimization knob.
        cmd = [cc, "-O2", "-fwrapv", "-shared", "-fPIC",
               "-o", so_tmp, c_path, "-lpthread", "-lm"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise BuildError(
                f"C compilation failed ({cc}):\n{proc.stderr.strip()[:2000]}"
            )
        os.replace(so_tmp, out_path)
    _evict_lru(directory)


#: Loaded modules by lowering key: a shared object is dlopened once per
#: process no matter how many runs share the program.
_modules_lock = threading.Lock()
_modules: dict[str, NativeModule] = {}


def load_module(lowering: Lowering, cc: str) -> NativeModule:
    """Return a loaded NativeModule for ``lowering``, building if needed."""
    key = lowering.key
    with _modules_lock:
        cached = _modules.get(key)
        if cached is not None:
            return cached
        from cffi import FFI

        so_path = os.path.join(cache_dir(), f"{key}-{_abi_tag()}.so")
        module = None
        if os.path.exists(so_path):
            try:
                ffi = FFI()
                ffi.cdef(lowering.cdef)
                lib = ffi.dlopen(so_path)
                if lib.tt_abi() != ABI_VERSION:
                    raise BuildError("stale ABI")
                os.utime(so_path)  # LRU touch
                module = NativeModule(lowering, ffi, lib, so_path, True)
            except Exception:
                # Corrupt or stale-ABI artifact: recompile cold.
                try:
                    os.unlink(so_path)
                except OSError:
                    pass
                module = None
        if module is None:
            _compile_so(cc, lowering.c_source, so_path)
            ffi = FFI()
            ffi.cdef(lowering.cdef)
            lib = ffi.dlopen(so_path)
            if lib.tt_abi() != ABI_VERSION:
                raise BuildError(
                    "freshly built artifact reports a mismatched ABI"
                )
            module = NativeModule(lowering, ffi, lib, so_path, False)
        _modules[key] = module
        return module


def _reset_for_tests() -> None:
    """Forget the toolchain probe and loaded modules (test isolation)."""
    global _probed
    with _probe_lock:
        _probed = None
    with _modules_lock:
        _modules.clear()


# ----------------------------------------------------------------------
# Error mapping (C error codes -> Tetra exceptions)
# ----------------------------------------------------------------------
def _map_error(code: int, a: int, b: int, span: Span):
    if code == 1:
        return TetraZeroDivisionError("integer division by zero", span)
    if code == 2:
        return TetraZeroDivisionError("integer modulo by zero", span)
    if code == 3:
        return TetraZeroDivisionError("division by zero", span)
    if code == 4:
        return TetraZeroDivisionError("modulo by zero", span)
    if code == 5:
        return TetraIndexError(
            f"index {a} is out of range for an array of length {b} "
            f"(valid indexes are 0 through {b - 1})",
            span,
        )
    if code == 6:
        return TetraRuntimeError(
            "sqrt() is not defined for negative numbers", span
        )
    if code == 7:
        return TetraRuntimeError(
            "result does not fit in a 64-bit integer "
            "(native-tier integer range)",
            span,
        )
    return TetraRuntimeError(
        f"native kernel failed (internal error code {code})", span
    )


# ----------------------------------------------------------------------
# Guard watcher: interrupts hot C loops from the Python side
# ----------------------------------------------------------------------
class _Watcher:
    """Polls the run's ExecutionGuard while a C kernel is executing.

    C kernels release the GIL, so time limits and cancellation cannot
    fire at Tetra statement boundaries the way they do in the
    interpreter.  Instead, each in-flight kernel registers its ``tt_ctx``
    here; a lazy daemon thread polls the guard every ~20ms and, when it
    raises, stores the exception and sets ``ctx.stop`` — which every C
    loop back-edge checks — so the kernel unwinds within ~1024
    iterations and the stored exception is re-raised in the caller.
    """

    _POLL_SECONDS = 0.02
    _LINGER_SECONDS = 0.25

    def __init__(self, interp):
        self.interp = interp
        self._cond = threading.Condition()
        self._entries: dict[int, list] = {}  # token -> [cctx, ctx, span, exc]
        self._next_token = 0
        self._thread = None

    def watch(self, cctx, ctx, span) -> int:
        with self._cond:
            token = self._next_token
            self._next_token += 1
            self._entries[token] = [cctx, ctx, span, None]
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name="tetra-native-watcher", daemon=True
                )
                self._thread.start()
            self._cond.notify_all()
            return token

    def unwatch(self, token: int):
        """Deregister; returns the guard exception caught mid-kernel, if any."""
        with self._cond:
            entry = self._entries.pop(token, None)
            return entry[3] if entry is not None else None

    def _loop(self) -> None:
        guard = self.interp._guard
        idle_rounds = int(self._LINGER_SECONDS / self._POLL_SECONDS)
        idle = 0
        while True:
            with self._cond:
                if not self._entries:
                    idle += 1
                    if idle > idle_rounds:
                        self._thread = None
                        return
                    self._cond.wait(self._POLL_SECONDS)
                    continue
                idle = 0
                entries = list(self._entries.values())
            for entry in entries:
                cctx, ctx, span, exc = entry
                if exc is not None:
                    continue
                try:
                    guard.check(ctx, span)
                except Exception as caught:
                    with self._cond:
                        entry[3] = caught
                        cctx.stop = 1
            with self._cond:
                self._cond.wait(self._POLL_SECONDS)


# ----------------------------------------------------------------------
# C emission
# ----------------------------------------------------------------------
class _ScalarRef:
    __slots__ = ("code", "ty", "writable")

    def __init__(self, code, ty, writable):
        self.code = code
        self.ty = ty
        self.writable = writable


class _ArrayRef:
    __slots__ = ("buf", "length", "elem")

    def __init__(self, buf, length, elem):
        self.buf = buf
        self.length = length
        self.elem = elem


_ARITH_SYMBOLS = {BinaryOp.ADD: "+", BinaryOp.SUB: "-", BinaryOp.MUL: "*"}
_CMP_SYMBOLS = {
    BinaryOp.EQ: "==", BinaryOp.NE: "!=", BinaryOp.LT: "<",
    BinaryOp.LE: "<=", BinaryOp.GT: ">", BinaryOp.GE: ">=",
}


class _Emitter:
    """Emits one C function body (a lowered function or a loop kernel)."""

    def __init__(self, callables: dict, resolve, line_spans: dict,
                 in_parallel_body: bool = False):
        self.callables = callables
        self.resolve = resolve
        self.line_spans = line_spans
        self.in_parallel_body = in_parallel_body
        self.lines: list[str] = []
        self.depth = 1
        self.loop_depth = 0
        self._tmp = 0

    # -- plumbing ------------------------------------------------------
    def out(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def _line(self, node) -> int:
        line = node.span.line
        self.line_spans.setdefault(line, node.span)
        return line

    def _temp(self, prefix: str) -> str:
        self._tmp += 1
        return f"_{prefix}{self._tmp}"

    def _scalar(self, name: str, node) -> _ScalarRef:
        ref = self.resolve(name)
        if isinstance(ref, _ArrayRef):
            raise _Ineligible(
                f"array '{name}' used as a value (only indexing, len(), "
                "and whole-array arguments are lowered)"
            )
        return ref

    def _array(self, e) -> _ArrayRef:
        if not isinstance(e, Name):
            raise _Ineligible(
                "array expressions other than plain variables are not lowered"
            )
        ref = self.resolve(e.id)
        if not isinstance(ref, _ArrayRef):
            raise _Ineligible(f"'{e.id}' is not an array variable")
        return ref

    # -- expressions ---------------------------------------------------
    def expr(self, e) -> tuple[str, object]:
        if isinstance(e, IntLiteral):
            if not _INT64_MIN < e.value <= _INT64_MAX:
                raise _Ineligible("integer literal does not fit in 64 bits")
            return f"INT64_C({e.value})", INT
        if isinstance(e, RealLiteral):
            text = repr(float(e.value))
            if not any(c in text for c in ".e"):
                text += ".0"
            return text, REAL
        if isinstance(e, BoolLiteral):
            return ("INT64_C(1)" if e.value else "INT64_C(0)"), BOOL
        if isinstance(e, Name):
            ref = self._scalar(e.id, e)
            return ref.code, ref.ty
        if isinstance(e, Unary):
            return self._unary(e)
        if isinstance(e, BinOp):
            lc, lt = self.expr(e.left)
            rc, rt = self.expr(e.right)
            return self._binop(e.op, lc, lt, rc, rt, self._line(e))
        if isinstance(e, Index):
            arr = self._array(e.base)
            idx, idx_ty = self.expr(e.index)
            if not isinstance(idx_ty, IntType):
                raise _Ineligible("array index is not an int")
            line = self._line(e)
            code = (f"{arr.buf}[tt_idx(ctx, {arr.length}, {idx}, {line})]")
            return code, arr.elem
        if isinstance(e, Call):
            return self._call(e)
        raise _Ineligible(f"{type(e).__name__} expressions are not lowered")

    def _unary(self, e) -> tuple[str, object]:
        code, ty = self.expr(e.operand)
        if e.op is UnaryOp.NOT:
            return f"(int64_t)(!({code}))", BOOL
        if not ty.is_numeric:
            raise _Ineligible("unary +/- on a non-numeric value")
        if e.op is UnaryOp.POS:
            return code, ty
        if isinstance(ty, RealType):
            return f"(-({code}))", REAL
        return f"tt_ineg({code})", INT

    def _binop(self, op, lc, lt, rc, rt, line) -> tuple[str, object]:
        if op in _CMP_SYMBOLS:
            if isinstance(lt, ArrayType) or isinstance(rt, ArrayType):
                raise _Ineligible("array comparison is not lowered")
            return f"(int64_t)(({lc}) {_CMP_SYMBOLS[op]} ({rc}))", BOOL
        if op is BinaryOp.AND:
            return f"(int64_t)(({lc}) && ({rc}))", BOOL
        if op is BinaryOp.OR:
            return f"(int64_t)(({lc}) || ({rc}))", BOOL
        if op is BinaryOp.POW:
            raise _Ineligible("'^' (power) is not lowered")
        if not (lt.is_numeric and rt.is_numeric):
            raise _Ineligible("arithmetic on non-numeric values is not lowered")
        real = isinstance(lt, RealType) or isinstance(rt, RealType)
        out_ty = REAL if real else INT
        if op is BinaryOp.DIV:
            if real:
                return (f"tt_rdiv(ctx, (double)({lc}), (double)({rc}), "
                        f"{line})"), REAL
            return f"tt_idiv(ctx, {lc}, {rc}, {line})", INT
        if op is BinaryOp.MOD:
            if real:
                return (f"tt_rmod(ctx, (double)({lc}), (double)({rc}), "
                        f"{line})"), REAL
            return f"tt_imod(ctx, {lc}, {rc}, {line})", INT
        sym = _ARITH_SYMBOLS[op]
        return f"(({lc}) {sym} ({rc}))", out_ty

    def _call(self, e) -> tuple[str, object]:
        meta = self.callables.get(e.func)
        if meta is not None:
            args = []
            for arg, want in zip(e.args, meta.param_types):
                if isinstance(want, ArrayType):
                    arr = self._array(arg)
                    args.append(arr.buf)
                    args.append(arr.length)
                else:
                    code, ty = self.expr(arg)
                    if isinstance(want, RealType):
                        code = f"(double)({code})"
                    args.append(code)
            call = f"{meta.cname}(ctx" + "".join(f", {a}" for a in args) + ")"
            return call, meta.return_type
        return self._builtin(e)

    def _builtin(self, e) -> tuple[str, object]:
        name = e.func
        line = self._line(e)
        if name == "len":
            if len(e.args) != 1:
                raise _Ineligible("len() with unexpected arity")
            arr = self._array(e.args[0])
            return arr.length, INT
        if name == "sqrt":
            code, _ = self.expr(e.args[0])
            return f"tt_sqrt(ctx, (double)({code}), {line})", REAL
        if name in ("floor", "ceil", "round"):
            code, _ = self.expr(e.args[0])
            return f"tt_{name}(ctx, (double)({code}), {line})", INT
        if name == "abs":
            code, ty = self.expr(e.args[0])
            if not ty.is_numeric:
                raise _Ineligible("abs() on a non-numeric value")
            if isinstance(ty, RealType):
                return f"fabs({code})", REAL
            return f"tt_iabs({code})", INT
        if name in ("min", "max"):
            (ac, at), (bc, bt) = self.expr(e.args[0]), self.expr(e.args[1])
            if not (at.is_numeric and bt.is_numeric):
                raise _Ineligible(f"{name}() on non-numeric values")
            if isinstance(at, RealType) or isinstance(bt, RealType):
                fn = "fmin" if name == "min" else "fmax"
                return f"{fn}((double)({ac}), (double)({bc}))", REAL
            return f"tt_i{name}({ac}, {bc})", INT
        raise _Ineligible(f"calls '{name}', which is not lowered")

    # -- statements ----------------------------------------------------
    def block(self, body: Block) -> None:
        for s in body.statements:
            self.stmt(s)

    def stmt(self, s) -> None:
        if isinstance(s, Assign):
            self._assign(s.target, *self.expr(s.value), s)
        elif isinstance(s, AugAssign):
            self._aug_assign(s)
        elif isinstance(s, Declare):
            self._declare(s)
        elif isinstance(s, If):
            self._if(s)
        elif isinstance(s, While):
            cond, _ = self.expr(s.cond)
            self.out(f"while ({cond}) {{")
            self._loop_body(s.body)
            self.out("}")
        elif isinstance(s, For):
            self._for(s)
        elif isinstance(s, Return):
            self._return(s)
        elif isinstance(s, Break):
            if self.loop_depth == 0:
                raise _Ineligible("break outside a lowered loop")
            self.out("break;")
        elif isinstance(s, Continue):
            if self.loop_depth == 0:
                raise _Ineligible("continue outside a lowered loop")
            self.out("continue;")
        elif isinstance(s, Pass):
            self.out(";")
        elif isinstance(s, ExprStmt):
            code, _ = self.expr(s.expr)
            self.out(f"(void)({code});")
        elif isinstance(s, LockStmt):
            if not self.in_parallel_body:
                raise _Ineligible("lock statements are not lowered here")
            # parplan guarantees ok-plan lock bodies are reduction idioms
            # over worker-local accumulators, so the lock itself vanishes.
            self.block(s.body)
        else:
            raise _Ineligible(
                f"{type(s).__name__} statements are not lowered"
            )

    def _assign(self, target, code, val_ty, s) -> None:
        if isinstance(target, Name):
            ref = self._scalar(target.id, s)
            if not ref.writable:
                raise _Ineligible(
                    f"assigns shared variable '{target.id}' "
                    "inside a parallel body"
                )
            self.out(f"{ref.code} = {self._coerce(code, val_ty, ref.ty)};")
            return
        if isinstance(target, Index):
            arr = self._array(target.base)
            idx, _ = self.expr(target.index)
            line = self._line(s)
            store = self._coerce(code, val_ty, arr.elem)
            self.out(
                f"{arr.buf}[tt_idx(ctx, {arr.length}, {idx}, {line})]"
                f" = {store};"
            )
            return
        raise _Ineligible("assignment target is not lowered")

    def _aug_assign(self, s) -> None:
        vc, vt = self.expr(s.value)
        line = self._line(s)
        if isinstance(s.target, Name):
            ref = self._scalar(s.target.id, s)
            if not ref.writable:
                raise _Ineligible(
                    f"assigns shared variable '{s.target.id}' "
                    "inside a parallel body"
                )
            code, ty = self._binop(s.op, ref.code, ref.ty, vc, vt, line)
            self.out(f"{ref.code} = {self._coerce(code, ty, ref.ty)};")
            return
        if isinstance(s.target, Index):
            arr = self._array(s.target.base)
            idx, _ = self.expr(s.target.index)
            tmp = self._temp("ix")
            self.out("{")
            self.depth += 1
            self.out(
                f"int64_t {tmp} = tt_idx(ctx, {arr.length}, {idx}, {line});"
            )
            code, ty = self._binop(
                s.op, f"{arr.buf}[{tmp}]", arr.elem, vc, vt, line
            )
            self.out(
                f"{arr.buf}[{tmp}] = {self._coerce(code, ty, arr.elem)};"
            )
            self.depth -= 1
            self.out("}")
            return
        raise _Ineligible("augmented assignment target is not lowered")

    def _declare(self, s) -> None:
        ref = self._scalar(s.name, s)
        if not ref.writable:
            raise _Ineligible(f"declares shared variable '{s.name}'")
        if s.value is not None:
            code, ty = self.expr(s.value)
            self.out(f"{ref.code} = {self._coerce(code, ty, ref.ty)};")

    def _if(self, s) -> None:
        cond, _ = self.expr(s.cond)
        self.out(f"if ({cond}) {{")
        self.depth += 1
        self.block(s.then)
        self.depth -= 1
        for clause in s.elifs:
            cond, _ = self.expr(clause.cond)
            self.out(f"}} else if ({cond}) {{")
            self.depth += 1
            self.block(clause.body)
            self.depth -= 1
        if s.orelse is not None and s.orelse.statements:
            self.out("} else {")
            self.depth += 1
            self.block(s.orelse)
            self.depth -= 1
        self.out("}")

    def _for(self, s) -> None:
        if not isinstance(s.iterable, RangeLiteral):
            raise _Ineligible(
                "only 'for ... in [a ... b]' ranges are lowered"
            )
        ref = self._scalar(s.var, s)
        if not (ref.writable and isinstance(ref.ty, IntType)):
            raise _Ineligible(f"loop variable '{s.var}' is not a local int")
        lo_code, lo_ty = self.expr(s.iterable.start)
        hi_code, hi_ty = self.expr(s.iterable.stop)
        if not (isinstance(lo_ty, IntType) and isinstance(hi_ty, IntType)):
            raise _Ineligible("range bounds are not ints")
        lo, hi = self._temp("lo"), self._temp("hi")
        it = self._temp("it")
        self.out("{")
        self.depth += 1
        self.out(f"int64_t {lo} = {lo_code};")
        self.out(f"int64_t {hi} = {hi_code};")
        # The walker iterates over the *materialized* range, assigning
        # the loop variable each pass — so a body that writes it (or a
        # same-named nested loop) must not perturb this loop's own
        # progress.  A hidden counter drives the loop; the visible
        # variable is a per-iteration copy, and after the loop it keeps
        # the last item, exactly like the walker.
        self.out(f"for (int64_t {it} = {lo}; {it} <= {hi}; {it}++) {{")
        self.depth += 1
        self.out(f"{ref.code} = {it};")
        self.depth -= 1
        self._loop_body(s.body)
        self.out("}")
        self.depth -= 1
        self.out("}")

    def _loop_body(self, body: Block) -> None:
        self.depth += 1
        self.out("TT_CHECK")
        self.loop_depth += 1
        self.block(body)
        self.loop_depth -= 1
        self.depth -= 1

    def _return(self, s) -> None:
        if s.value is None:
            self.out("return;" if self.ret_ty is VOID else "return 0;")
            return
        if self.ret_ty is VOID:
            code, _ = self.expr(s.value)
            self.out(f"(void)({code});")
            self.out("return;")
            return
        code, ty = self.expr(s.value)
        self.out(f"return {self._coerce(code, ty, self.ret_ty)};")

    ret_ty = VOID  # overridden per function

    def _coerce(self, code: str, have, want) -> str:
        if isinstance(want, RealType) and not isinstance(have, RealType):
            return f"(double)({code})"
        if not isinstance(want, RealType) and isinstance(have, RealType):
            raise _Ineligible("implicit real-to-int narrowing is not lowered")
        return code


def _always_returns(block: Block) -> bool:
    """Conservative 'every path ends in return' check: a non-void native
    function may not fall off its end (the walker would return nothing)."""
    for s in reversed(block.statements):
        if isinstance(s, Pass):
            continue
        if isinstance(s, Return):
            return True
        if isinstance(s, If):
            if s.orelse is None:
                return False
            branches = [s.then] + [c.body for c in s.elifs] + [s.orelse]
            return all(_always_returns(b) for b in branches)
        return False
    return False


# ----------------------------------------------------------------------
# C runtime prelude (error protocol + checked helpers)
# ----------------------------------------------------------------------
_C_PRELUDE = """\
#include <stdint.h>
#include <math.h>
#include <stdlib.h>
#include <pthread.h>

typedef struct {
    volatile int64_t stop;
    volatile int64_t err;
    volatile int64_t err_line;
    volatile int64_t err_a;
    volatile int64_t err_b;
} tt_ctx;

int64_t tt_abi(void) { return @ABI@; }

/* First error wins; later failures in other workers are dropped. */
static void tt_fail(tt_ctx *c, int64_t code, int64_t line,
                    int64_t a, int64_t b) {
    if (!c->err) {
        c->err_line = line;
        c->err_a = a;
        c->err_b = b;
        c->err = code;
    }
}

/* Polled at every loop back-edge: stops hot loops on error or interrupt. */
#define TT_CHECK if (((++_tick) & 1023) == 0 && (ctx->stop | ctx->err)) break;

static int64_t tt_ineg(int64_t a) { return (int64_t)(0 - (uint64_t)a); }

static int64_t tt_idiv(tt_ctx *c, int64_t a, int64_t b, int64_t line) {
    if (b == 0) { tt_fail(c, 1, line, 0, 0); return 0; }
    if (b == -1) return tt_ineg(a);  /* INT64_MIN / -1 would trap */
    return a / b;  /* C99: truncation toward zero, same as Tetra int_div */
}

static int64_t tt_imod(tt_ctx *c, int64_t a, int64_t b, int64_t line) {
    if (b == 0) { tt_fail(c, 2, line, 0, 0); return 0; }
    if (b == -1) return 0;
    return a % b;  /* C99: sign of dividend, same as Tetra int_mod */
}

static double tt_rdiv(tt_ctx *c, double a, double b, int64_t line) {
    if (b == 0.0) { tt_fail(c, 3, line, 0, 0); return 0.0; }
    return a / b;
}

static double tt_rmod(tt_ctx *c, double a, double b, int64_t line) {
    if (b == 0.0) { tt_fail(c, 4, line, 0, 0); return 0.0; }
    return fmod(a, b);
}

/* Buffers are always allocated with at least one element, so the
 * error-path index 0 reads allocated memory while the error latches. */
static int64_t tt_idx(tt_ctx *c, int64_t n, int64_t i, int64_t line) {
    if (i < 0 || i >= n) { tt_fail(c, 5, line, i, n); return 0; }
    return i;
}

static double tt_sqrt(tt_ctx *c, double x, int64_t line) {
    if (x < 0.0) { tt_fail(c, 6, line, 0, 0); return 0.0; }
    return sqrt(x);
}

static int64_t tt_f2i(tt_ctx *c, double f, int64_t line) {
    if (!(f >= -9223372036854775808.0 && f < 9223372036854775808.0)) {
        tt_fail(c, 7, line, 0, 0);
        return 0;
    }
    return (int64_t)f;
}

static int64_t tt_floor(tt_ctx *c, double x, int64_t line) {
    return tt_f2i(c, floor(x), line);
}

static int64_t tt_ceil(tt_ctx *c, double x, int64_t line) {
    return tt_f2i(c, ceil(x), line);
}

/* Tetra round(): nearest int, ties away from zero (mathlib round). */
static int64_t tt_round(tt_ctx *c, double x, int64_t line) {
    return tt_f2i(c, x >= 0.0 ? floor(x + 0.5) : ceil(x - 0.5), line);
}

static int64_t tt_iabs(int64_t a) { return a < 0 ? tt_ineg(a) : a; }
static int64_t tt_imin(int64_t a, int64_t b) { return a < b ? a : b; }
static int64_t tt_imax(int64_t a, int64_t b) { return a > b ? a : b; }
"""


def _c_prelude() -> str:
    return _C_PRELUDE.replace("@ABI@", str(ABI_VERSION))


# ----------------------------------------------------------------------
# Lowering: functions
# ----------------------------------------------------------------------
def _check_signature(sig) -> None:
    for pname, pty in zip(sig.param_names, sig.param_types):
        if not (_is_scalar(pty) or _is_scalar_array(pty)):
            raise _Ineligible(
                f"parameter '{pname}' has type {pty}, which is not lowered"
            )
    ret = sig.return_type
    if not (ret is VOID or _is_scalar(ret)):
        raise _Ineligible(
            f"return type {ret} is not lowered"
        )


def _check_locals(scope) -> None:
    for name in scope.names():
        info = scope.lookup(name)
        ty = info.type
        if _is_scalar(ty):
            continue
        if _is_scalar_array(ty):
            if info.is_parameter:
                continue
            raise _Ineligible(
                f"local array '{name}' would need allocation inside C"
            )
        raise _Ineligible(
            f"variable '{name}' has type {ty}, which is not lowered"
        )


def _fn_signature_text(meta) -> str:
    params = ["tt_ctx *ctx"]
    for pname, pty in zip(meta.param_names, meta.param_types):
        if isinstance(pty, ArrayType):
            params.append(f"{_ctype(pty.element)} *v_{pname}")
            params.append(f"int64_t v_{pname}_n")
        else:
            params.append(f"{_ctype(pty)} v_{pname}")
    ret = ("void" if meta.return_type is VOID
           else _ctype(meta.return_type))
    return f"{ret} {meta.cname}({', '.join(params)})"


def _emit_function(fn, sig, scope, callables: dict,
                   line_spans: dict) -> str:
    """Emit the C definition of one eligible function (or raise
    _Ineligible with the reason it cannot be lowered)."""
    ret = sig.return_type
    if ret is not VOID and not _always_returns(fn.body):
        raise _Ineligible(
            "a path may fall off the end without returning a value"
        )

    def resolve(name):
        info = scope.lookup(name)
        if info is None:
            raise _Ineligible(f"unknown variable '{name}'")
        ty = info.type
        if isinstance(ty, ArrayType):
            return _ArrayRef(f"v_{name}", f"v_{name}_n", ty.element)
        return _ScalarRef(f"v_{name}", ty, True)

    em = _Emitter(callables, resolve, line_spans)
    em.ret_ty = ret
    em.block(fn.body)

    meta = callables[fn.name]
    lines = [_fn_signature_text(meta) + " {"]
    lines.append("    int64_t _tick = 0; (void)_tick;")
    params = set(sig.param_names)
    for name in scope.names():
        if name in params:
            continue
        ty = scope.lookup(name).type
        lines.append(f"    {_ctype(ty)} v_{name} = 0;")
    lines.extend(em.lines)
    if ret is VOID:
        lines.append("    return;")
    else:
        lines.append(f"    return ({_ctype(ret)})0;")
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Lowering: parallel-for kernels
# ----------------------------------------------------------------------
def _loop_signature_text(meta) -> str:
    item_c = _ctype(meta.var_ty)
    params = [
        "tt_ctx *ctx", "int64_t nworkers", "int64_t *starts",
        "int64_t *counts", f"{item_c} *items",
    ]
    for name, ty in meta.env:
        if isinstance(ty, ArrayType):
            params.append(f"{_ctype(ty.element)} *v_{name}")
            params.append(f"int64_t v_{name}_n")
        else:
            params.append(f"{_ctype(ty)} v_{name}")
    for name, _op, ty in meta.reductions:
        params.append(f"{_ctype(ty)} init_{name}")
        params.append(f"{_ctype(ty)} *out_{name}")
    return f"int64_t {meta.cname}({', '.join(params)})"


def _emit_loop(stmt, meta, program, callables: dict,
               line_spans: dict) -> str:
    rednames = {name for name, _op, _ty in meta.reductions}
    redtypes = {name: ty for name, _op, ty in meta.reductions}
    env_map = dict(meta.env)
    var = meta.var

    def resolve(name):
        if name == var:
            return _ScalarRef(f"v_{var}", meta.var_ty, True)
        if name in rednames:
            return _ScalarRef(f"r_{name}", redtypes[name], True)
        ty = env_map.get(name)
        if ty is None:
            raise _Ineligible(
                f"variable '{name}' is not available inside the kernel"
            )
        if isinstance(ty, ArrayType):
            return _ArrayRef(f"v_{name}", f"v_{name}_n", ty.element)
        return _ScalarRef(f"v_{name}", ty, False)

    em = _Emitter(callables, resolve, line_spans, in_parallel_body=True)
    em.ret_ty = VOID
    em.depth = 2
    em.block(stmt.body)

    item_c = _ctype(meta.var_ty)
    cname = meta.cname
    struct_fields = [
        "    tt_ctx *ctx;",
        "    int64_t start;",
        "    int64_t count;",
        f"    {item_c} *items;",
    ]
    for name, ty in meta.env:
        if isinstance(ty, ArrayType):
            struct_fields.append(f"    {_ctype(ty.element)} *v_{name};")
            struct_fields.append(f"    int64_t v_{name}_n;")
        else:
            struct_fields.append(f"    {_ctype(ty)} v_{name};")
    for name, _op, ty in meta.reductions:
        struct_fields.append(f"    {_ctype(ty)} r_{name};")

    lines = [f"typedef struct {{"]
    lines.extend(struct_fields)
    lines.append(f"}} {cname}_env;")
    lines.append("")
    # Per-worker body: locals copied out of the env struct for speed,
    # reduction accumulators written back at the end of the chunk.
    lines.append(f"static void *{cname}_run(void *arg) {{")
    lines.append(f"    {cname}_env *e = ({cname}_env *)arg;")
    lines.append("    tt_ctx *ctx = e->ctx;")
    lines.append("    int64_t _tick = 0; (void)_tick;")
    lines.append(f"    {item_c} v_{var} = 0;")
    for name, ty in meta.env:
        if isinstance(ty, ArrayType):
            lines.append(
                f"    {_ctype(ty.element)} *v_{name} = e->v_{name};"
            )
            lines.append(f"    int64_t v_{name}_n = e->v_{name}_n;")
        else:
            lines.append(f"    {_ctype(ty)} v_{name} = e->v_{name};")
    for name, _op, ty in meta.reductions:
        lines.append(f"    {_ctype(ty)} r_{name} = e->r_{name};")
    lines.append("    for (int64_t _it = 0; _it < e->count; _it++) {")
    lines.append("        TT_CHECK")
    lines.append(f"        v_{var} = e->items[e->start + _it];")
    lines.extend(em.lines)
    lines.append("    }")
    for name, _op, _ty in meta.reductions:
        lines.append(f"    e->r_{name} = r_{name};")
    lines.append("    return 0;")
    lines.append("}")
    lines.append("")
    # Entry point: worker 0 runs inline on the calling thread; a failed
    # pthread_create degrades that worker to inline execution too.
    lines.append(_loop_signature_text(meta) + " {")
    lines.append(f"    {cname}_env *envs = ({cname}_env *)"
                 f"malloc(sizeof({cname}_env) * (size_t)nworkers);")
    lines.append("    pthread_t *tids = (pthread_t *)"
                 "malloc(sizeof(pthread_t) * (size_t)nworkers);")
    lines.append("    int64_t *live = (int64_t *)"
                 "malloc(sizeof(int64_t) * (size_t)nworkers);")
    lines.append("    int64_t w;")
    lines.append("    if (!envs || !tids || !live) {")
    lines.append("        free(envs); free(tids); free(live);")
    lines.append(f"        tt_fail(ctx, 8, {meta.line}, 0, 0);")
    lines.append("        return 0;")
    lines.append("    }")
    lines.append("    for (w = 0; w < nworkers; w++) {")
    lines.append("        envs[w].ctx = ctx;")
    lines.append("        envs[w].start = starts[w];")
    lines.append("        envs[w].count = counts[w];")
    lines.append("        envs[w].items = items;")
    for name, ty in meta.env:
        if isinstance(ty, ArrayType):
            lines.append(f"        envs[w].v_{name} = v_{name};")
            lines.append(f"        envs[w].v_{name}_n = v_{name}_n;")
        else:
            lines.append(f"        envs[w].v_{name} = v_{name};")
    for name, _op, _ty in meta.reductions:
        lines.append(f"        envs[w].r_{name} = init_{name};")
    lines.append("        live[w] = 0;")
    lines.append("    }")
    lines.append("    for (w = 1; w < nworkers; w++) {")
    lines.append(f"        if (pthread_create(&tids[w], 0, {cname}_run, "
                 "&envs[w]) == 0) live[w] = 1;")
    lines.append(f"        else {cname}_run(&envs[w]);")
    lines.append("    }")
    lines.append(f"    {cname}_run(&envs[0]);")
    lines.append("    for (w = 1; w < nworkers; w++) "
                 "if (live[w]) pthread_join(tids[w], 0);")
    for name, _op, _ty in meta.reductions:
        lines.append(f"    for (w = 0; w < nworkers; w++) "
                     f"out_{name}[w] = envs[w].r_{name};")
    lines.append("    free(envs); free(tids); free(live);")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Lowering: whole program
# ----------------------------------------------------------------------
def _call_targets(fn, user_functions: set) -> set:
    return {
        node.func for node in walk(fn.body)
        if isinstance(node, Call) and node.func in user_functions
    }


def _in_cycle(start: str, edges: dict) -> bool:
    """Does ``start`` reach itself through the call graph?"""
    stack = list(edges.get(start, ()))
    seen = set()
    while stack:
        node = stack.pop()
        if node == start:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(edges.get(node, ()))
    return False


def _plan_loop(fn, scope, stmt, program):
    """Build the _CLoop meta for one parallel for (or raise _Ineligible)."""
    plan = plan_parallel_for(stmt, program)
    if not plan.ok:
        raise _Ineligible(plan.reason)
    var = stmt.var
    info = scope.lookup(var)
    if info is None or not isinstance(info.type, (IntType, RealType)):
        raise _Ineligible(
            f"induction variable '{var}' is not an int or real"
        )
    extra = [w for w in plan.scalar_writes if w != var]
    if extra:
        raise _Ineligible(
            f"writes scalar '{extra[0]}' outside a lock "
            "(only the induction variable may be reassigned natively)"
        )
    reductions = []
    for name in sorted(plan.reductions):
        rinfo = scope.lookup(name)
        if rinfo is None or not rinfo.type.is_numeric:
            raise _Ineligible(f"reduction '{name}' is not numeric")
        reductions.append((name, plan.reductions[name], rinfo.type))
    rednames = set(plan.reductions)
    env = []
    for name in sorted(plan.names):
        if name in rednames or name == var:
            continue
        ninfo = scope.lookup(name)
        if ninfo is None:
            raise _Ineligible(f"'{name}' has no static type")
        ty = ninfo.type
        if not (_is_scalar(ty) or _is_scalar_array(ty)):
            raise _Ineligible(
                f"'{name}' has type {ty}, which is not lowered"
            )
        env.append((name, ty))
    return _CLoop(
        cname="",  # assigned by lower_program
        var=var,
        var_ty=info.type,
        env=tuple(env),
        reductions=tuple(reductions),
        line=stmt.span.line,
    )


def lower_program(program, symbols) -> Lowering:
    """Lower every eligible function and parallel-for kernel to C.

    Pure and toolchain-free: callable on a box with no compiler (the
    tests use it to assert eligibility decisions without building).
    """
    fallbacks: list[tuple[int, str]] = []
    seen_reasons: set[tuple[int, str]] = set()

    def note(line: int, reason: str) -> None:
        key = (line, reason)
        if key not in seen_reasons:
            seen_reasons.add(key)
            fallbacks.append(key)

    # Stage 1: signature / local-variable screening.
    candidates: dict[str, object] = {}
    for fn in program.functions:
        sig = symbols.functions[fn.name]
        try:
            _check_signature(sig)
            _check_locals(symbols.scope_of(fn.name))
        except _Ineligible as exc:
            note(fn.span.line, f"'{fn.name}': {exc.reason}")
            continue
        candidates[fn.name] = fn

    # Stage 2: recursion (direct or mutual) stays on the fast path — the
    # C tier has no recursion-depth guard.
    edges = {
        name: _call_targets(fn, set(candidates))
        for name, fn in candidates.items()
    }
    for name in list(candidates):
        if _in_cycle(name, edges):
            note(candidates[name].span.line,
                 f"'{name}': recursion is not lowered")
            del candidates[name]

    # Stage 3: emission fixpoint.  A candidate whose body fails to lower
    # (or that calls a non-candidate) drops out; dropping it can strand
    # its callers, so retry until the set is stable, then keep the last
    # full emission.
    fn_texts: list[str] = []
    metas: dict[str, _CFn] = {}
    line_spans: dict[int, Span] = {}
    while True:
        metas = {
            name: _CFn(
                name=name,
                cname=f"tt_fn_{name}",
                param_names=symbols.functions[name].param_names,
                param_types=symbols.functions[name].param_types,
                return_type=symbols.functions[name].return_type,
                line=fn.span.line,
            )
            for name, fn in candidates.items()
        }
        fn_texts = []
        line_spans = {}
        failed = False
        for name, fn in list(candidates.items()):
            try:
                fn_texts.append(_emit_function(
                    fn, symbols.functions[name],
                    symbols.scope_of(name), metas, line_spans,
                ))
            except _Ineligible as exc:
                note(fn.span.line, f"'{name}': {exc.reason}")
                del candidates[name]
                failed = True
        if not failed:
            break

    # Stage 4: parallel-for kernels (top-level functions only).
    loops: list = []
    loop_texts: list[str] = []
    k = 0
    for fn in program.functions:
        scope = symbols.scope_of(fn.name)
        for node in walk(fn.body):
            if not isinstance(node, ParallelFor):
                continue
            try:
                meta = _plan_loop(fn, scope, node, program)
                meta.cname = f"tt_pf{k}"
                loop_texts.append(
                    _emit_loop(node, meta, program, metas, line_spans)
                )
            except _Ineligible as exc:
                note(node.span.line, exc.reason)
                continue
            loops.append((node, meta))
            k += 1

    protos = [_fn_signature_text(m) + ";" for m in metas.values()]
    protos.extend(_loop_signature_text(m) + ";" for _n, m in loops)
    parts = [_c_prelude()]
    if protos:
        parts.append("\n".join(protos))
    parts.extend(fn_texts)
    parts.extend(loop_texts)
    c_source = "\n\n".join(parts) + "\n"

    cdef_lines = [
        "typedef struct { int64_t stop; int64_t err; int64_t err_line; "
        "int64_t err_a; int64_t err_b; } tt_ctx;",
        "int64_t tt_abi(void);",
    ]
    cdef_lines.extend(protos)
    lowering = Lowering(
        c_source=c_source,
        cdef="\n".join(cdef_lines),
        functions=metas,
        loops=loops,
        fallbacks=fallbacks,
        line_spans=line_spans,
    )
    for _node, meta in loops:
        meta.module_key = lowering.key
    return lowering


# ----------------------------------------------------------------------
# Runtime: the per-run native tier
# ----------------------------------------------------------------------
class NativeRun:
    """One run's handle on the native tier.

    Holds the loaded module (None when the tier is disabled or nothing
    lowered), substitutes marshalling invokers for lowered functions,
    and offloads annotated ``parallel for`` loops to the C kernels.
    """

    def __init__(self, interp, state: NativeState,
                 module: NativeModule | None):
        self.interp = interp
        self.state = state
        self.module = module
        self._watcher: _Watcher | None = None

    # -- core C call with error/interrupt protocol ---------------------
    def _call(self, func, cargs, ctx, span):
        module = self.module
        cctx = module.ffi.new("tt_ctx *")
        guard = self.interp._guard
        token = None
        if guard is not None:
            if self._watcher is None:
                self._watcher = _Watcher(self.interp)
            token = self._watcher.watch(cctx, ctx, span)
        try:
            # cffi releases the GIL around the call: other Python threads
            # (including the guard watcher) keep running.
            ret = func(cctx, *cargs)
        finally:
            stored = (self._watcher.unwatch(token)
                      if token is not None else None)
        if stored is not None:
            raise stored
        if cctx.err:
            err_span = module.lowering.line_spans.get(cctx.err_line, span)
            exc = _map_error(cctx.err, cctx.err_a, cctx.err_b, err_span)
            if self.interp.source is not None:
                exc.attach_source(self.interp.source)
            raise exc
        if cctx.stop and guard is not None:
            guard.check(ctx, span)
        return ret

    @staticmethod
    def _as_i64(value) -> int:
        iv = int(value)
        if not (_INT64_MIN <= iv <= _INT64_MAX):
            raise OverflowError(value)
        return iv

    # -- function invokers ---------------------------------------------
    def function_invoker(self, name: str, fallback):
        """A marshalling invoker for a lowered function, or None."""
        if self.module is None:
            return None
        meta = self.module.lowering.functions.get(name)
        if meta is None:
            return None
        ffi = self.module.ffi
        func = getattr(self.module.lib, meta.cname)
        param_types = meta.param_types
        ret_ty = meta.return_type
        state = self.state
        interp = self.interp

        def invoke(args, ctx, span):
            cargs = []
            writebacks = []
            try:
                for value, want in zip(args, param_types):
                    if isinstance(want, ArrayType):
                        items = value.items
                        n = len(items)
                        ctyp = ("double[]"
                                if isinstance(want.element, RealType)
                                else "int64_t[]")
                        buf = ffi.new(ctyp, items if n else 1)
                        cargs.append(buf)
                        cargs.append(n)
                        writebacks.append((value, buf, n, want.element))
                    elif isinstance(want, RealType):
                        cargs.append(float(value))
                    else:
                        cargs.append(self._as_i64(value))
            except (OverflowError, AttributeError, TypeError):
                # Arguments the C ABI cannot represent (notably ints
                # beyond 64 bits): run the Python fast path instead.
                return fallback(args, ctx, span)
            state.calls += 1
            ret = self._call(func, cargs, ctx, span)
            for arr, buf, n, elem in writebacks:
                data = list(ffi.unpack(buf, n)) if n else []
                if isinstance(elem, BoolType):
                    data = [bool(x) for x in data]
                arr.items[:] = data
            if ret_ty is VOID:
                return None
            if isinstance(ret_ty, BoolType):
                return bool(ret)
            return ret

        obs = interp._obs
        if obs is not None and obs.trace:
            clock = obs.clock
            call_span = obs.call_span
            label = name + " [native]"

            def invoke_traced(args, ctx, span):
                t0 = clock()
                try:
                    return invoke(args, ctx, span)
                finally:
                    call_span(ctx.id, label, t0, clock())

            return invoke_traced
        return invoke

    # -- parallel-for offload ------------------------------------------
    def try_parallel_for(self, interp, stmt, items, ctx) -> bool:
        if self.module is None:
            return False
        meta = getattr(stmt, "_native_loop", None)
        if meta is None or meta.module_key != self.module.lowering.key:
            return False
        state = self.state
        env = ctx.env
        ffi = self.module.ffi
        line = stmt.span.line
        try:
            scalars = {}
            arrays = {}
            for name, ty in meta.env:
                if not env.has(name):
                    state.note_fallback(
                        line, f"'{name}' is not bound at loop entry")
                    return False
                value = env.get(name)
                if isinstance(ty, ArrayType):
                    if not isinstance(value, TetraArray):
                        state.note_fallback(
                            line, f"'{name}' is not an array at run time")
                        return False
                    arrays[name] = (value, ty.element)
                elif isinstance(ty, RealType):
                    scalars[name] = float(value)
                else:
                    scalars[name] = self._as_i64(value)
            red_init = []
            for name, _op, ty in meta.reductions:
                # The merged result must land in the frame every thread
                # sees; a worker-private binding of the same name (an
                # outer parallel for's induction variable) would swallow
                # the env.set below.
                if not env.has(name) or name in env.private:
                    state.note_fallback(
                        line,
                        f"reduction '{name}' does not resolve to a "
                        "shared variable",
                    )
                    return False
                value = env.get(name)
                red_init.append(float(value) if isinstance(ty, RealType)
                                else self._as_i64(value))
            # Partition exactly like the in-process backends, so worker
            # counts and the block/cyclic/dynamic policies stay bit-for-
            # bit comparable across tiers.
            workers = interp.backend.parallel_for_workers(len(items))
            chunks = [c for c in interp._partition(items, workers) if c]
            nworkers = len(chunks)
            flat = [x for chunk in chunks for x in chunk]
            if isinstance(meta.var_ty, RealType):
                items_buf = ffi.new("double[]", [float(x) for x in flat])
            else:
                items_buf = ffi.new(
                    "int64_t[]", [self._as_i64(x) for x in flat])
            starts, counts, pos = [], [], 0
            for chunk in chunks:
                starts.append(pos)
                counts.append(len(chunk))
                pos += len(chunk)
            cargs = [nworkers, ffi.new("int64_t[]", starts),
                     ffi.new("int64_t[]", counts), items_buf]
            bufs: dict[int, tuple] = {}
            writebacks = []
            for name, ty in meta.env:
                if name in scalars:
                    cargs.append(scalars[name])
                    continue
                arr, elem = arrays[name]
                entry = bufs.get(id(arr))
                if entry is None:
                    n = len(arr.items)
                    ctyp = ("double[]" if isinstance(elem, RealType)
                            else "int64_t[]")
                    entry = (ffi.new(ctyp, arr.items if n else 1), n)
                    bufs[id(arr)] = entry
                    writebacks.append((arr, entry[0], n, elem))
                cargs.append(entry[0])
                cargs.append(entry[1])
            red_outs = []
            for (name, _op, ty), init in zip(meta.reductions, red_init):
                ctyp = ("double[]" if isinstance(ty, RealType)
                        else "int64_t[]")
                out = ffi.new(ctyp, nworkers)
                cargs.append(init)
                cargs.append(out)
                red_outs.append(out)
        except (OverflowError, TypeError):
            state.note_fallback(
                line, "a value does not fit in a 64-bit integer")
            return False

        func = getattr(self.module.lib, meta.cname)
        obs = interp._obs
        t0 = obs.clock() if (obs is not None and obs.trace) else 0.0
        self._call(func, cargs, ctx, stmt.span)
        # Merge: same math as the proc backend.  sum: the initial value
        # plus each worker's delta; min/max: extreme of initial + finals.
        for (name, op, ty), init, out in zip(
                meta.reductions, red_init, red_outs):
            finals = list(ffi.unpack(out, nworkers))
            if op == "sum":
                merged = init + sum(v - init for v in finals)
            elif op == "min":
                merged = min([init] + finals)
            else:
                merged = max([init] + finals)
            env.set(name, merged)
        for arr, buf, n, elem in writebacks:
            data = list(ffi.unpack(buf, n)) if n else []
            if isinstance(elem, BoolType):
                data = [bool(x) for x in data]
            arr.items[:] = data
        state.parallel_calls += 1
        if obs is not None and obs.trace:
            obs.call_span(
                ctx.id, f"parallel for (line {line}) [native]",
                t0, obs.clock(),
            )
        return True


# ----------------------------------------------------------------------
# Run-level gating + setup
# ----------------------------------------------------------------------
def _run_block_reason(interp) -> str:
    """Why this run cannot use native kernels at all ('' if it can).

    Time limits and cancellation are deliberately *not* here — the
    watcher thread interrupts C kernels for them (see _Watcher).
    """
    cfg = interp.config
    backend_name = getattr(interp.backend, "name", "")
    if backend_name not in ("thread", "sequential", "proc"):
        return (f"the {backend_name} backend schedules cooperatively; "
                "C kernels cannot yield to it")
    if cfg.detect_races:
        return ("race detection instruments every shared access; "
                "C kernels are opaque to it")
    if cfg.profile:
        return "line profiling needs per-statement interpreter hooks"
    if cfg.step_limit:
        return "step limits count interpreter steps, which C kernels skip"
    if cfg.memory_limit:
        return "memory limits meter interpreter allocations"
    if cfg.output_limit:
        return "output limits meter interpreter-side printing"
    if cfg.schedule_recorder is not None:
        return "schedule recording needs interpreter-visible scheduling"
    if cfg.schedule_replay is not None:
        return "schedule replay needs interpreter-visible scheduling"
    if cfg.fault_plan is not None:
        return "chaos fault injection preempts at interpreter checkpoints"
    return ""


_setup_lock = threading.Lock()


def setup_native(interp):
    """Build (or fetch) the native tier for one interpreter, per its
    ``RuntimeConfig.native`` mode.  Returns a NativeRun or None."""
    cfg = interp.config
    mode = getattr(cfg, "native", "off")
    if mode == "off":
        return None
    state = NativeState(mode=mode)
    reason = _run_block_reason(interp)
    if not reason:
        try:
            import cffi  # noqa: F401
        except ImportError:
            reason = "cffi is not installed"
    cc = None
    if not reason:
        cc = find_compiler()
        if cc is None:
            reason = "no C compiler found (tried cc, gcc, clang)"
    if reason:
        if mode == "require":
            raise TetraNativeError(
                f"--native=require, but the native tier is unavailable: "
                f"{reason}"
            )
        state.notice = reason
        return NativeRun(interp, state, None)
    state.compiler = cc
    with _setup_lock:
        program = interp.program
        lowering = getattr(program, "_native_lowering", None)
        if lowering is None:
            lowering = lower_program(program, interp.symbols)
            program._native_lowering = lowering  # type: ignore[attr-defined]
        for line, why in lowering.fallbacks:
            state.note_fallback(line, why)
        if not lowering.functions and not lowering.loops:
            # The tier is up but nothing in this program qualifies —
            # not a failure, even under require (which guards *setup*).
            state.enabled = True
            return NativeRun(interp, state, None)
        try:
            module = load_module(lowering, cc)
        except (BuildError, OSError) as exc:
            if mode == "require":
                raise TetraNativeError(
                    f"--native=require, but the native build failed: {exc}"
                )
            state.notice = f"native build failed: {exc}"
            return NativeRun(interp, state, None)
        for node, meta in lowering.loops:
            node._native_loop = meta  # type: ignore[attr-defined]
        state.enabled = True
        state.cache_hit = module.cache_hit
        state.functions = sorted(lowering.functions)
        state.parallel_loops = len(lowering.loops)
        return NativeRun(interp, state, module)
