"""The parallel debugger — the paper's flagship IDE feature, implemented.

Paper §III: "Unlike most debuggers, the Tetra IDE will have multiple code
views in debug mode: one for each thread of the currently running program.
This will allow students to step through the different threads
independently.  This ability will help students discover race conditions
and deadlock scenarios by stepping through the code in different orders."

:class:`DebugSession` provides exactly that, headlessly: the program runs
under the cooperative backend with a manual policy, so every Tetra thread
pauses before each statement until the debugger grants it steps.  The
session exposes per-thread views (current line, call stack, variables),
line breakpoints, independent stepping, and expression evaluation in a
paused thread's scope.  The TUI (:mod:`repro.ide.tui`) and tests drive this
API; a graphical IDE would sit on it the same way the paper's Qt IDE sits
on its interpreter library.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from ..errors import TetraError, TetraThreadError
from ..parser import parse_expression
from ..source import SourceFile, Span
from ..interp import Interpreter, ThreadContext
from ..runtime import RuntimeConfig
from ..runtime.coop import (
    BLOCKED_JOIN,
    BLOCKED_LOCK,
    FINISHED,
    READY,
    CoopBackend,
    ManualPolicy,
)
from ..runtime.values import Value, display, type_of_value
from ..stdlib.io import CapturingIO
from ..api import cached_program
from ..types import VOID, FunctionSignature, LocalScope, VariableInfo
from ..types.check import TypeChecker


@dataclass
class FrameView:
    """One entry of a thread's Tetra-level backtrace."""

    function: str
    line: int


@dataclass
class ThreadView:
    """A read-only snapshot of one Tetra thread, shown as a 'code view'."""

    id: int
    label: str
    state: str
    line: int
    function: str
    backtrace: list[FrameView] = field(default_factory=list)
    variables: dict[str, str] = field(default_factory=dict)
    waiting_lock: str | None = None
    statements_run: int = 0

    @property
    def is_paused(self) -> bool:
        return self.state == READY

    @property
    def is_finished(self) -> bool:
        return self.state == FINISHED


class DebugSession:
    """One debugging run of one Tetra program.

    Lifecycle: construct → :meth:`start` → drive with :meth:`step` /
    :meth:`continue_all` / breakpoints → inspect :attr:`output`,
    :attr:`error`.  The program runs on a daemon worker thread; the session
    object is the controller and must be used from a single thread.
    """

    #: Safety valve for continue_all on runaway programs.
    MAX_CONTINUE_STEPS = 200_000

    def __init__(self, text: str | None = None,
                 inputs: list[str] | None = None,
                 name: str = "<debug>", num_workers: int = 4,
                 detect_races: bool = False, replay: object = None):
        #: The schedule being replayed (``tetra run --record-schedule`` /
        #: ``tetra stress --artifacts`` output), or None for a live session.
        self.schedule = None
        self._replay_turns: deque[str] | None = None
        if replay is not None:
            from ..runtime.schedule import load_schedule, parse_schedule

            schedule = load_schedule(replay) if isinstance(replay, str) \
                else parse_schedule(replay)
            self.schedule = schedule
            # The artifact embeds everything the recorded run saw; explicit
            # arguments still win so tests can tweak a session.
            if text is None:
                text = schedule.source
            if name == "<debug>":
                name = schedule.name
            if inputs is None:
                inputs = list(schedule.inputs)
            detect_races = detect_races or schedule.detect_races
            if schedule.num_workers is not None:
                num_workers = schedule.num_workers
            self._replay_turns = deque(schedule.turns)
        if text is None:
            raise TetraThreadError(
                "DebugSession needs source text or a replay schedule"
            )
        self.program, self.source = cached_program(text, name)
        self.io = CapturingIO(inputs or [])
        from ..resilience import CancelToken

        #: The IDE stop button routes through this token (via
        #: Interpreter.stop), so even threads parked on locks unwind.
        self.cancel = CancelToken()
        config = RuntimeConfig(num_workers=num_workers,
                               detect_races=detect_races,
                               cancel=self.cancel)
        if self.schedule is not None:
            # Installing the replay on the config makes CoopBackend arm
            # the lock-grant gate and parallel-for shapes; stepping stays
            # manual, but every lock handoff and worker count follows the
            # recording.
            config.schedule_replay = self.schedule
            config.chunking = self.schedule.chunking
            config.fault_plan = self.schedule.make_fault_plan()
        self.backend = CoopBackend(ManualPolicy(), config=config)
        self.interpreter = Interpreter(
            self.program, self.source, backend=self.backend, io=self.io,
            config=config,
        )
        self.breakpoints: set[int] = set()
        self.error: TetraError | None = None
        self._runner: threading.Thread | None = None
        self._done = threading.Event()
        # Thread ids shown to the user are compact per-session numbers
        # (1, 2, 3...) in spawn order; internally the runtime uses
        # process-global context ids.
        self._display_ids: dict[int, int] = {}
        self._real_ids: dict[int, int] = {}

    def _display_id(self, real_id: int) -> int:
        if real_id not in self._display_ids:
            display = len(self._display_ids) + 1
            self._display_ids[real_id] = display
            self._real_ids[display] = real_id
        return self._display_ids[real_id]

    def _real_id(self, display_id: int) -> int:
        # Refresh the mapping first so newly spawned threads are addressable.
        for record in self.backend.scheduler.snapshot():
            self._display_id(record.id)
        real = self._real_ids.get(display_id)
        if real is None:
            raise TetraThreadError(f"no thread with id {display_id}")
        return real

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the program; it pauses before its first statement."""
        if self._runner is not None:
            raise TetraThreadError("this debug session has already started")

        def run() -> None:
            try:
                self.interpreter.run()
            except TetraError as exc:
                self.error = exc.attach_source(self.source)
            except BaseException as exc:  # noqa: BLE001 - surfaced to the user
                self.error = TetraThreadError(
                    f"internal failure: {type(exc).__name__}: {exc}"
                )
            finally:
                self._done.set()

        self._runner = threading.Thread(target=run, name="tetra-debuggee",
                                        daemon=True)
        self._runner.start()
        self._settle()

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    @property
    def output(self) -> str:
        return self.io.output

    @property
    def races(self) -> list:
        """Races the detector has observed so far (needs ``detect_races``)."""
        return self.interpreter.races

    def _settle(self) -> None:
        """Wait until every Tetra thread is paused, blocked, or finished."""
        if self._done.is_set():
            return
        self.backend.scheduler.wait_until_paused()

    # ------------------------------------------------------------------
    # Inspection (the per-thread code views)
    # ------------------------------------------------------------------
    def threads(self) -> list[ThreadView]:
        views: list[ThreadView] = []
        scheduler = self.backend.scheduler
        for record in scheduler.snapshot():
            ctx = self.backend.contexts.get(record.id)
            backtrace: list[FrameView] = []
            variables: dict[str, str] = {}
            function = "<program>"
            if isinstance(ctx, ThreadContext) and ctx.call_stack:
                backtrace = [
                    FrameView(fr.function_name, fr.current_span.line)
                    for fr in ctx.call_stack
                ]
                function = ctx.call_stack[-1].function_name
                if ctx.env is not None:
                    variables = {
                        name: display(value)
                        for name, value in sorted(ctx.env.snapshot().items())
                    }
            views.append(ThreadView(
                id=self._display_id(record.id),
                label=record.label,
                state=record.state,
                line=record.current_span.line,
                function=function,
                backtrace=backtrace,
                variables=variables,
                waiting_lock=record.waiting_lock,
                statements_run=scheduler.statements_run.get(record.id, 0),
            ))
        return views

    def thread(self, thread_id: int) -> ThreadView:
        for view in self.threads():
            if view.id == thread_id:
                return view
        raise TetraThreadError(f"no thread with id {thread_id}")

    def source_line(self, line: int) -> str:
        return self.source.line_text(line)

    def evaluate(self, thread_id: int, expression: str) -> str:
        """Evaluate an expression in a paused thread's current scope.

        The expression is parsed with the real parser, type-checked against
        a scope synthesized from the thread's live variables, and evaluated
        by the real interpreter against the thread's environment — so it
        sees exactly what the thread sees, private induction variables
        included, and type errors read like the compiler's.
        """
        ctx = self.backend.contexts.get(self._real_id(thread_id))
        if not isinstance(ctx, ThreadContext) or ctx.env is None:
            raise TetraThreadError(
                f"thread {thread_id} has no scope to evaluate in"
            )
        expr = parse_expression(expression)
        # The interpreter requires checker annotations (element types of
        # literals, coercion targets); console input never went through
        # check_program, so check it here against the runtime scope.
        scope = LocalScope()
        for var_name, value in ctx.env.snapshot().items():
            scope.define(VariableInfo(var_name, type_of_value(value)))
        checker = TypeChecker(self.program, self.source)
        checker.symbols = self.program.symbols  # type: ignore[attr-defined]
        checker._scope = scope
        checker._signature = FunctionSignature("<debug>", (), (), VOID)
        checker.check_expr(expr)
        if checker.errors:
            raise checker.errors[0]
        value = self.interpreter.eval_expr(expr, ctx)
        return display(value)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def step(self, thread_id: int, steps: int = 1) -> ThreadView:
        """Run ``thread_id`` forward ``steps`` statements while every other
        thread stays parked (the paper's independent stepping)."""
        real = self._real_id(thread_id)
        for _ in range(steps):
            if self.finished:
                break
            try:
                self.backend.scheduler.grant(real, 1)
            except TetraThreadError:
                self._raise_if_failed()  # surface a deadlock/crash first
                raise
            self._settle()
            record = self.backend.scheduler.threads.get(real)
            if record is None or record.state != READY:
                break  # blocked or finished mid-step
        self._raise_if_failed()
        return self.thread(thread_id)

    def run_thread(self, thread_id: int) -> ThreadView:
        """Step one thread until it finishes, blocks, or hits a breakpoint —
        'step though the code in one thread all the way to the end (or a
        lock)' in the paper's words."""
        real = self._real_id(thread_id)
        for _ in range(self.MAX_CONTINUE_STEPS):
            if self.finished:
                break
            record = self.backend.scheduler.threads.get(real)
            if record is None or record.state != READY:
                break
            self.backend.scheduler.grant(real, 1)
            self._settle()
            record = self.backend.scheduler.threads.get(real)
            if record is None or record.state != READY:
                break
            if record.current_span.line in self.breakpoints:
                break
        self._raise_if_failed()
        return self.thread(thread_id)

    def continue_all(self) -> None:
        """Round-robin every runnable thread until the program finishes or
        any thread reaches a breakpoint."""
        for _ in range(self.MAX_CONTINUE_STEPS):
            if self.finished:
                break
            runnable = [
                t for t in self.backend.scheduler.snapshot()
                if t.state == READY
            ]
            if not runnable:
                break
            hit = [t for t in runnable
                   if t.current_span.line in self.breakpoints]
            if hit:
                break
            for record in runnable:
                if self.finished or self.backend.scheduler.abort_exc:
                    break
                current = self.backend.scheduler.threads.get(record.id)
                if current is None or current.state != READY:
                    continue
                try:
                    self.backend.scheduler.grant(record.id, 1)
                except TetraThreadError:
                    # The thread finished or blocked between our snapshot
                    # and the grant (e.g. a deadlock abort cascaded through
                    # the program); the loop re-snapshots next round.
                    continue
                self._settle()
            if self.backend.scheduler.abort_exc:
                break
        self._raise_if_failed()

    @property
    def replay_pending(self) -> int:
        """Recorded turns not yet replayed (0 for live sessions)."""
        return len(self._replay_turns or ())

    def replay_step(self, steps: int = 1) -> list[ThreadView]:
        """Advance a replay session by ``steps`` recorded turns.

        Each step grants exactly the thread the recording ran next, so
        single-stepping walks the *recorded* interleaving — the student
        watches the exact schedule that raced or deadlocked, one statement
        at a time, with full variable inspection between turns.  Recorded
        turns whose thread no longer exists or is not runnable (e.g. a
        proc recording's worker-pool threads) are skipped; breakpoints are
        honored between turns by the caller checking :meth:`threads`.
        """
        if self._replay_turns is None:
            raise TetraThreadError(
                "this session is not replaying a schedule — construct "
                "DebugSession(replay=...) to step a recording"
            )
        for _ in range(steps):
            if self.finished:
                break
            granted = False
            while self._replay_turns and not granted:
                label = self._replay_turns.popleft()
                target = None
                for record in self.backend.scheduler.snapshot():
                    if record.label == label and record.state == READY:
                        target = record
                        break
                if target is None:
                    continue  # finished/absent thread: drop its turn
                try:
                    self.backend.scheduler.grant(target.id, 1)
                except TetraThreadError:
                    continue
                granted = True
                self._settle()
            if not granted:
                break  # recording exhausted
        self._raise_if_failed()
        return self.threads()

    def replay_continue(self) -> None:
        """Play the rest of the recording (or until a breakpoint line)."""
        if self._replay_turns is None:
            raise TetraThreadError(
                "this session is not replaying a schedule"
            )
        while self._replay_turns and not self.finished:
            hit = [t for t in self.backend.scheduler.snapshot()
                   if t.state == READY
                   and t.current_span.line in self.breakpoints]
            if hit:
                break
            before = len(self._replay_turns)
            self.replay_step()
            if len(self._replay_turns) == before:
                break

    def add_breakpoint(self, line: int) -> None:
        self.breakpoints.add(line)

    def remove_breakpoint(self, line: int) -> None:
        self.breakpoints.discard(line)

    def _raise_if_failed(self) -> None:
        # After a scheduler abort (deadlock) the runner thread needs a
        # moment to unwind and record the error; wait for it so callers see
        # the real diagnostic rather than a stale state.
        if self.backend.scheduler.abort_exc is not None:
            self._done.wait(timeout=10.0)
        if self._done.is_set() and self.error is not None:
            raise self.error

    def stop(self) -> None:
        """Abandon the program (e.g. the user closes the debugger)."""
        self.interpreter.stop()
        # Wake every parked thread so it can observe the stop flag.
        scheduler = self.backend.scheduler
        with scheduler.cv:
            for record in scheduler.threads.values():
                if record.state == READY:
                    record.budget = float("inf")
            scheduler._schedule_turn()
