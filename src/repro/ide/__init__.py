"""The Tetra IDE substrate: highlighting, sessions, and the parallel
debugger (headless equivalents of every Figure IV capability; DESIGN.md §4).
"""

from .debugger import DebugSession, FrameView, ThreadView
from .highlight import Style, StyledSpan, highlight, render_ansi
from .session import Diagnostic, IDESession
from .tui import DebuggerTUI, debug_main

__all__ = [
    "DebugSession", "FrameView", "ThreadView",
    "Style", "StyledSpan", "highlight", "render_ansi",
    "Diagnostic", "IDESession",
    "DebuggerTUI", "debug_main",
]
