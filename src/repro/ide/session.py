"""The headless IDE: everything Figure IV's window does, as a library.

The paper's IDE offers: editing (loading/saving), syntax highlighting of
Tetra keywords, running programs with I/O redirected to a console pane, and
(in progress there, complete here) the parallel debugger.  ``IDESession``
bundles those capabilities around one buffer so a front end — the bundled
TUI, or a GUI — only has to render state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import check_source
from ..errors import TetraError
from ..stdlib.io import CapturingIO
from .debugger import DebugSession
from .highlight import StyledSpan, highlight, render_ansi


@dataclass
class Diagnostic:
    """An editor-friendly rendering of one compile error."""

    line: int
    column: int
    message: str
    phase: str


class IDESession:
    """One open file in the IDE."""

    def __init__(self, text: str = "", path: str | None = None,
                 cache: bool = True):
        self.path = path
        self.text = text
        self.console = CapturingIO()
        self.debugger: DebugSession | None = None
        #: Races the last :meth:`run`'s detector observed (the race panel).
        self.races: list = []
        self._last_source = None
        #: Whether check/run go through the program cache (the edit-run
        #: loop's common case: an unchanged buffer re-runs without
        #: re-compiling).  ``cache=False`` recompiles every time.
        self.cache = cache

    # -- editing --------------------------------------------------------
    @staticmethod
    def open(path: str) -> "IDESession":
        with open(path, "r", encoding="utf-8") as handle:
            return IDESession(handle.read(), path)

    def save(self, path: str | None = None) -> str:
        target = path or self.path
        if target is None:
            raise ValueError("no path to save to")
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(self.text)
        self.path = target
        return target

    def set_text(self, text: str) -> None:
        self.text = text

    # -- highlighting -----------------------------------------------------
    def highlight_spans(self) -> list[StyledSpan]:
        return highlight(self.text, self.path or "<editor>")

    def highlighted_ansi(self) -> str:
        return render_ansi(self.text, self.path or "<editor>")

    # -- checking -----------------------------------------------------------
    def diagnostics(self) -> list[Diagnostic]:
        """All static errors, editor-shaped (empty = the program compiles)."""
        from ..api import cached_program

        try:
            # A clean buffer is the common case in the edit-check loop; a
            # cache hit answers it without re-running the pipeline, and the
            # warmed entry is the one :meth:`run` will use.
            cached_program(self.text, self.path or "<editor>",
                           cache=self.cache)
            return []
        except TetraError:
            # Something is wrong — fall back to the full collecting pass so
            # the editor shows *every* diagnostic, not just the first.
            pass
        result = []
        for exc in check_source(self.text, self.path or "<editor>"):
            result.append(Diagnostic(
                line=exc.span.line,
                column=exc.span.column,
                message=exc.message,
                phase=exc.phase,
            ))
        return result

    # -- running --------------------------------------------------------------
    def run(self, inputs: list[str] | None = None,
            backend: str = "thread", detect_races: bool = False) -> str:
        """Run the buffer; console output (and any runtime error, rendered
        the way the paper's console pane would show it) is returned and
        kept in :attr:`console`.  With ``detect_races`` the dynamic race
        detector watches the run; findings land in :attr:`races` and
        :meth:`race_panel` renders them console-style."""
        from ..api import BACKEND_FACTORIES, cached_program
        from ..interp import Interpreter
        from ..runtime import RuntimeConfig

        self.console = CapturingIO(inputs or [])
        self.races = []
        self._last_source = None
        interp = None
        try:
            # Re-running an unchanged buffer (the common edit-run loop) hits
            # the program cache and skips the lex/parse/check pipeline.
            program, source = cached_program(
                self.text, self.path or "<editor>", cache=self.cache,
                flags=(bool(detect_races), False, False))
            self._last_source = source
            config = RuntimeConfig(detect_races=True) if detect_races else None
            if config is None:
                backend_obj = BACKEND_FACTORIES[backend]()
            else:
                backend_obj = BACKEND_FACTORIES[backend](config=config)
            interp = Interpreter(program, source, backend=backend_obj,
                                 io=self.console, config=config)
            interp.run()
        except TetraError as exc:
            self.console.write(exc.render() + "\n")
        finally:
            if interp is not None:
                self.races = interp.races
        return self.console.output

    def race_panel(self) -> str:
        """The race-detector pane for the last :meth:`run` (headless
        stand-in for an IDE panel listing each race with both sites)."""
        from ..analysis import render_race_panel

        return render_race_panel(self.races, self._last_source)

    # -- debugging ---------------------------------------------------------------
    def debug(self, inputs: list[str] | None = None,
              detect_races: bool = False) -> DebugSession:
        """Start a debug session on the buffer (paused at first statement)."""
        self.debugger = DebugSession(self.text, inputs,
                                     name=self.path or "<editor>",
                                     detect_races=detect_races)
        self.debugger.start()
        return self.debugger
