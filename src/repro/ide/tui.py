"""An interactive terminal front end for the parallel debugger.

``tetra dbg program.ttr`` drops into a small command loop over
:class:`~repro.ide.debugger.DebugSession`.  It renders the paper's
"multiple code views ... one for each thread" as a panel per thread showing
the thread's state, the source line it is about to execute, and its
variables.  Commands:

    threads              list every thread and its state
    view <t>             code view around thread t's current line
    step <t> [n]         advance thread t by n statements (others stay put)
    run <t>              run thread t until it blocks, finishes, or breaks
    continue             round-robin everything to completion/breakpoint
    break <line>         set a breakpoint / delete <line> to clear it
    vars <t>             thread t's variables
    bt <t>               thread t's Tetra backtrace
    print <t> <expr>     evaluate an expression in thread t's scope
    locks                named locks and their holders
    output               show the console pane
    rs [n]               replay sessions: advance the recording n turns
    quit

In a replay session (``tetra dbg --replay FILE``) ``rs`` walks the
*recorded* interleaving — the exact schedule that raced or deadlocked —
one turn at a time; manual ``step`` remains available to diverge.

The loop reads from/writes to injectable streams so tests can drive it.
"""

from __future__ import annotations

import io as _io
import sys
from typing import Callable, TextIO

from ..errors import TetraError
from .debugger import DebugSession, ThreadView
from .highlight import render_ansi

_CONTEXT_LINES = 3


class DebuggerTUI:
    def __init__(self, text: str | None = None,
                 inputs: list[str] | None = None,
                 stdin: TextIO | None = None, stdout: TextIO | None = None,
                 color: bool = False, replay: object = None):
        self.session = DebugSession(text, inputs, replay=replay)
        self.stdin = stdin or sys.stdin
        self.stdout = stdout or sys.stdout
        self.color = color
        self._commands: dict[str, Callable[[list[str]], None]] = {
            "threads": self._cmd_threads,
            "view": self._cmd_view,
            "step": self._cmd_step,
            "run": self._cmd_run,
            "continue": self._cmd_continue,
            "break": self._cmd_break,
            "delete": self._cmd_delete,
            "vars": self._cmd_vars,
            "bt": self._cmd_bt,
            "print": self._cmd_print,
            "locks": self._cmd_locks,
            "output": self._cmd_output,
            "rs": self._cmd_replay_step,
            "help": self._cmd_help,
        }

    # ------------------------------------------------------------------
    def _say(self, text: str = "") -> None:
        self.stdout.write(text + "\n")

    def repl(self) -> None:
        """The main loop.  Returns when the user quits or the program ends
        and the user has seen the final state."""
        self.session.start()
        self._say("tetra debugger — program paused before its first statement")
        self._say("type 'help' for commands")
        self._cmd_threads([])
        while True:
            self.stdout.write("(tetra-dbg) ")
            self.stdout.flush()
            line = self.stdin.readline()
            if not line:
                break
            parts = line.split()
            if not parts:
                continue
            command, args = parts[0], parts[1:]
            if command in ("quit", "exit", "q"):
                break
            handler = self._commands.get(command)
            if handler is None:
                self._say(f"unknown command {command!r}; try 'help'")
                continue
            try:
                handler(args)
            except TetraError as exc:
                self._say(f"! {exc.render()}")
            except (ValueError, IndexError) as exc:
                self._say(f"! {exc}")
            if self.session.finished:
                self._say("program finished")
                self._cmd_output([])
                if self.session.error is not None:
                    self._say(f"! {self.session.error.render()}")
                break
        self.session.stop()

    # ------------------------------------------------------------------
    def _thread_id(self, args: list[str]) -> int:
        if not args:
            raise ValueError("which thread? (see 'threads')")
        return int(args[0])

    def _describe(self, view: ThreadView) -> str:
        marker = {True: "paused", False: view.state}[view.is_paused]
        where = f"line {view.line}" if view.line else "not started"
        lock = f" (wants lock '{view.waiting_lock}')" if view.waiting_lock else ""
        return (f"  [{view.id}] {view.label}: {marker} at {where} "
                f"in {view.function}{lock}")

    def _cmd_threads(self, args: list[str]) -> None:
        for view in self.session.threads():
            self._say(self._describe(view))

    def _cmd_view(self, args: list[str]) -> None:
        view = self.session.thread(self._thread_id(args))
        self._say(self._describe(view))
        if not view.line:
            return
        lo = max(1, view.line - _CONTEXT_LINES)
        hi = view.line + _CONTEXT_LINES
        for n in range(lo, hi + 1):
            text = self.session.source_line(n)
            if text == "" and n > view.line:
                break
            arrow = "->" if n == view.line else "  "
            self._say(f"  {arrow} {n:4} | {text}")

    def _cmd_step(self, args: list[str]) -> None:
        tid = self._thread_id(args)
        steps = int(args[1]) if len(args) > 1 else 1
        view = self.session.step(tid, steps)
        self._cmd_view([str(tid)]) if not self.session.finished else None

    def _cmd_run(self, args: list[str]) -> None:
        tid = self._thread_id(args)
        view = self.session.run_thread(tid)
        if not self.session.finished:
            self._say(self._describe(view))

    def _cmd_continue(self, args: list[str]) -> None:
        self.session.continue_all()
        if not self.session.finished:
            self._say("stopped at a breakpoint")
            self._cmd_threads([])

    def _cmd_break(self, args: list[str]) -> None:
        line = int(args[0])
        self.session.add_breakpoint(line)
        self._say(f"breakpoint at line {line}")

    def _cmd_delete(self, args: list[str]) -> None:
        line = int(args[0])
        self.session.remove_breakpoint(line)
        self._say(f"removed breakpoint at line {line}")

    def _cmd_vars(self, args: list[str]) -> None:
        view = self.session.thread(self._thread_id(args))
        if not view.variables:
            self._say("  (no variables yet)")
        for name, value in view.variables.items():
            self._say(f"  {name} = {value}")

    def _cmd_bt(self, args: list[str]) -> None:
        view = self.session.thread(self._thread_id(args))
        for i, frame in enumerate(reversed(view.backtrace)):
            self._say(f"  #{i} {frame.function} (line {frame.line})")

    def _cmd_print(self, args: list[str]) -> None:
        tid = self._thread_id(args)
        expression = " ".join(args[1:])
        if not expression:
            raise ValueError("print needs an expression")
        self._say(f"  {expression} = {self.session.evaluate(tid, expression)}")

    def _cmd_locks(self, args: list[str]) -> None:
        scheduler = self.session.backend.scheduler
        with scheduler.cv:
            owners = dict(scheduler.lock_owner)
        if not owners:
            self._say("  (no locks held)")
        for name, tid in sorted(owners.items()):
            label = scheduler.threads[tid].label
            self._say(f"  lock '{name}' held by [{tid}] {label}")

    def _cmd_output(self, args: list[str]) -> None:
        text = self.session.output
        if not text:
            self._say("  (no output yet)")
            return
        for line in text.rstrip("\n").split("\n"):
            self._say(f"  | {line}")

    def _cmd_replay_step(self, args: list[str]) -> None:
        steps = int(args[0]) if args else 1
        self.session.replay_step(steps)
        left = self.session.replay_pending
        self._say(f"  ({left} recorded turn{'s' if left != 1 else ''} left)")
        if not self.session.finished:
            self._cmd_threads([])

    def _cmd_help(self, args: list[str]) -> None:
        self._say(__doc__.split("Commands:")[1].split("The loop")[0])


def debug_main(text: str | None = None, inputs: list[str] | None = None,
               replay: object = None) -> None:
    """Entry point used by ``tetra dbg`` (``--replay`` passes a recorded
    schedule artifact; the program source then comes from the artifact)."""
    DebuggerTUI(text, inputs, replay=replay).repl()
