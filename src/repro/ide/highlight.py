"""Syntax highlighting for Tetra source — the IDE feature the paper lists
as already working ("syntax highlighting of Tetra keywords").

The highlighter is a thin layer over the real lexer, so it can never
disagree with the language (no regex approximations).  It produces styled
*spans*; renderers turn those into ANSI escapes for the terminal (used by
``tetra highlight`` and the TUI debugger's code view) or could target HTML.

Source that fails to lex is still highlighted: the scanner runs up to the
error, the remainder is emitted unstyled, and the error position is
reported — an editor must keep highlighting while the user is mid-keystroke.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import TetraError
from ..lexer import PARALLEL_KEYWORDS, TYPE_KEYWORDS, Scanner, TokenType
from ..source import SourceFile


class Style(enum.Enum):
    KEYWORD = "keyword"
    PARALLEL_KEYWORD = "parallel-keyword"   # highlighted specially: the point
    TYPE = "type"
    NUMBER = "number"
    STRING = "string"
    COMMENT = "comment"
    FUNCTION = "function"
    IDENT = "ident"
    OPERATOR = "operator"
    PLAIN = "plain"


@dataclass(frozen=True)
class StyledSpan:
    """A run of characters sharing one style, by absolute offset."""

    start: int
    end: int
    style: Style
    text: str


#: ANSI SGR codes per style (default terminal theme).
ANSI_THEME: dict[Style, str] = {
    Style.KEYWORD: "\x1b[1;34m",           # bold blue
    Style.PARALLEL_KEYWORD: "\x1b[1;35m",  # bold magenta
    Style.TYPE: "\x1b[36m",                # cyan
    Style.NUMBER: "\x1b[33m",              # yellow
    Style.STRING: "\x1b[32m",              # green
    Style.COMMENT: "\x1b[2;37m",           # dim
    Style.FUNCTION: "\x1b[1;37m",          # bold white
    Style.IDENT: "",
    Style.OPERATOR: "",
    Style.PLAIN: "",
}
_RESET = "\x1b[0m"

_LAYOUT = {TokenType.NEWLINE, TokenType.INDENT, TokenType.DEDENT, TokenType.EOF}


def _comment_spans(text: str) -> list[StyledSpan]:
    """Comments are dropped by the scanner; recover them with a scan that
    respects string literals."""
    spans: list[StyledSpan] = []
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            if ch == "\\":
                i += 2
                continue
            if ch == '"' or ch == "\n":
                in_string = False
        elif ch == '"':
            in_string = True
        elif ch == "#":
            end = text.find("\n", i)
            if end < 0:
                end = len(text)
            spans.append(StyledSpan(i, end, Style.COMMENT, text[i:end]))
            i = end
            continue
        i += 1
    return spans


def highlight(text: str, name: str = "<string>") -> list[StyledSpan]:
    """Styled spans covering every highlightable region of ``text``.

    Spans are sorted by start offset and never overlap; unstyled gaps
    (whitespace) are simply absent.
    """
    source = SourceFile.from_string(text, name)
    spans = _comment_spans(text)
    try:
        tokens = Scanner(source).scan()
    except TetraError:
        tokens = []
    for i, tok in enumerate(tokens):
        if tok.type in _LAYOUT:
            continue
        if tok.type in PARALLEL_KEYWORDS:
            style = Style.PARALLEL_KEYWORD
        elif tok.type in TYPE_KEYWORDS:
            style = Style.TYPE
        elif tok.is_keyword():
            style = Style.KEYWORD
        elif tok.type in (TokenType.INT, TokenType.REAL):
            style = Style.NUMBER
        elif tok.type is TokenType.STRING:
            style = Style.STRING
        elif tok.type is TokenType.IDENT:
            followed_by_paren = (
                i + 1 < len(tokens) and tokens[i + 1].type is TokenType.LPAREN
            )
            style = Style.FUNCTION if followed_by_paren else Style.IDENT
        else:
            style = Style.OPERATOR
        spans.append(StyledSpan(tok.span.start, tok.span.end, style, tok.text))
    spans.sort(key=lambda s: s.start)
    return spans


def render_ansi(text: str, name: str = "<string>",
                theme: dict[Style, str] = ANSI_THEME) -> str:
    """``text`` with ANSI colour escapes applied."""
    out: list[str] = []
    cursor = 0
    for span in highlight(text, name):
        if span.start < cursor:
            continue  # comment overlapped by nothing; defensive
        out.append(text[cursor:span.start])
        code = theme.get(span.style, "")
        if code:
            out.append(f"{code}{text[span.start:span.end]}{_RESET}")
        else:
            out.append(text[span.start:span.end])
        cursor = span.end
    out.append(text[cursor:])
    return "".join(out)
