"""Token definitions for the Tetra language.

The token set covers everything the paper's grammar uses (Python-like
keywords, ``#`` comments, colon-and-indent blocks, the ``parallel`` /
``background`` / ``lock`` keywords) plus the extended standard-library
surface this reproduction implements from the paper's future-work list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..source import Span


class TokenType(enum.Enum):
    # Layout
    NEWLINE = "NEWLINE"
    INDENT = "INDENT"
    DEDENT = "DEDENT"
    EOF = "EOF"

    # Literals and names
    IDENT = "IDENT"
    INT = "INT"
    REAL = "REAL"
    STRING = "STRING"

    # Keywords
    KW_DEF = "def"
    KW_IF = "if"
    KW_ELIF = "elif"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_IN = "in"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_PASS = "pass"
    KW_AND = "and"
    KW_OR = "or"
    KW_NOT = "not"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_PARALLEL = "parallel"
    KW_BACKGROUND = "background"
    KW_LOCK = "lock"
    KW_TRY = "try"
    KW_CATCH = "catch"
    KW_CLASS = "class"
    KW_INT = "int"
    KW_REAL = "real"
    KW_STRING = "string"
    KW_BOOL = "bool"

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    COLON = ":"
    DOT = "."
    ELLIPSIS = "..."
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    STARSTAR = "**"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


#: Reserved words, mapped to their token type.  Type names are keywords so
#: that parameter declarations like ``x int`` parse unambiguously.
KEYWORDS: dict[str, TokenType] = {
    "def": TokenType.KW_DEF,
    "if": TokenType.KW_IF,
    "elif": TokenType.KW_ELIF,
    "else": TokenType.KW_ELSE,
    "while": TokenType.KW_WHILE,
    "for": TokenType.KW_FOR,
    "in": TokenType.KW_IN,
    "return": TokenType.KW_RETURN,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
    "pass": TokenType.KW_PASS,
    "and": TokenType.KW_AND,
    "or": TokenType.KW_OR,
    "not": TokenType.KW_NOT,
    "true": TokenType.KW_TRUE,
    "false": TokenType.KW_FALSE,
    "parallel": TokenType.KW_PARALLEL,
    "background": TokenType.KW_BACKGROUND,
    "lock": TokenType.KW_LOCK,
    "try": TokenType.KW_TRY,
    "catch": TokenType.KW_CATCH,
    "class": TokenType.KW_CLASS,
    "int": TokenType.KW_INT,
    "real": TokenType.KW_REAL,
    "string": TokenType.KW_STRING,
    "bool": TokenType.KW_BOOL,
}

#: Multi-character operators, longest first so the scanner can match greedily.
MULTI_CHAR_OPERATORS: list[tuple[str, TokenType]] = [
    ("...", TokenType.ELLIPSIS),
    ("**", TokenType.STARSTAR),
    ("==", TokenType.EQ),
    ("!=", TokenType.NE),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("+=", TokenType.PLUS_ASSIGN),
    ("-=", TokenType.MINUS_ASSIGN),
    ("*=", TokenType.STAR_ASSIGN),
    ("/=", TokenType.SLASH_ASSIGN),
    ("%=", TokenType.PERCENT_ASSIGN),
]

SINGLE_CHAR_OPERATORS: dict[str, TokenType] = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ":": TokenType.COLON,
    ".": TokenType.DOT,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.ASSIGN,
    "<": TokenType.LT,
    ">": TokenType.GT,
}

#: Token types that carry a semantic payload in ``Token.value``.
VALUE_TOKENS = frozenset({TokenType.IDENT, TokenType.INT, TokenType.REAL, TokenType.STRING})

#: Type-name keywords (useful to the parser and the syntax highlighter).
TYPE_KEYWORDS = frozenset({TokenType.KW_INT, TokenType.KW_REAL, TokenType.KW_STRING, TokenType.KW_BOOL})

#: Keywords that introduce parallel constructs (highlighted specially in the IDE).
PARALLEL_KEYWORDS = frozenset({TokenType.KW_PARALLEL, TokenType.KW_BACKGROUND, TokenType.KW_LOCK})


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``text`` is the exact source slice; ``value`` is the decoded payload for
    literal tokens (``int`` for INT, ``float`` for REAL, the unescaped
    ``str`` for STRING, the name for IDENT) and ``None`` otherwise.
    """

    type: TokenType
    text: str
    span: Span
    value: object = None

    def is_keyword(self) -> bool:
        return self.type.name.startswith("KW_")

    def __repr__(self) -> str:  # compact, used heavily in test failures
        if self.value is not None:
            return f"Token({self.type.name}, {self.value!r}@{self.span})"
        return f"Token({self.type.name}@{self.span})"
