"""Indentation tracking for the whitespace-delimited Tetra grammar.

The paper notes the original lexer was hand-written precisely because of
significant whitespace.  This module implements the same discipline Python
uses: a stack of indentation widths; a deeper line emits INDENT, a shallower
line emits one DEDENT per popped level and must land exactly on an enclosing
level.  Tabs count as 8 columns (CPython's historical rule) so that files
mixing tabs and spaces are handled deterministically — but mixing within one
file is diagnosed, since silent tab/space confusion is a classic beginner
trap.
"""

from __future__ import annotations

from ..errors import TetraIndentationError
from ..source import Span

TAB_WIDTH = 8


def indent_width(prefix: str) -> int:
    """Visual width of a whitespace prefix, expanding tabs to stops of 8."""
    width = 0
    for ch in prefix:
        if ch == "\t":
            width += TAB_WIDTH - (width % TAB_WIDTH)
        else:
            width += 1
    return width


class IndentTracker:
    """Maintains the indent stack and reports push/pop transitions.

    The scanner feeds it the whitespace prefix of every *logical* line
    (blank and comment-only lines are skipped before reaching here).
    """

    def __init__(self) -> None:
        self._stack: list[int] = [0]
        self._seen_space = False
        self._seen_tab = False

    @property
    def depth(self) -> int:
        """Current nesting depth (0 at module level)."""
        return len(self._stack) - 1

    def check_consistency(self, prefix: str, span: Span) -> None:
        if " " in prefix:
            self._seen_space = True
        if "\t" in prefix:
            self._seen_tab = True
        if self._seen_space and self._seen_tab:
            raise TetraIndentationError(
                "file mixes tabs and spaces for indentation; pick one", span
            )

    def transition(self, prefix: str, span: Span) -> tuple[int, int]:
        """Process a new logical line's indentation.

        Returns ``(indents, dedents)`` — how many INDENT and DEDENT tokens
        the scanner must emit (at most one INDENT; possibly several DEDENTs).
        """
        self.check_consistency(prefix, span)
        width = indent_width(prefix)
        top = self._stack[-1]
        if width == top:
            return (0, 0)
        if width > top:
            self._stack.append(width)
            return (1, 0)
        dedents = 0
        while self._stack and self._stack[-1] > width:
            self._stack.pop()
            dedents += 1
        if not self._stack or self._stack[-1] != width:
            raise TetraIndentationError(
                "unindent does not match any outer indentation level", span
            )
        return (0, dedents)

    def close(self) -> int:
        """Number of DEDENTs needed to close all open blocks at EOF."""
        dedents = len(self._stack) - 1
        self._stack = [0]
        return dedents
