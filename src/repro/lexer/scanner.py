"""The hand-written Tetra scanner.

Produces a flat token stream with explicit NEWLINE / INDENT / DEDENT layout
tokens, exactly the interface the recursive-descent parser consumes.

Notable behaviours (all mirrored from the paper's description of Tetra or
standard Python-family lexing where the paper is silent):

* ``#`` starts a comment running to end of line.
* Blank and comment-only lines produce no tokens at all.
* Newlines inside parentheses or brackets are ignored (implicit joining),
  so long array literals and call argument lists can wrap.
* ``[1 ... 100]`` range literals: ``...`` is a single ELLIPSIS token, and a
  ``.`` directly following an integer is only consumed as a decimal point if
  it is *not* the start of an ellipsis (so ``[1...100]`` also lexes).
* String literals use double quotes with ``\\n \\t \\\\ \\"`` escapes.
"""

from __future__ import annotations

from ..errors import TetraSyntaxError
from ..source import SourceFile, Span
from .indentation import IndentTracker
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)

_STRING_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    '"': '"',
    "'": "'",
}


class Scanner:
    """Single-pass scanner over one :class:`SourceFile`."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0
        self.line = 1
        self.col = 1
        self.paren_depth = 0
        self.indent = IndentTracker()
        self.tokens: list[Token] = []
        self._at_line_start = True

    # ------------------------------------------------------------------
    # Low-level cursor helpers
    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _span_from(self, start: int, line: int, col: int) -> Span:
        return Span(start, self.pos, line, col)

    def _here(self) -> Span:
        return Span(self.pos, self.pos + 1, self.line, self.col)

    def _emit(self, type_: TokenType, span: Span, value: object = None) -> None:
        self.tokens.append(Token(type_, self.text[span.start : span.end], span, value))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def scan(self) -> list[Token]:
        """Tokenize the whole file, returning the token list ending in EOF."""
        while self.pos < len(self.text):
            if self._at_line_start and self.paren_depth == 0:
                if self._handle_line_start():
                    continue
            ch = self._peek()
            if ch == "\n":
                self._handle_newline()
            elif ch in (" ", "\t"):
                self._advance()
            elif ch == "\r":
                self._advance()  # tolerate CRLF files
            elif ch == "#":
                self._skip_comment()
            elif ch == '"':
                self._scan_string()
            elif ch.isdigit():
                self._scan_number()
            elif ch.isalpha() or ch == "_":
                self._scan_word()
            else:
                self._scan_operator()
        self._finish()
        return self.tokens

    # ------------------------------------------------------------------
    # Line structure
    # ------------------------------------------------------------------
    def _handle_line_start(self) -> bool:
        """Measure indentation at the start of a logical line.

        Returns True if the whole line was blank/comment-only and consumed.
        """
        start = self.pos
        line, col = self.line, self.col
        while self._peek() in (" ", "\t"):
            self._advance()
        nxt = self._peek()
        if nxt in ("\n", "\r", ""):
            # Blank line: no tokens, no indentation significance.
            while self._peek() in ("\r", "\n"):
                self._advance()
            return True
        if nxt == "#":
            self._skip_comment()
            while self._peek() in ("\r", "\n"):
                self._advance()
            return True
        prefix = self.text[start : self.pos]
        span = Span(start, self.pos, line, col)
        indents, dedents = self.indent.transition(prefix, span)
        for _ in range(indents):
            self._emit(TokenType.INDENT, span)
        for _ in range(dedents):
            self._emit(TokenType.DEDENT, span)
        self._at_line_start = False
        return False

    def _handle_newline(self) -> None:
        span = self._here()
        self._advance()
        if self.paren_depth == 0:
            # Collapse runs of newlines into a single NEWLINE token.
            if self.tokens and self.tokens[-1].type not in (
                TokenType.NEWLINE,
                TokenType.INDENT,
                TokenType.DEDENT,
            ):
                self._emit(TokenType.NEWLINE, span)
            self._at_line_start = True

    def _skip_comment(self) -> None:
        while self._peek() not in ("\n", ""):
            self._advance()

    def _finish(self) -> None:
        end_span = Span(self.pos, self.pos, self.line, self.col)
        if self.tokens and self.tokens[-1].type not in (
            TokenType.NEWLINE,
            TokenType.INDENT,
            TokenType.DEDENT,
        ):
            self._emit(TokenType.NEWLINE, end_span)
        for _ in range(self.indent.close()):
            self._emit(TokenType.DEDENT, end_span)
        self._emit(TokenType.EOF, end_span)

    # ------------------------------------------------------------------
    # Token classes
    # ------------------------------------------------------------------
    def _scan_string(self) -> None:
        start, line, col = self.pos, self.line, self.col
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise TetraSyntaxError(
                    "unterminated string literal",
                    Span(start, self.pos, line, col),
                ).attach_source(self.source)
            if ch == "\n":
                raise TetraSyntaxError(
                    "newline inside string literal (close the quote)",
                    Span(start, self.pos, line, col),
                ).attach_source(self.source)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                if esc not in _STRING_ESCAPES:
                    raise TetraSyntaxError(
                        f"unknown escape sequence '\\{esc}'", self._here()
                    ).attach_source(self.source)
                chars.append(_STRING_ESCAPES[esc])
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        span = self._span_from(start, line, col)
        self._emit(TokenType.STRING, span, "".join(chars))

    def _scan_number(self) -> None:
        start, line, col = self.pos, self.line, self.col
        while self._peek().isdigit():
            self._advance()
        is_real = False
        # A '.' is a decimal point only if it is not the start of '...'
        # (range literal) and is followed by a digit: ``1.5`` vs ``1...5``.
        if self._peek() == "." and self._peek(1) != "." and self._peek(1).isdigit():
            is_real = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in ("+", "-") and self._peek(2).isdigit())
        ):
            is_real = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        span = self._span_from(start, line, col)
        text = self.text[span.start : span.end]
        if is_real:
            self._emit(TokenType.REAL, span, float(text))
        else:
            self._emit(TokenType.INT, span, int(text))

    def _scan_word(self) -> None:
        start, line, col = self.pos, self.line, self.col
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        span = self._span_from(start, line, col)
        word = self.text[span.start : span.end]
        kw = KEYWORDS.get(word)
        if kw is not None:
            self._emit(kw, span)
        else:
            self._emit(TokenType.IDENT, span, word)

    def _scan_operator(self) -> None:
        for text, type_ in MULTI_CHAR_OPERATORS:
            if self.text.startswith(text, self.pos):
                start, line, col = self.pos, self.line, self.col
                self._advance(len(text))
                self._emit(type_, self._span_from(start, line, col))
                return
        ch = self._peek()
        type_ = SINGLE_CHAR_OPERATORS.get(ch)
        if type_ is None:
            err_span = self._here()
            raise TetraSyntaxError(
                f"unexpected character {ch!r}", err_span
            ).attach_source(self.source)
        start, line, col = self.pos, self.line, self.col
        self._advance()
        if type_ in (TokenType.LPAREN, TokenType.LBRACKET, TokenType.LBRACE):
            self.paren_depth += 1
        elif type_ in (TokenType.RPAREN, TokenType.RBRACKET, TokenType.RBRACE):
            self.paren_depth = max(0, self.paren_depth - 1)
        self._emit(type_, self._span_from(start, line, col))


def tokenize(source: SourceFile | str, name: str = "<string>") -> list[Token]:
    """Tokenize Tetra source text (convenience wrapper around Scanner)."""
    if isinstance(source, str):
        source = SourceFile.from_string(source, name)
    return Scanner(source).scan()
