"""Lexical analysis for Tetra: hand-written, indentation-aware.

Public surface:

* :func:`tokenize` — source text → token list.
* :class:`Scanner` — the stateful scanner, for callers that need spans
  relative to an existing :class:`~repro.source.SourceFile`.
* :class:`Token` / :class:`TokenType` — the token vocabulary.
"""

from .indentation import IndentTracker, indent_width
from .scanner import Scanner, tokenize
from .tokens import (
    KEYWORDS,
    PARALLEL_KEYWORDS,
    TYPE_KEYWORDS,
    Token,
    TokenType,
)

__all__ = [
    "IndentTracker",
    "indent_width",
    "Scanner",
    "tokenize",
    "KEYWORDS",
    "PARALLEL_KEYWORDS",
    "TYPE_KEYWORDS",
    "Token",
    "TokenType",
]
