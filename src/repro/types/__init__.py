"""Static type system: semantic types, symbol tables, checker/inference."""

from .check import ERROR, ErrorType, TypeChecker, check_program, collect_diagnostics
from .symbols import ClassInfo, FunctionSignature, LocalScope, ProgramSymbols, VariableInfo
from .types import (
    BOOL,
    INT,
    REAL,
    STRING,
    VOID,
    ArrayType,
    BoolType,
    ClassType,
    DictType,
    IntType,
    RealType,
    StringType,
    TupleType,
    Type,
    VALID_KEY_TYPES,
    VoidType,
    element_of,
    from_type_expr,
    is_assignable,
    numeric_join,
)

__all__ = [
    "ERROR", "ErrorType", "TypeChecker", "check_program", "collect_diagnostics",
    "ClassInfo", "FunctionSignature", "LocalScope", "ProgramSymbols", "VariableInfo",
    "BOOL", "INT", "REAL", "STRING", "VOID",
    "ArrayType", "BoolType", "ClassType", "DictType", "IntType", "RealType", "StringType",
    "TupleType", "Type",
    "VALID_KEY_TYPES", "VoidType", "element_of", "from_type_expr", "is_assignable", "numeric_join",
]
