"""The Tetra static type checker and flow-based local type inference.

Mirrors the paper's two facts about the original implementation:

* "Tetra is statically typed: all types are known at compile/parse time."
* "Because type inference is only done on the local scope, a simple
  flow-based algorithm suffices."  Function parameters and return values
  carry declared types; the first assignment a top-down walk encounters
  fixes each local variable's type.

The checker collects *all* diagnostics instead of stopping at the first —
students fix batches of errors — using an ``ERROR`` recovery type to
suppress cascading complaints.  It also enforces the structural rules a
parallel language needs: ``break``/``continue`` cannot escape a thread
boundary, and ``return`` is not allowed inside ``parallel`` /
``background`` / ``parallel for`` bodies (a thread has no function
activation of its own to return from).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TetraNameError, TetraTypeError
from ..source import SourceFile
from ..tetra_ast import (
    ArrayLiteral,
    Assign,
    Attribute,
    AugAssign,
    BackgroundBlock,
    BinaryOp,
    BinOp,
    Block,
    BoolLiteral,
    Break,
    Call,
    ClassDef,
    Continue,
    Declare,
    DictLiteral,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    If,
    Index,
    IntLiteral,
    LockStmt,
    MethodCall,
    Name,
    ParallelBlock,
    ParallelFor,
    Pass,
    Program,
    RangeLiteral,
    RealLiteral,
    Return,
    Stmt,
    StringLiteral,
    TryStmt,
    TupleLiteral,
    Unary,
    UnaryOp,
    Unpack,
    While,
)
from .symbols import (
    ClassInfo,
    FunctionSignature,
    LocalScope,
    ProgramSymbols,
    VariableInfo,
)
from .types import (
    BOOL,
    INT,
    REAL,
    STRING,
    VALID_KEY_TYPES,
    VOID,
    ArrayType,
    BoolType,
    ClassType,
    DictType,
    IntType,
    StringType,
    TupleType,
    Type,
    element_of,
    from_type_expr,
    is_assignable,
    numeric_join,
)


@dataclass(frozen=True)
class ErrorType(Type):
    """Recovery type: compatible with everything, so one mistake does not
    produce a page of follow-on errors."""

    def __str__(self) -> str:
        return "<error>"


ERROR = ErrorType()


def _is_error(*types: Type) -> bool:
    return any(isinstance(t, ErrorType) for t in types)


class TypeChecker:
    """Checks one :class:`Program`; see :func:`check_program` for the
    raise-on-error convenience wrapper."""

    def __init__(self, program: Program, source: SourceFile | None = None,
                 builtins=None):
        self.program = program
        self.source = source
        if builtins is None:
            from ..stdlib.registry import BUILTINS  # local import: no cycle
            builtins = BUILTINS
        self.builtins = builtins
        self.symbols = ProgramSymbols()
        self.errors: list[TetraTypeError] = []
        # Per-function state
        self._scope: LocalScope | None = None
        self._signature: FunctionSignature | None = None
        self._loop_depth = 0       # sequential loops since the last thread boundary
        self._boundary_depth = 0   # nesting of parallel/background/parallel-for

    # ------------------------------------------------------------------
    # Error handling
    # ------------------------------------------------------------------
    def _err(self, message: str, node) -> Type:
        exc = TetraTypeError(message, node.span)
        if self.source is not None:
            exc.attach_source(self.source)
        self.errors.append(exc)
        return ERROR

    def _name_err(self, message: str, node) -> Type:
        exc = TetraNameError(message, node.span)
        if self.source is not None:
            exc.attach_source(self.source)
        self.errors.append(exc)
        return ERROR

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> ProgramSymbols:
        self._collect_classes()
        self._collect_signatures()
        for fn in self.program.functions:
            self._check_function(fn)
        for cls in self.program.classes:
            self._check_class_methods(cls)
        self._check_main()
        self.program.symbols = self.symbols  # type: ignore[attr-defined]
        return self.symbols

    # ------------------------------------------------------------------
    # Classes
    # ------------------------------------------------------------------
    def _collect_classes(self) -> None:
        for cls in self.program.classes:
            if cls.name in self.symbols.classes:
                self._err(f"class '{cls.name}' is defined more than once", cls)
                continue
            field_names = tuple(f.name for f in cls.fields)
            if len(set(field_names)) != len(field_names):
                self._err(f"class '{cls.name}' repeats a field name", cls)
            field_types = tuple(from_type_expr(f.type) for f in cls.fields)
            info = ClassInfo(cls.name, field_names, field_types, span=cls.span)
            for method in cls.methods:
                if method.name in info.methods:
                    self._err(
                        f"class '{cls.name}' defines method "
                        f"'{method.name}' twice",
                        method,
                    )
                    continue
                if method.name in field_names:
                    self._err(
                        f"'{cls.name}.{method.name}' is both a field and a "
                        "method",
                        method,
                    )
                params = tuple(from_type_expr(p.type) for p in method.params)
                names = tuple(p.name for p in method.params)
                if "self" in names:
                    self._err(
                        "'self' is implicit in methods; do not declare it "
                        "as a parameter",
                        method,
                    )
                ret = (from_type_expr(method.return_type)
                       if method.return_type is not None else VOID)
                info.methods[method.name] = FunctionSignature(
                    f"{cls.name}.{method.name}",
                    ("self",) + names,
                    (ClassType(cls.name),) + params,
                    ret,
                    method.span,
                )
            self.symbols.classes[cls.name] = info
        # Field and method annotation types can reference other classes, so
        # validate only after every class is known.
        for cls in self.program.classes:
            info = self.symbols.classes.get(cls.name)
            if info is None:
                continue
            for f, ty in zip(cls.fields, info.field_types):
                self._validate_type(ty, f)
            for method in cls.methods:
                sig = info.methods.get(method.name)
                if sig is None:
                    continue
                for ty in sig.param_types[1:]:
                    self._validate_type(ty, method)
                self._validate_type(sig.return_type, method)

    def _check_class_methods(self, cls: ClassDef) -> None:
        info = self.symbols.classes.get(cls.name)
        if info is None:
            return
        for method in cls.methods:
            sig = info.methods.get(method.name)
            if sig is None:
                continue
            scope = LocalScope()
            scope.define(VariableInfo(
                "self", ClassType(cls.name), method.span, is_parameter=True
            ))
            for pname, ptype, param in zip(sig.param_names[1:],
                                           sig.param_types[1:],
                                           method.params):
                scope.define(VariableInfo(pname, ptype, param.span,
                                          is_parameter=True))
            self._scope = scope
            self._signature = sig
            self._loop_depth = 0
            self._boundary_depth = 0
            self.check_block(method.body)
            if (sig.return_type is not VOID
                    and not self._block_always_returns(method.body)):
                self._err(
                    f"method '{cls.name}.{method.name}' is declared to "
                    f"return {sig.return_type} but not every path ends in "
                    "a return",
                    method,
                )
            self.symbols.locals[f"{cls.name}.{method.name}"] = scope

    def _collect_signatures(self) -> None:
        for fn in self.program.functions:
            if fn.name in self.symbols.functions:
                self._err(f"function '{fn.name}' is defined more than once", fn)
                continue
            if fn.name in self.symbols.classes:
                self._err(
                    f"'{fn.name}' is already a class name (constructors and "
                    "functions share the call namespace)",
                    fn,
                )
                continue
            # A user function may shadow a builtin of the same name (user
            # wins): the paper's own listings define `sum` and `max`.
            params = tuple(from_type_expr(p.type) for p in fn.params)
            for param, ty in zip(fn.params, params):
                self._validate_type(ty, param)
            names = tuple(p.name for p in fn.params)
            if len(set(names)) != len(names):
                self._err(f"function '{fn.name}' repeats a parameter name", fn)
            ret = from_type_expr(fn.return_type) if fn.return_type is not None else VOID
            if fn.return_type is not None:
                self._validate_type(ret, fn)
            self.symbols.functions[fn.name] = FunctionSignature(
                fn.name, names, params, ret, fn.span
            )

    def _check_main(self) -> None:
        sig = self.symbols.functions.get("main")
        if sig is None:
            return  # libraries without main are fine; api.run checks later
        if sig.param_types:
            self._err_at_span("main() must not take parameters", sig.span)
        if sig.return_type is not VOID:
            self._err_at_span("main() must not declare a return type", sig.span)

    def _err_at_span(self, message: str, span) -> None:
        exc = TetraTypeError(message, span)
        if self.source is not None:
            exc.attach_source(self.source)
        self.errors.append(exc)

    def _validate_type(self, ty: Type, node) -> None:
        """Reject invalid composite annotations (bad dict key types)."""
        if isinstance(ty, DictType):
            if not isinstance(ty.key, VALID_KEY_TYPES):
                self._err(
                    f"dict keys must be int or string, not {ty.key}", node
                )
            self._validate_type(ty.value, node)
        elif isinstance(ty, ArrayType):
            self._validate_type(ty.element, node)
        elif isinstance(ty, TupleType):
            for element in ty.elements:
                self._validate_type(element, node)
        elif isinstance(ty, ClassType):
            if ty.name not in self.symbols.classes:
                self._name_err(f"there is no class named '{ty.name}'", node)

    def check_expr_expecting(self, expr: Expr, want: Type) -> Type:
        """Check an expression with a destination type available.

        The hint exists for exactly one purpose: giving empty ``[]`` / ``{}``
        literals the element types they cannot carry themselves.
        """
        if (isinstance(expr, ArrayLiteral) and not expr.elements
                and isinstance(want, ArrayType)):
            expr.ty = want
            return want
        if (isinstance(expr, DictLiteral) and not expr.entries
                and isinstance(want, DictType)):
            expr.ty = want
            return want
        return self.check_expr(expr)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def _check_function(self, fn: FunctionDef) -> None:
        sig = self.symbols.functions.get(fn.name)
        if sig is None:
            return  # duplicate/shadow: already diagnosed
        scope = LocalScope()
        for name, ty, param in zip(sig.param_names, sig.param_types, fn.params):
            scope.define(VariableInfo(name, ty, param.span, is_parameter=True))
        self._scope = scope
        self._signature = sig
        self._loop_depth = 0
        self._boundary_depth = 0
        self.check_block(fn.body)
        if sig.return_type is not VOID and not self._block_always_returns(fn.body):
            self._err(
                f"function '{fn.name}' is declared to return {sig.return_type} "
                "but not every path ends in a return",
                fn,
            )
        self.symbols.locals[fn.name] = scope

    def _block_always_returns(self, block: Block) -> bool:
        return any(self._stmt_always_returns(s) for s in block.statements)

    def _stmt_always_returns(self, stmt: Stmt) -> bool:
        if isinstance(stmt, Return):
            return True
        if isinstance(stmt, If):
            if stmt.orelse is None:
                return False
            return (
                self._block_always_returns(stmt.then)
                and all(self._block_always_returns(c.body) for c in stmt.elifs)
                and self._block_always_returns(stmt.orelse)
            )
        if isinstance(stmt, LockStmt):
            return self._block_always_returns(stmt.body)
        if isinstance(stmt, TryStmt):
            # An error can jump from anywhere in the body to the handler,
            # so both must guarantee the return.
            return (self._block_always_returns(stmt.body)
                    and self._block_always_returns(stmt.handler))
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def check_block(self, block: Block) -> None:
        for stmt in block.statements:
            self.check_stmt(stmt)

    def check_stmt(self, stmt: Stmt) -> None:
        method = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if method is None:
            raise TypeError(f"checker has no handler for {type(stmt).__name__}")
        method(stmt)

    def _stmt_ExprStmt(self, stmt: ExprStmt) -> None:
        self.check_expr(stmt.expr)

    def _stmt_Pass(self, stmt: Pass) -> None:
        pass

    def _stmt_Assign(self, stmt: Assign) -> None:
        if isinstance(stmt.target, Name):
            assert self._scope is not None
            info = self._scope.lookup(stmt.target.id)
            if info is not None:
                value_ty = self.check_expr_expecting(stmt.value, info.type)
            else:
                value_ty = self.check_expr(stmt.value)
            self._assign_name(stmt.target, value_ty, stmt)
        elif isinstance(stmt.target, Attribute):
            target_ty = self.check_expr(stmt.target)
            value_ty = (self.check_expr_expecting(stmt.value, target_ty)
                        if not _is_error(target_ty)
                        else self.check_expr(stmt.value))
            if _is_error(target_ty, value_ty):
                return
            if not is_assignable(target_ty, value_ty):
                self._err(
                    f"field '{stmt.target.attr}' is a {target_ty} and cannot "
                    f"hold a {value_ty}",
                    stmt,
                )
        else:
            assert isinstance(stmt.target, Index)
            target_ty = self.check_expr(stmt.target)
            base_ty = stmt.target.base.ty
            if isinstance(base_ty, TupleType):
                self._err(
                    "tuples are immutable; build a new tuple instead of "
                    "assigning to an element",
                    stmt,
                )
            value_ty = (self.check_expr_expecting(stmt.value, target_ty)
                        if not _is_error(target_ty)
                        else self.check_expr(stmt.value))
            if _is_error(target_ty, value_ty):
                return
            if not is_assignable(target_ty, value_ty):
                self._err(
                    f"cannot store a {value_ty} into an element of type {target_ty}",
                    stmt,
                )

    def _assign_name(self, target: Name, value_ty: Type, stmt: Stmt) -> None:
        assert self._scope is not None
        info = self._scope.lookup(target.id)
        if info is None:
            if isinstance(value_ty, ErrorType):
                value_ty = ERROR  # still bind, to avoid "undefined" cascades
            if value_ty is VOID:
                self._err(
                    f"'{target.id}' cannot hold the result of a function that "
                    "returns nothing",
                    stmt,
                )
                value_ty = ERROR
            self._scope.define(VariableInfo(target.id, value_ty, stmt.span))
            target.ty = value_ty
            return
        target.ty = info.type
        if _is_error(info.type, value_ty):
            return
        if not is_assignable(info.type, value_ty):
            self._err(
                f"'{target.id}' was inferred as {info.type} "
                f"(first assigned at {info.first_assigned}) and cannot hold a "
                f"{value_ty}",
                stmt,
            )

    def _stmt_AugAssign(self, stmt: AugAssign) -> None:
        target_ty = self.check_expr(stmt.target)
        value_ty = self.check_expr(stmt.value)
        if isinstance(stmt.target, Name):
            assert self._scope is not None
            if self._scope.lookup(stmt.target.id) is None:
                return  # undefined: already diagnosed by check_expr
        if _is_error(target_ty, value_ty):
            return
        result = self._binop_result(stmt.op, target_ty, value_ty, stmt)
        if isinstance(result, ErrorType):
            return
        if not is_assignable(target_ty, result):
            self._err(
                f"'{stmt.op.value}=' would turn a {target_ty} into a {result}",
                stmt,
            )

    def _stmt_Declare(self, stmt: Declare) -> None:
        assert self._scope is not None
        declared = from_type_expr(stmt.declared_type)
        self._validate_type(declared, stmt)
        value_ty = self.check_expr_expecting(stmt.value, declared)
        if self._scope.lookup(stmt.name) is not None:
            self._err(
                f"'{stmt.name}' is already defined; a declaration must be "
                "its first assignment",
                stmt,
            )
            return
        self._scope.define(VariableInfo(stmt.name, declared, stmt.span))
        if not _is_error(value_ty) and not is_assignable(declared, value_ty):
            self._err(
                f"'{stmt.name}' is declared as {declared} but initialized "
                f"with a {value_ty}",
                stmt,
            )

    def _stmt_Unpack(self, stmt: Unpack) -> None:
        assert self._scope is not None
        value_ty = self.check_expr(stmt.value)
        if _is_error(value_ty):
            # Still bind names so later uses do not cascade.
            for target in stmt.targets:
                if isinstance(target, Name) and target.id not in self._scope:
                    self._scope.define(VariableInfo(target.id, ERROR, stmt.span))
            return
        if not isinstance(value_ty, TupleType):
            self._err(
                f"only tuples can be unpacked, not a {value_ty}", stmt.value
            )
            return
        if len(stmt.targets) != len(value_ty.elements):
            self._err(
                f"cannot unpack a {len(value_ty.elements)}-tuple into "
                f"{len(stmt.targets)} target(s)",
                stmt,
            )
            return
        for target, element_ty in zip(stmt.targets, value_ty.elements):
            if isinstance(target, Name):
                self._assign_name(target, element_ty, stmt)
            else:
                target_ty = self.check_expr(target)
                if (not _is_error(target_ty, element_ty)
                        and not is_assignable(target_ty, element_ty)):
                    self._err(
                        f"cannot store a {element_ty} into an element of "
                        f"type {target_ty}",
                        target,
                    )

    def _stmt_TryStmt(self, stmt: TryStmt) -> None:
        assert self._scope is not None
        self.check_block(stmt.body)
        info = self._scope.lookup(stmt.error_name)
        if info is None:
            self._scope.define(VariableInfo(stmt.error_name, STRING, stmt.span))
        elif not _is_error(info.type) and not isinstance(info.type, StringType):
            self._err(
                f"the catch variable '{stmt.error_name}' was already "
                f"inferred as {info.type}; catch binds the error message, "
                "a string",
                stmt,
            )
        self.check_block(stmt.handler)

    def _require_bool(self, expr: Expr, what: str) -> None:
        ty = self.check_expr(expr)
        if not isinstance(ty, (BoolType, ErrorType)):
            self._err(f"the {what} must be a bool, not a {ty}", expr)

    def _stmt_If(self, stmt: If) -> None:
        self._require_bool(stmt.cond, "'if' condition")
        self.check_block(stmt.then)
        for clause in stmt.elifs:
            self._require_bool(clause.cond, "'elif' condition")
            self.check_block(clause.body)
        if stmt.orelse is not None:
            self.check_block(stmt.orelse)

    def _stmt_While(self, stmt: While) -> None:
        self._require_bool(stmt.cond, "'while' condition")
        self._loop_depth += 1
        self.check_block(stmt.body)
        self._loop_depth -= 1

    def _check_loop_var(self, var: str, iterable: Expr, stmt: Stmt,
                        induction: bool) -> None:
        assert self._scope is not None
        iter_ty = self.check_expr(iterable)
        elem = element_of(iter_ty) if not isinstance(iter_ty, ErrorType) else ERROR
        if elem is None:
            self._err(
                f"cannot loop over a {iter_ty} (expected an array or a string)",
                iterable,
            )
            elem = ERROR
        info = self._scope.lookup(var)
        if info is None:
            self._scope.define(
                VariableInfo(var, elem, stmt.span, is_induction=induction)
            )
        elif not _is_error(info.type, elem) and not is_assignable(info.type, elem):
            self._err(
                f"loop variable '{var}' was inferred as {info.type} but this "
                f"loop yields {elem}",
                stmt,
            )

    def _stmt_For(self, stmt: For) -> None:
        self._check_loop_var(stmt.var, stmt.iterable, stmt, induction=False)
        self._loop_depth += 1
        self.check_block(stmt.body)
        self._loop_depth -= 1

    def _stmt_ParallelFor(self, stmt: ParallelFor) -> None:
        self._check_loop_var(stmt.var, stmt.iterable, stmt, induction=True)
        self._enter_boundary(stmt.body)

    def _stmt_ParallelBlock(self, stmt: ParallelBlock) -> None:
        self._enter_boundary(stmt.body)

    def _stmt_BackgroundBlock(self, stmt: BackgroundBlock) -> None:
        self._enter_boundary(stmt.body)

    def _enter_boundary(self, body: Block) -> None:
        """Check a block whose statements run on fresh threads."""
        saved_loops = self._loop_depth
        self._loop_depth = 0
        self._boundary_depth += 1
        self.check_block(body)
        self._boundary_depth -= 1
        self._loop_depth = saved_loops

    def _stmt_LockStmt(self, stmt: LockStmt) -> None:
        self.symbols.lock_names.add(stmt.name)
        self.check_block(stmt.body)

    def _stmt_Return(self, stmt: Return) -> None:
        assert self._signature is not None
        if self._boundary_depth > 0:
            self._err(
                "'return' is not allowed inside a parallel, background, or "
                "parallel for block — a spawned thread has nothing to return from",
                stmt,
            )
            if stmt.value is not None:
                self.check_expr(stmt.value)
            return
        expected = self._signature.return_type
        if stmt.value is None:
            if expected is not VOID:
                self._err(
                    f"function '{self._signature.name}' must return a {expected}",
                    stmt,
                )
            return
        got = self.check_expr(stmt.value)
        if expected is VOID:
            self._err(
                f"function '{self._signature.name}' does not declare a return "
                "type, so 'return' must not carry a value",
                stmt,
            )
        elif not _is_error(got) and not is_assignable(expected, got):
            self._err(
                f"function '{self._signature.name}' returns {expected}, "
                f"not {got}",
                stmt,
            )

    def _stmt_Break(self, stmt: Break) -> None:
        if self._loop_depth == 0:
            self._err(
                "'break' outside a loop (note: it cannot cross into a "
                "'parallel for' — iterations are independent)",
                stmt,
            )

    def _stmt_Continue(self, stmt: Continue) -> None:
        if self._loop_depth == 0:
            self._err(
                "'continue' outside a loop (note: it cannot cross into a "
                "'parallel for' — iterations are independent)",
                stmt,
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def check_expr(self, expr: Expr) -> Type:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise TypeError(f"checker has no handler for {type(expr).__name__}")
        ty: Type = method(expr)
        expr.ty = ty
        return ty

    def _expr_IntLiteral(self, expr: IntLiteral) -> Type:
        return INT

    def _expr_RealLiteral(self, expr: RealLiteral) -> Type:
        return REAL

    def _expr_StringLiteral(self, expr: StringLiteral) -> Type:
        return STRING

    def _expr_BoolLiteral(self, expr: BoolLiteral) -> Type:
        return BOOL

    def _expr_Name(self, expr: Name) -> Type:
        assert self._scope is not None
        info = self._scope.lookup(expr.id)
        if info is None:
            hint = ""
            if expr.id in self.symbols.functions or expr.id in self.builtins:
                hint = " (functions must be called with parentheses)"
            return self._name_err(f"'{expr.id}' is not defined here{hint}", expr)
        return info.type

    def _expr_ArrayLiteral(self, expr: ArrayLiteral) -> Type:
        if not expr.elements:
            return self._err(
                "cannot infer the element type of an empty array literal; "
                "use the array(length, value) builtin instead",
                expr,
            )
        element = self.check_expr(expr.elements[0])
        for item in expr.elements[1:]:
            ty = self.check_expr(item)
            if _is_error(element, ty):
                element = ERROR if _is_error(element) else element
                continue
            if ty == element:
                continue
            joined = numeric_join(element, ty)
            if joined is None:
                return self._err(
                    f"array literal mixes {element} and {ty} elements", item
                )
            element = joined
        if _is_error(element):
            return ERROR
        return ArrayType(element)

    def _expr_TupleLiteral(self, expr: TupleLiteral) -> Type:
        element_types = tuple(self.check_expr(e) for e in expr.elements)
        if _is_error(*element_types):
            return ERROR
        return TupleType(element_types)

    def _expr_DictLiteral(self, expr: DictLiteral) -> Type:
        if not expr.entries:
            return self._err(
                "cannot infer the key/value types of an empty dict literal; "
                "declare it: name {K: V} = {}",
                expr,
            )
        key_ty: Type | None = None
        value_ty: Type | None = None
        for key_expr, value_expr in expr.entries:
            kt = self.check_expr(key_expr)
            vt = self.check_expr(value_expr)
            if _is_error(kt, vt):
                return ERROR
            if key_ty is None:
                if not isinstance(kt, VALID_KEY_TYPES):
                    return self._err(
                        f"dict keys must be int or string, not {kt}", key_expr
                    )
                key_ty = kt
            elif kt != key_ty:
                return self._err(
                    f"dict literal mixes {key_ty} and {kt} keys", key_expr
                )
            if value_ty is None:
                value_ty = vt
            elif vt != value_ty:
                joined = numeric_join(value_ty, vt)
                if joined is None:
                    return self._err(
                        f"dict literal mixes {value_ty} and {vt} values",
                        value_expr,
                    )
                value_ty = joined
        assert key_ty is not None and value_ty is not None
        return DictType(key_ty, value_ty)

    def _expr_RangeLiteral(self, expr: RangeLiteral) -> Type:
        for endpoint, side in ((expr.start, "start"), (expr.stop, "stop")):
            ty = self.check_expr(endpoint)
            if not isinstance(ty, (IntType, ErrorType)):
                self._err(f"range {side} must be an int, not a {ty}", endpoint)
        return ArrayType(INT)

    def _expr_Index(self, expr: Index) -> Type:
        base_ty = self.check_expr(expr.base)
        index_ty = self.check_expr(expr.index)
        if isinstance(base_ty, ErrorType):
            return ERROR
        if isinstance(base_ty, DictType):
            if not _is_error(index_ty) and index_ty != base_ty.key:
                self._err(
                    f"this dict is keyed by {base_ty.key}, not {index_ty}",
                    expr.index,
                )
            return base_ty.value
        if isinstance(base_ty, TupleType):
            if not isinstance(expr.index, IntLiteral):
                return self._err(
                    "tuple elements are selected with a constant index "
                    "(the element type must be known statically)",
                    expr.index,
                )
            position = expr.index.value
            if not 0 <= position < len(base_ty.elements):
                return self._err(
                    f"tuple index {position} is out of range for a "
                    f"{len(base_ty.elements)}-tuple",
                    expr.index,
                )
            return base_ty.elements[position]
        if not isinstance(index_ty, (IntType, ErrorType)):
            self._err(f"array index must be an int, not a {index_ty}", expr.index)
        elem = element_of(base_ty)
        if elem is None:
            return self._err(f"cannot index into a {base_ty}", expr)
        return elem

    def _expr_Call(self, expr: Call) -> Type:
        arg_types = [self.check_expr(a) for a in expr.args]
        sig = self.symbols.functions.get(expr.func)
        if sig is not None:
            return self._check_user_call(expr, sig, arg_types)
        info = self.symbols.classes.get(expr.func)
        if info is not None:
            return self._check_constructor(expr, info, arg_types)
        builtin = self.builtins.get(expr.func)
        if builtin is not None:
            if _is_error(*arg_types):
                return ERROR
            try:
                return builtin.check_types(tuple(arg_types))
            except TetraTypeError as exc:
                exc.span = expr.span
                if self.source is not None:
                    exc.attach_source(self.source)
                self.errors.append(exc)
                return ERROR
        return self._name_err(
            f"there is no function named '{expr.func}'"
            + self._unknown_function_hint(expr.func),
            expr,
        )

    #: Python builtins beginners reach for, with the Tetra idiom that
    #: replaces each one.  ``range`` is the headline case: Tetra iterates
    #: inclusive ranges written as literals, not via a function call.
    _PYTHON_IDIOM_HINTS = {
        "range": "Tetra iterates over an inclusive range literal: "
                 "'for i in [0 ... 9]:'",
        "xrange": "Tetra iterates over an inclusive range literal: "
                  "'for i in [0 ... 9]:'",
        "input": "use read_string(), read_int(), read_real(), or "
                 "read_bool() to read console input",
        "append": "Tetra arrays are fixed-length; build one with "
                  "array(length, value) or concat(a, b)",
        "println": "Tetra's print() already ends the line",
        "printf": "print() takes several values: print(\"x = \", x)",
        "strlen": "use len(s)",
        "type": "use the ':type expr' command in the REPL to see a "
                "static type",
        "list": "arrays are written as literals like [1, 2, 3] or built "
                "with array(length, value)",
        "dict": "dicts are written as literals like {\"a\": 1} or "
                "declared: 'scores {string: int} = {}'",
    }

    def _unknown_function_hint(self, name: str) -> str:
        """A did-you-mean tail for an unknown function name: close matches
        among user functions/classes/builtins, plus the Tetra idiom when
        the name is a well-known Python builtin."""
        import difflib

        known = sorted(
            set(self.symbols.functions)
            | set(self.symbols.classes)
            | set(self.builtins)
        )
        matches = difflib.get_close_matches(name, known, n=3, cutoff=0.6)
        hint = ""
        if matches:
            quoted = ", ".join(f"'{m}'" for m in matches)
            hint += f"; did you mean {quoted}?"
        idiom = self._PYTHON_IDIOM_HINTS.get(name)
        if idiom:
            hint += f" ({idiom})"
        return hint

    def _check_user_call(self, expr: Call, sig: FunctionSignature,
                         arg_types: list[Type]) -> Type:
        if len(arg_types) != len(sig.param_types):
            self._err(
                f"'{sig.name}' takes {len(sig.param_types)} argument(s) "
                f"but {len(arg_types)} were given",
                expr,
            )
            return sig.return_type
        for i, (got, want) in enumerate(zip(arg_types, sig.param_types)):
            if _is_error(got):
                continue
            if not is_assignable(want, got):
                self._err(
                    f"argument {i + 1} of '{sig.name}' must be a {want}, "
                    f"not a {got}",
                    expr.args[i],
                )
        return sig.return_type

    def _check_constructor(self, expr: Call, info: ClassInfo,
                           arg_types: list[Type]) -> Type:
        if len(arg_types) != len(info.field_types):
            self._err(
                f"'{info.name}' has {len(info.field_types)} field(s); the "
                f"constructor takes them in declaration order "
                f"({', '.join(info.field_names) or 'none'})",
                expr,
            )
            return ClassType(info.name)
        for i, (want, got) in enumerate(zip(info.field_types, arg_types)):
            if _is_error(got):
                continue
            if not is_assignable(want, got):
                self._err(
                    f"field '{info.field_names[i]}' of '{info.name}' is a "
                    f"{want}, not a {got}",
                    expr.args[i],
                )
        return ClassType(info.name)

    def _expr_Attribute(self, expr: Attribute) -> Type:
        base_ty = self.check_expr(expr.base)
        if _is_error(base_ty):
            return ERROR
        if not isinstance(base_ty, ClassType):
            return self._err(
                f"a {base_ty} has no fields ('.{expr.attr}' needs a class "
                "instance)",
                expr,
            )
        info = self.symbols.classes.get(base_ty.name)
        if info is None:
            return ERROR  # unknown class already diagnosed
        field_ty = info.field_type(expr.attr)
        if field_ty is None:
            hint = (" (did you mean to call it?)"
                    if expr.attr in info.methods else "")
            return self._err(
                f"class '{base_ty.name}' has no field '{expr.attr}'{hint}",
                expr,
            )
        return field_ty

    def _expr_MethodCall(self, expr: MethodCall) -> Type:
        base_ty = self.check_expr(expr.base)
        arg_types = [self.check_expr(a) for a in expr.args]
        if _is_error(base_ty):
            return ERROR
        if not isinstance(base_ty, ClassType):
            return self._err(
                f"a {base_ty} has no methods ('.{expr.method}()' needs a "
                "class instance)",
                expr,
            )
        info = self.symbols.classes.get(base_ty.name)
        if info is None:
            return ERROR
        sig = info.methods.get(expr.method)
        if sig is None:
            hint = (" (fields are read without parentheses)"
                    if info.field_type(expr.method) is not None else "")
            return self._err(
                f"class '{base_ty.name}' has no method '{expr.method}'{hint}",
                expr,
            )
        expected = sig.param_types[1:]
        if len(arg_types) != len(expected):
            self._err(
                f"'{sig.name}' takes {len(expected)} argument(s) but "
                f"{len(arg_types)} were given",
                expr,
            )
            return sig.return_type
        for i, (want, got) in enumerate(zip(expected, arg_types)):
            if _is_error(got):
                continue
            if not is_assignable(want, got):
                self._err(
                    f"argument {i + 1} of '{sig.name}' must be a {want}, "
                    f"not a {got}",
                    expr.args[i],
                )
        return sig.return_type

    def _expr_Unary(self, expr: Unary) -> Type:
        operand = self.check_expr(expr.operand)
        if isinstance(operand, ErrorType):
            return ERROR
        if expr.op is UnaryOp.NOT:
            if not isinstance(operand, BoolType):
                return self._err(f"'not' needs a bool, not a {operand}", expr)
            return BOOL
        if not operand.is_numeric:
            return self._err(
                f"unary '{expr.op.value}' needs a number, not a {operand}", expr
            )
        return operand

    def _expr_BinOp(self, expr: BinOp) -> Type:
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        if _is_error(left, right):
            return ERROR
        return self._binop_result(expr.op, left, right, expr)

    def _binop_result(self, op: BinaryOp, left: Type, right: Type, node) -> Type:
        if op.is_logical:
            if isinstance(left, BoolType) and isinstance(right, BoolType):
                return BOOL
            return self._err(
                f"'{op.value}' needs bool operands, got {left} and {right}", node
            )
        if op.is_comparison:
            return self._comparison_result(op, left, right, node)
        # Arithmetic
        if op is BinaryOp.ADD and isinstance(left, StringType) and isinstance(right, StringType):
            return STRING
        joined = numeric_join(left, right)
        if joined is None:
            extra = ""
            if op is BinaryOp.ADD and (isinstance(left, StringType) or isinstance(right, StringType)):
                extra = " (use str() to build strings from other values)"
            return self._err(
                f"'{op.value}' cannot combine {left} and {right}{extra}", node
            )
        if op is BinaryOp.POW:
            return joined
        return joined

    def _comparison_result(self, op: BinaryOp, left: Type, right: Type, node) -> Type:
        if numeric_join(left, right) is not None:
            return BOOL
        if op in (BinaryOp.EQ, BinaryOp.NE):
            if left == right:
                return BOOL
            return self._err(
                f"'{op.value}' cannot compare a {left} with a {right}", node
            )
        if isinstance(left, StringType) and isinstance(right, StringType):
            return BOOL
        return self._err(
            f"'{op.value}' cannot order a {left} against a {right}", node
        )


def check_program(program: Program, source: SourceFile | None = None,
                  builtins=None) -> ProgramSymbols:
    """Type-check ``program``; raise the first diagnostic on failure."""
    checker = TypeChecker(program, source, builtins)
    symbols = checker.run()
    if checker.errors:
        raise checker.errors[0]
    return symbols


def collect_diagnostics(program: Program, source: SourceFile | None = None,
                        builtins=None) -> list[TetraTypeError]:
    """Type-check and return *all* diagnostics (the ``tetra check`` command)."""
    checker = TypeChecker(program, source, builtins)
    checker.run()
    return checker.errors
