"""Semantic types for Tetra.

The paper's type system: ``int``, ``real``, ``string``, ``bool``, arrays of
these (including multi-dimensional), and ``void`` for functions that return
nothing.  Types are interned singletons where possible so identity
comparison works, but ``==`` is structural (arrays compare by element type).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tetra_ast import (
    ArrayTypeExpr,
    ClassTypeExpr,
    DictTypeExpr,
    PrimitiveTypeExpr,
    TupleTypeExpr,
    TypeExpr,
)


@dataclass(frozen=True)
class Type:
    """Base class of all semantic types."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return "type"

    @property
    def is_numeric(self) -> bool:
        return isinstance(self, (IntType, RealType))


@dataclass(frozen=True)
class IntType(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class RealType(Type):
    def __str__(self) -> str:
        return "real"


@dataclass(frozen=True)
class StringType(Type):
    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class VoidType(Type):
    """The 'returns nothing' type of a function without a return annotation."""

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class DictType(Type):
    """Associative arrays ``{K: V}`` (the paper's future-work type).

    Keys are restricted to ``int`` and ``string`` — the hashable primitives
    with unsurprising equality; reals make treacherous keys and arrays are
    mutable.
    """

    key: Type
    value: Type

    def __str__(self) -> str:
        return f"{{{self.key}: {self.value}}}"


@dataclass(frozen=True)
class TupleType(Type):
    """Fixed-arity heterogeneous tuples ``(T1, T2, ...)`` (future work).

    Tuples are immutable values; elements are read with constant indexes
    or by destructuring (``a, b = pair``).
    """

    elements: tuple[Type, ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(t) for t in self.elements) + ")"


@dataclass(frozen=True)
class ClassType(Type):
    """A user-defined class, compared nominally by name (future work).

    Field and method information lives in the program's
    :class:`~repro.types.symbols.ClassInfo` table, not in the type itself,
    so types stay tiny hashable values.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type

    def __str__(self) -> str:
        return f"[{self.element}]"

    @property
    def rank(self) -> int:
        """Number of array dimensions (``[[int]]`` has rank 2)."""
        inner = self.element
        depth = 1
        while isinstance(inner, ArrayType):
            inner = inner.element
            depth += 1
        return depth


#: Interned singletons for the primitive types.
INT = IntType()
REAL = RealType()
STRING = StringType()
BOOL = BoolType()
VOID = VoidType()

_PRIMITIVES = {"int": INT, "real": REAL, "string": STRING, "bool": BOOL}


#: Types allowed as dict keys.
VALID_KEY_TYPES = (IntType, StringType)


def from_type_expr(expr: TypeExpr) -> Type:
    """Resolve a syntactic type annotation to a semantic type."""
    if isinstance(expr, PrimitiveTypeExpr):
        return _PRIMITIVES[expr.name]
    if isinstance(expr, ArrayTypeExpr):
        return ArrayType(from_type_expr(expr.element))
    if isinstance(expr, DictTypeExpr):
        return DictType(from_type_expr(expr.key), from_type_expr(expr.value))
    if isinstance(expr, TupleTypeExpr):
        return TupleType(tuple(from_type_expr(e) for e in expr.elements))
    if isinstance(expr, ClassTypeExpr):
        return ClassType(expr.name)
    raise TypeError(f"unknown type expression {expr!r}")


def is_assignable(target: Type, value: Type) -> bool:
    """Can a value of type ``value`` be stored where ``target`` is expected?

    Exact match, plus the single implicit widening ``int -> real`` (the
    conventional numeric-promotion rule; narrowing requires the explicit
    ``int()`` builtin).  Arrays are invariant: ``[int]`` is *not* assignable
    to ``[real]`` — element writes through the alias would corrupt it.
    """
    if target == value:
        return True
    if isinstance(target, RealType) and isinstance(value, IntType):
        return True
    # Tuples are immutable, so element-wise widening is sound (covariance
    # cannot be observed through a write the way it could for arrays).
    if (isinstance(target, TupleType) and isinstance(value, TupleType)
            and len(target.elements) == len(value.elements)):
        return all(
            is_assignable(t, v)
            for t, v in zip(target.elements, value.elements)
        )
    return False


def numeric_join(a: Type, b: Type) -> Type | None:
    """Result type of arithmetic between ``a`` and ``b`` (None if invalid)."""
    if not (a.is_numeric and b.is_numeric):
        return None
    if isinstance(a, RealType) or isinstance(b, RealType):
        return REAL
    return INT


def element_of(t: Type) -> Type | None:
    """Element type when iterating or indexing ``t`` (None if not iterable).

    Arrays yield their element; strings yield length-1 strings, which makes
    ``for ch in s`` work — a small extension from the paper's future-work
    string library.
    """
    if isinstance(t, ArrayType):
        return t.element
    if isinstance(t, StringType):
        return STRING
    if isinstance(t, DictType):
        return t.key  # iterating a dict yields its keys, in sorted order
    return None
