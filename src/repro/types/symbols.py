"""Symbol tables for the type checker.

Two kinds of symbols exist at the type level:

* **Function signatures** — global, gathered in a first pass so functions
  can call each other regardless of definition order (Figure I calls
  ``fact`` before its own ``main``).
* **Local variables** — per function, created by flow-based inference: the
  first assignment a top-down traversal encounters fixes the type (the
  paper: "a simple flow-based algorithm suffices").

Lock names form a third namespace but carry no type information, so the
checker only records them for tooling (the debugger lists known locks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..source import NO_SPAN, Span
from .types import Type


@dataclass(frozen=True)
class FunctionSignature:
    """The type-level view of a user-defined function."""

    name: str
    param_names: tuple[str, ...]
    param_types: tuple[Type, ...]
    return_type: Type
    span: Span = NO_SPAN

    def __str__(self) -> str:
        params = ", ".join(f"{n} {t}" for n, t in zip(self.param_names, self.param_types))
        return f"def {self.name}({params}) {self.return_type}"


@dataclass
class VariableInfo:
    """A local variable's inferred type and where it was first assigned."""

    name: str
    type: Type
    first_assigned: Span = NO_SPAN
    is_parameter: bool = False
    #: Induction variables of ``parallel for`` are thread-private at runtime;
    #: the checker marks them so tooling can display them distinctly.
    is_induction: bool = False


class LocalScope:
    """Flat, function-wide variable scope (Tetra has no block scoping,
    matching Python's rule that beginners already know)."""

    def __init__(self) -> None:
        self._vars: dict[str, VariableInfo] = {}

    def define(self, info: VariableInfo) -> None:
        self._vars[info.name] = info

    def lookup(self, name: str) -> VariableInfo | None:
        return self._vars.get(name)

    def names(self) -> list[str]:
        return sorted(self._vars)

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def snapshot(self) -> dict[str, Type]:
        """Name → type map (used by the debugger's variable pane)."""
        return {name: info.type for name, info in self._vars.items()}


@dataclass
class ClassInfo:
    """Everything the checker learned about one class."""

    name: str
    field_names: tuple[str, ...]
    field_types: tuple[Type, ...]
    #: Method name → signature.  ``param_names[0]`` is always the implicit
    #: ``self`` (of the class type); call sites pass the remaining params.
    methods: dict[str, FunctionSignature] = field(default_factory=dict)
    span: Span = NO_SPAN

    def field_type(self, name: str) -> Type | None:
        try:
            return self.field_types[self.field_names.index(name)]
        except ValueError:
            return None

    def __str__(self) -> str:
        fields = ", ".join(
            f"{n} {t}" for n, t in zip(self.field_names, self.field_types)
        )
        return f"class {self.name}({fields})"


@dataclass
class ProgramSymbols:
    """Everything the checker learned about a program; attached to the
    :class:`~repro.tetra_ast.Program` as ``program.symbols`` and consumed by
    the interpreter, compiler, and IDE."""

    functions: dict[str, FunctionSignature] = field(default_factory=dict)
    classes: dict[str, "ClassInfo"] = field(default_factory=dict)
    locals: dict[str, LocalScope] = field(default_factory=dict)
    lock_names: set[str] = field(default_factory=set)

    def scope_of(self, function_name: str) -> LocalScope:
        return self.locals[function_name]
