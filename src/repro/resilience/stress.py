"""``tetra stress`` — shake a program across many seeds and backends.

One quiet run tells a student almost nothing about a parallel program:
the bug they shipped needs an *unlucky schedule*.  The stress harness
manufactures unlucky schedules on purpose.  For every ``(backend, seed)``
cell it runs the program once under a seeded
:class:`~repro.resilience.FaultPlan` (plus the race detector), then
compares outputs across the whole matrix:

* **divergent output** — the program printed different things under
  different schedules, the clearest possible evidence of a race;
* **deadlock** — a seed found a lock-ordering cycle;
* **races** — the dynamic detector flagged unsynchronized shared access;
* **limit / error** — a seed drove the program into a guardrail or crash.

On the deterministic backends (coop, sim) each cell is an exact function
of its seed: re-running ``tetra stress --seeds N --backends coop`` with
the same seeds reproduces the same findings byte for byte, so a failing
seed is a *repro recipe*, not a flake.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field


@dataclass
class StressOutcome:
    """One (backend, seed) cell of the stress matrix."""

    backend: str
    seed: int
    output: str = ""
    #: "ok", "deadlock", "cancelled", "time", "memory", "steps",
    #: "recursion", or "error".
    status: str = "ok"
    races: int = 0
    faults_injected: int = 0
    error: str = ""
    #: Path of the persisted schedule artifact for this cell (recorded
    #: when ``run_stress(..., artifact_dir=...)`` and the cell failed or
    #: produced a divergent output).
    schedule_path: str = ""

    @property
    def clean(self) -> bool:
        return self.status == "ok" and self.races == 0


@dataclass
class StressReport:
    """Everything ``run_stress`` learned, plus a findings summary."""

    name: str
    outcomes: list[StressOutcome] = field(default_factory=list)
    #: Distinct outputs produced by runs that completed, with the cells
    #: that produced each (insertion-ordered: first seen first).
    output_groups: dict[str, list[StressOutcome]] = field(default_factory=dict)

    # -- findings ------------------------------------------------------
    @property
    def divergent(self) -> bool:
        return len(self.output_groups) > 1

    @property
    def deadlocks(self) -> list[StressOutcome]:
        return [o for o in self.outcomes if o.status == "deadlock"]

    @property
    def race_hits(self) -> list[StressOutcome]:
        return [o for o in self.outcomes if o.races > 0]

    @property
    def errors(self) -> list[StressOutcome]:
        return [o for o in self.outcomes
                if o.status not in ("ok", "deadlock")]

    @property
    def findings(self) -> int:
        """Count of distinct problem classes observed (0 = clean)."""
        return ((1 if self.divergent else 0)
                + (1 if self.deadlocks else 0)
                + (1 if self.race_hits else 0)
                + (1 if self.errors else 0))

    def render(self) -> str:
        """Human-readable report for the CLI."""
        lines = [f"stress: {self.name} — {len(self.outcomes)} runs"]
        header = f"  {'backend':<12} {'seed':>6}  {'status':<10} " \
                 f"{'races':>5} {'faults':>6}"
        lines.append(header)
        for o in self.outcomes:
            lines.append(
                f"  {o.backend:<12} {o.seed:>6}  {o.status:<10} "
                f"{o.races:>5} {o.faults_injected:>6}"
            )
        lines.append("")
        if self.divergent:
            lines.append(
                f"FINDING: divergent output — {len(self.output_groups)} "
                "distinct outputs across schedules:"
            )
            for i, (text, cells) in enumerate(self.output_groups.items(), 1):
                who = ", ".join(f"{c.backend}/{c.seed}" for c in cells[:4])
                extra = len(cells) - 4
                if extra > 0:
                    who += f" (+{extra} more)"
                shown = text.rstrip("\n") or "<no output>"
                if len(shown) > 120:
                    shown = shown[:117] + "..."
                shown = shown.replace("\n", " | ")
                lines.append(f"  output {i} [{who}]: {shown}")
        if self.deadlocks:
            cells = ", ".join(f"{o.backend}/{o.seed}" for o in self.deadlocks)
            lines.append(f"FINDING: deadlock in {len(self.deadlocks)} "
                         f"run(s): {cells}")
        if self.race_hits:
            cells = ", ".join(f"{o.backend}/{o.seed}" for o in self.race_hits)
            lines.append(f"FINDING: data races in {len(self.race_hits)} "
                         f"run(s): {cells}")
        if self.errors:
            for o in self.errors:
                first = o.error.splitlines()[0] if o.error else o.status
                lines.append(
                    f"FINDING: {o.backend}/{o.seed} failed ({o.status}): "
                    f"{first}"
                )
        if self.findings == 0:
            lines.append("no findings: stable output, no races, "
                         "no deadlocks")
        saved = [o for o in self.outcomes if o.schedule_path]
        if saved:
            lines.append("")
            lines.append("recorded schedules (replay any of them exactly):")
            for o in saved:
                lines.append(f"  tetra replay {o.schedule_path}")
        return "\n".join(lines)


def _artifact_slug(name: str) -> str:
    base = os.path.basename(name)
    base = base.rsplit(".", 1)[0] if "." in base else base
    slug = re.sub(r"[^A-Za-z0-9_-]+", "-", base).strip("-")
    return slug or "program"


def run_stress(text: str, *, name: str = "<string>",
               seeds: int = 10, first_seed: int = 0,
               backends: tuple[str, ...] = ("thread", "coop", "proc"),
               detect_races: bool = True,
               time_limit: float = 0.0,
               inputs: list[str] | None = None,
               entry: str = "main",
               artifact_dir: str | None = None) -> StressReport:
    """Run ``text`` across ``seeds`` chaos seeds on each backend.

    Every cell uses ``chaos_seed = first_seed + i`` and (by default) the
    race detector; a per-run ``time_limit`` guards against seeds that
    drive the program into a livelock.  Nothing raises: each cell's fate
    lands in its :class:`StressOutcome`.

    With ``artifact_dir`` every cell runs under a schedule recorder, and
    the cells worth keeping — every failing cell (non-ok status or
    observed races) plus one representative per distinct output when the
    outputs diverge — are persisted as ``tetra-schedule/1`` artifacts in
    that directory; each kept cell's :attr:`StressOutcome.schedule_path`
    points at its file, and the rendered report prints the matching
    ``tetra replay`` commands.  A failing seed stops being a story about
    chance and becomes a file you can hand in.
    """
    from ..api import run_source

    report = StressReport(name)
    artifacts: dict[tuple[str, int], dict] = {}
    for backend in backends:
        for i in range(seeds):
            seed = first_seed + i
            limit = time_limit
            if not limit:
                # Virtual clocks need a virtual budget; hosts get seconds.
                limit = 200_000.0 if backend in ("coop", "sim") else 10.0
            # Race detection pins proc runs to the in-process thread path
            # (per-statement instrumentation can't cross processes), so the
            # proc column runs without it — its job is shaking the offload,
            # merge, and chunk-order machinery; races are the thread and
            # coop columns' job.
            races = detect_races and backend != "proc"
            result = run_source(
                text, inputs=list(inputs or []), backend=backend,
                name=name, entry=entry, detect_races=races,
                chaos_seed=seed, time_limit=limit, on_error="return",
                record_schedule=artifact_dir is not None,
            )
            outcome = StressOutcome(
                backend=backend, seed=seed, output=result.output,
                status=result.aborted_by or "ok",
                races=len(result.races),
                faults_injected=sum(result.fault_counts.values()),
            )
            if result.error is not None:
                outcome.error = str(
                    getattr(result.error, "message", result.error)
                )
            report.outcomes.append(outcome)
            if outcome.status == "ok":
                report.output_groups.setdefault(
                    outcome.output, []
                ).append(outcome)
            if result.schedule is not None:
                artifacts[(backend, seed)] = result.schedule
    if artifact_dir is not None:
        _persist_artifacts(report, artifacts, artifact_dir)
    return report


def _persist_artifacts(report: StressReport,
                       artifacts: dict[tuple[str, int], dict],
                       artifact_dir: str) -> None:
    """Write the schedules worth keeping (see :func:`run_stress`)."""
    from ..runtime.schedule import save_schedule

    keep: list[StressOutcome] = [
        o for o in report.outcomes if not o.clean
    ]
    if report.divergent:
        for cells in report.output_groups.values():
            first = cells[0]
            if first not in keep:
                keep.append(first)
    if not keep:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    slug = _artifact_slug(report.name)
    for outcome in keep:
        artifact = artifacts.get((outcome.backend, outcome.seed))
        if artifact is None:
            continue
        path = os.path.join(
            artifact_dir,
            f"{slug}-{outcome.backend}-seed{outcome.seed}.schedule.json",
        )
        save_schedule(artifact, path)
        outcome.schedule_path = path
