"""Execution resilience: guardrails, clean cancellation, fault injection.

Tetra exists to run beginner-written parallel programs, and beginner code
hangs, recurses forever, deadlocks real threads, and leaks races that only
appear under unlucky schedules.  This package is the runtime's answer
(DESIGN.md §6f), in three pillars:

* **Guardrails** — :class:`ExecutionGuard` enforces the wall-clock
  ``time_limit`` (virtual units on the sim/coop backends, monotonic host
  seconds on thread/sequential), the value-heap ``memory_limit`` (via
  :class:`HeapMeter`), and a cooperative :class:`CancelToken`, all checked
  at the statement boundary the backends already use as their scheduling
  point.  Disabled guards cost nothing: the interpreter and the compiled
  fast path bind the check only when a guard is configured — the same
  one-``None``-check contract as the race detector and the Observer.

* **Clean cancellation** — :class:`CancelToken` plus
  :func:`install_sigint`: Ctrl-C and the IDE/debugger stop button set the
  token, every thread unwinds with a
  :class:`~repro.errors.TetraCancelledError` at its next statement, the
  backends join their children, and partial traces/metrics still come out.

* **Fault injection** — a seeded :class:`FaultPlan` (preemption jitter on
  real threads, schedule-perturbation seeds on the deterministic backends,
  injected lock-acquire delays, optional injected thread faults) and the
  :func:`run_stress` harness behind ``tetra stress``, which shakes a
  program across N seeds × backends and reports divergent outputs,
  deadlocks, and race-detector hits in one table.
"""

from .cancel import CancelToken, install_sigint
from .faults import FaultPlan, FaultRecord
from .guard import ExecutionGuard, HeapMeter

__all__ = [
    "CancelToken",
    "ExecutionGuard",
    "FaultPlan",
    "FaultRecord",
    "HeapMeter",
    "install_sigint",
    "run_stress",
    "StressOutcome",
    "StressReport",
]


def __getattr__(name):
    # The stress harness imports repro.api (which imports the runtime);
    # loading it lazily keeps this package importable from the backends.
    if name in ("run_stress", "StressOutcome", "StressReport"):
        from . import stress

        return getattr(stress, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
