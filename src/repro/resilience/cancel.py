"""Cooperative cancellation for Tetra runs.

A :class:`CancelToken` is shared between whoever wants to stop a run (a
SIGINT handler, an IDE stop button, a watchdog thread, a test) and the
interpreter, which observes it at every statement boundary through the
:class:`~repro.resilience.guard.ExecutionGuard`.  Cancellation is therefore
*clean*: every Tetra thread unwinds through the normal error path, parallel
blocks join their children, backends run their ``finish_program`` hooks,
and partial output/traces/metrics survive the abort.
"""

from __future__ import annotations

import contextlib
import signal
import threading


class CancelToken:
    """A one-shot, thread-safe "please stop" flag with a reason.

    The first :meth:`cancel` wins; later calls keep the original reason so
    diagnostics stay stable when several sources race to stop the program.
    """

    __slots__ = ("_event", "_mu", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._mu = threading.Lock()
        self.reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Ask every thread of the run to stop at its next statement."""
        with self._mu:
            if self.reason is None:
                self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancelled (watchdog threads use this)."""
        return self._event.wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"cancelled: {self.reason!r}" if self.cancelled else "armed"
        return f"<CancelToken {state}>"


@contextlib.contextmanager
def install_sigint(token: CancelToken, reason: str = "interrupted (Ctrl-C)"):
    """Route SIGINT into ``token`` for the duration of a run.

    The first Ctrl-C cancels the token — the program unwinds cleanly and
    partial reports are still printed.  A second Ctrl-C falls through to
    the previous handler (normally ``KeyboardInterrupt``), so a run whose
    cleanup itself wedges can still be killed.  Installing a handler is
    only legal in the main thread; anywhere else this is a no-op and the
    caller must cancel the token itself.
    """
    if threading.current_thread() is not threading.main_thread():
        yield token
        return
    previous = signal.getsignal(signal.SIGINT)

    def handler(signum, frame):
        if token.cancelled:
            # Second Ctrl-C: the user really means it.
            signal.signal(signal.SIGINT, previous)
            if callable(previous):
                previous(signum, frame)
            return
        token.cancel(reason)

    signal.signal(signal.SIGINT, handler)
    try:
        yield token
    finally:
        signal.signal(signal.SIGINT, previous)
