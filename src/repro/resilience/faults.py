"""Seeded fault injection — the chaos half of the resilience layer.

A :class:`FaultPlan` perturbs one run in ways that shake out
schedule-dependent bugs without changing program semantics:

* **Preemption jitter** (thread backend): at statement boundaries a thread
  occasionally sleeps for a sub-millisecond beat, forcing the OS scheduler
  into interleavings a quiet machine would never produce.
* **Schedule perturbation** (coop): the plan's seed drives a
  :class:`~repro.runtime.coop.RandomPolicy`, so each seed is one exact,
  replayable interleaving.
* **Spawn-order perturbation** (sim and sequential backends): the children
  of each ``parallel`` / ``parallel for`` group run in a seeded shuffle of
  program order — a deterministic way to flip order-dependent results.
* **Lock-acquire delays** (thread backend): a seeded sleep before entering
  a contended lock widens race windows around critical sections.
* **Injected thread faults** (optional, off by default): a spawned child
  occasionally dies at birth with a :class:`ChaosFault`, exercising the
  error-aggregation paths a robust runtime must keep working.

Determinism contract: on the virtual-clock backends (coop, sim) every RNG
stream is consumed in a deterministic order, so the same seed produces the
same fault schedule — and therefore byte-identical runs.  On the thread
backend the perturbations are seeded per thread *label* (stable across
runs) but the OS interleaving remains genuinely nondeterministic; that is
the point of running many seeds.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..errors import TetraThreadError


class ChaosFault(TetraThreadError):
    """A deliberately injected thread failure (``thread_fault_prob > 0``)."""

    phase = "injected fault"


@dataclass(frozen=True)
class FaultRecord:
    """One fault the plan actually injected (surfaced on RunResult.faults)."""

    kind: str    #: "preempt" | "lock-delay" | "spawn-shuffle" | "thread-fault"
    where: str   #: thread label or lock name
    detail: str


#: Cap on detailed fault records kept per run; beyond it only the counters
#: grow (a chaotic hot loop can fire tens of thousands of preemptions).
MAX_RECORDS = 200


class FaultPlan:
    """One seeded chaos schedule, shared by every thread of a run."""

    def __init__(self, seed: int, *,
                 preempt_prob: float = 0.1,
                 max_preempt_ms: float = 1.0,
                 lock_delay_prob: float = 0.25,
                 max_lock_delay_ms: float = 1.0,
                 thread_fault_prob: float = 0.0):
        self.seed = int(seed)
        self.preempt_prob = preempt_prob
        self.max_preempt_ms = max_preempt_ms
        self.lock_delay_prob = lock_delay_prob
        self.max_lock_delay_ms = max_lock_delay_ms
        self.thread_fault_prob = thread_fault_prob
        self._mu = threading.Lock()
        #: Consumed only at spawn points, which execute in the spawner —
        #: single-threaded and in program order on the deterministic
        #: backends — so its draws are a pure function of the seed.
        self._spawn_rng = random.Random(f"tetra-spawn:{self.seed}")
        self._thread_rngs: dict[str, random.Random] = {}
        self.records: list[FaultRecord] = []
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def schedule_seed(self) -> int:
        """Seed for the coop backend's RandomPolicy (one seed = one exact
        interleaving)."""
        return self.seed

    def _rng_for(self, label: str) -> random.Random:
        """Per-thread RNG stream, keyed by the stable thread label so the
        thread backend's draws don't depend on process-global ctx ids."""
        with self._mu:
            rng = self._thread_rngs.get(label)
            if rng is None:
                rng = random.Random(f"tetra-thread:{self.seed}:{label}")
                self._thread_rngs[label] = rng
            return rng

    def _note(self, kind: str, where: str, detail: str) -> None:
        with self._mu:
            self.counts[kind] = self.counts.get(kind, 0) + 1
            if len(self.records) < MAX_RECORDS:
                self.records.append(FaultRecord(kind, where, detail))

    @property
    def total_injected(self) -> int:
        with self._mu:
            return sum(self.counts.values())

    # ------------------------------------------------------------------
    # Injection points (each called from exactly one backend/guard site)
    # ------------------------------------------------------------------
    def maybe_preempt(self, ctx) -> None:
        """Statement-boundary jitter on the thread backend (via the guard)."""
        rng = self._rng_for(ctx.label)
        if rng.random() < self.preempt_prob:
            pause = rng.random() * self.max_preempt_ms / 1000.0
            self._note("preempt", ctx.label, f"slept {pause * 1e6:.0f}us")
            time.sleep(pause)

    def lock_delay(self, ctx, name: str) -> None:
        """Seeded sleep before a thread-backend lock acquire."""
        rng = self._rng_for(ctx.label)
        if rng.random() < self.lock_delay_prob:
            pause = rng.random() * self.max_lock_delay_ms / 1000.0
            self._note("lock-delay", f"lock {name}",
                       f"{ctx.label} delayed {pause * 1e6:.0f}us")
            time.sleep(pause)

    def perturb_jobs(self, jobs: list) -> list:
        """Deterministically shuffle a spawn group's children (sim and
        sequential backends, where children run in list order)."""
        if len(jobs) < 2:
            return list(jobs)
        shuffled = list(jobs)
        self._spawn_rng.shuffle(shuffled)
        if any(s is not j for s, j in zip(shuffled, jobs)):
            self._note("spawn-shuffle", "spawn group",
                       f"reordered {len(jobs)} children")
        return shuffled

    def wrap_jobs(self, jobs: list) -> list:
        """Optionally replace some child thunks with an immediate
        :class:`ChaosFault` (``thread_fault_prob > 0`` only).  Each draw is
        a pure function of (seed, child label) — not of a shared stream —
        so the same threads die no matter which backend runs the program or
        how its spawns interleave; that is what lets a schedule replay
        re-inject exactly the recorded faults."""
        if not self.thread_fault_prob:
            return jobs
        wrapped = []
        for child_ctx, thunk in jobs:
            draw = random.Random(
                f"tetra-fault:{self.seed}:{child_ctx.label}"
            ).random()
            if draw < self.thread_fault_prob:
                self._note("thread-fault", child_ctx.label, "injected crash")

                def fail(label=child_ctx.label):
                    raise ChaosFault(
                        f"chaos: injected fault in {label} "
                        f"(seed {self.seed})"
                    )

                wrapped.append((child_ctx, fail))
            else:
                wrapped.append((child_ctx, thunk))
        return wrapped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan seed={self.seed} injected={self.total_injected}>"
