"""Execution guardrails checked at the statement boundary.

The interpreter already owns a per-statement hook chain (stop flag, step
budget, backend checkpoint, profiler).  :class:`ExecutionGuard` slots into
it with the run-wide limits that need a *clock* or a *token*: wall-clock
``time_limit`` (the backend's own clock, so sim/coop budgets are virtual
units and fully deterministic), the cooperative :class:`CancelToken`, and
thread-backend preemption jitter from a :class:`FaultPlan`.

The value-heap ``memory_limit`` lives in :class:`HeapMeter`, checked at
container *allocation* sites instead of per statement — live cells are
tracked with weakref finalizers, so CPython's prompt refcounting keeps the
meter honest when a program drops a large array.

Both follow the zero-cost-when-disabled contract (the same one the race
detector and Observer use): when no guard is configured the interpreter
binds ``None`` and the fast path compiles the check out entirely.
"""

from __future__ import annotations

import threading
import weakref

from ..errors import TetraCancelledError, TetraLimitError
from ..source import NO_SPAN, Span

#: Output charged per heap cell when ``memory_limit`` is set without an
#: explicit ``output_limit``: the interpreter then caps captured output at
#: ``memory_limit * OUTPUT_CHARS_PER_CELL`` characters, so a print loop
#: cannot grow the console buffer past (roughly) the value-heap budget.
OUTPUT_CHARS_PER_CELL = 64


class HeapMeter:
    """Counts live Tetra value-heap cells against ``memory_limit``.

    A *cell* is one element of a container the program allocates: an array
    or dict element, a tuple item, an object field.  Primitives ride inside
    cells and are not counted separately.  Each tracked container carries a
    weakref finalizer that returns its cells when the container dies, so
    the meter follows the live heap, not cumulative allocation.
    """

    __slots__ = ("limit", "live", "peak", "_mu")

    def __init__(self, limit: int):
        self.limit = int(limit)
        self.live = 0
        self.peak = 0
        self._mu = threading.Lock()

    def track(self, container, cells: int, span: Span = NO_SPAN) -> None:
        """Charge ``cells`` for a freshly allocated container (min 1)."""
        cells = max(1, int(cells))
        with self._mu:
            self.live += cells
            if self.live > self.peak:
                self.peak = self.live
            over = self.live > self.limit
        weakref.finalize(container, self._free, cells)
        if over:
            raise TetraLimitError(
                f"the program exceeded its memory budget of {self.limit} "
                f"value cells (live: {self.live}) — raise it with "
                "--memory-limit or RuntimeConfig(memory_limit=...)",
                span,
                limit="memory",
            )

    def _free(self, cells: int) -> None:
        with self._mu:
            self.live -= cells

    def track_value(self, value, span: Span = NO_SPAN) -> None:
        """Charge for a container a *builtin* returned (the literal and
        constructor sites know their cell counts; builtins like
        ``array_of`` or ``concat`` are charged here by inspection)."""
        from ..runtime.values import (
            TetraArray,
            TetraDict,
            TetraObject,
            TetraTuple,
        )

        if isinstance(value, (TetraArray, TetraTuple, TetraDict)):
            self.track(value, len(value.items), span)
        elif isinstance(value, TetraObject):
            self.track(value, len(value.fields), span)


class ExecutionGuard:
    """Per-run guard bound into the statement prologue when any of
    ``time_limit`` / ``cancel`` / thread-backend chaos is configured."""

    __slots__ = ("token", "time_limit", "virtual", "_now", "_deadline",
                 "_preempt")

    def __init__(self, backend, config):
        self.token = config.cancel
        self.time_limit = config.time_limit
        self.virtual = backend.virtual_clock
        self._now = backend.now
        self._deadline: float | None = None
        plan = config.fault_plan
        # Preemption jitter only makes sense where a real OS scheduler can
        # exploit it; the deterministic backends get their chaos from the
        # schedule seed and spawn shuffling instead.  While a schedule is
        # being recorded the turnstile injects the jitter itself, token-free
        # (sleeping here would stall every thread and double-draw the
        # per-thread fault RNG).
        self._preempt = plan if (plan is not None
                                 and config.schedule_recorder is None
                                 and backend.name in ("thread", "proc")) \
            else None

    @property
    def active(self) -> bool:
        """True when the statement-boundary check does anything at all."""
        return (self.token is not None or bool(self.time_limit)
                or self._preempt is not None)

    def start(self) -> None:
        """Arm the deadline at program start (backend clocks may not start
        at zero, so the guard reads its own origin)."""
        if self.time_limit:
            self._deadline = self._now() + self.time_limit

    def check(self, ctx, span: Span) -> None:
        """The statement-boundary check: cancel, deadline, chaos preempt."""
        token = self.token
        if token is not None and token.cancelled:
            raise TetraCancelledError(
                f"the run was cancelled — {token.reason}", span
            )
        deadline = self._deadline
        if deadline is not None and self._now() > deadline:
            units = "virtual time units" if self.virtual else "seconds"
            limit = self.time_limit
            shown = f"{limit:g}"
            raise TetraLimitError(
                f"the program exceeded its time limit of {shown} {units} — "
                "raise it with --time-limit or RuntimeConfig(time_limit=...)",
                span,
                limit="time",
            )
        preempt = self._preempt
        if preempt is not None:
            preempt.maybe_preempt(ctx)
