"""Static determinism analysis: may a run's result be replayed as truth?

The hosted service (``tetra serve``) wants to answer one question before
it caches a result or hands a cached one out: *is this run a pure
function of (source, entry, inputs, config)?*  If it is, every future
request with the same key deserves byte-identical output and the result
can be cached; if it is not — a racy thread-backend schedule, a
``clock()`` read of the host clock — replaying one sampled outcome as
truth would teach a student that their racy program is deterministic.

The analysis is a single AST walk (memoized on the checked ``Program``
as interpreter metadata, so every consumer of a cached tree pays it at
most once) collecting two facts:

* ``uses_clock`` — the program mentions ``clock()`` anywhere.  On a
  host-clock backend (thread / sequential / proc) its value differs
  every run; sim and coop tick deterministic virtual units.
* ``uses_parallel`` — the program contains a ``parallel for``, a
  ``parallel:`` block, or a ``background:`` block anywhere.  On the
  real-thread backends (thread / proc) the OS scheduler picks the
  interleaving; the sim and coop schedulers are deterministic policies.

Both facts deliberately over-approximate (a ``clock()`` call inside dead
code still counts): an over-approximation only costs cache hits, never
correctness.  ``sleep()`` is *not* tracked — it shifts wall time but
never produces a value, so it cannot make output diverge on its own.
Input reads (``read_*``) are deterministic given the request's input
lines, which are part of the cache key.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tetra_ast import Program
from ..tetra_ast.nodes import (
    BackgroundBlock,
    Call,
    Node,
    ParallelBlock,
    ParallelFor,
)

#: Backends whose schedule and clock are pure functions of the request:
#: sim and coop tick virtual time and schedule by a fixed policy.
DETERMINISTIC_BACKENDS = frozenset({"sim", "coop"})

#: Backends where real OS threads pick the interleaving.
THREADED_BACKENDS = frozenset({"thread", "proc"})

#: Builtins whose value depends on when (not what) you ask.
_WALLCLOCK_BUILTINS = frozenset({"clock"})


@dataclass(frozen=True)
class DeterminismInfo:
    """What a program *could* do that makes reruns diverge."""

    uses_clock: bool
    uses_parallel: bool


def _scan(node: Node, found: dict) -> None:
    if isinstance(node, (ParallelFor, ParallelBlock, BackgroundBlock)):
        found["parallel"] = True
    elif isinstance(node, Call) and node.func in _WALLCLOCK_BUILTINS:
        found["clock"] = True
    if found["parallel"] and found["clock"]:
        return  # nothing left to learn
    for child in node.children():
        _scan(child, found)


def determinism_info(program: Program) -> DeterminismInfo:
    """The (memoized) determinism facts for a checked program tree."""
    info = getattr(program, "_determinism", None)
    if info is None:
        found = {"parallel": False, "clock": False}
        _scan(program, found)
        info = DeterminismInfo(uses_clock=found["clock"],
                               uses_parallel=found["parallel"])
        program._determinism = info  # type: ignore[attr-defined]
    return info


def nondeterminism_reason(program: Program, backend: str) -> str | None:
    """``None`` when a run of ``program`` on ``backend`` is a pure
    function of (source, entry, inputs, config) — otherwise a short
    human-readable reason it is not.

    Chaos injection and schedule recording are request-level concerns the
    caller layers on top; this answers only for the program × backend
    pair.
    """
    if backend in DETERMINISTIC_BACKENDS:
        return None
    info = determinism_info(program)
    if info.uses_clock:
        return "the program reads the host clock (clock())"
    if info.uses_parallel and backend in THREADED_BACKENDS:
        return (f"the program spawns threads and the {backend!r} backend's "
                "schedule is picked by the OS")
    return None
