"""Dynamic program analyses over running Tetra programs and their traces.

The first resident is the data-race detector (:mod:`repro.analysis.races`):
vector-clock happens-before plus Eraser-style locksets, fed by the
interpreter's shared read/write events and span-anchored so every report
points at the two source lines that conflict (:mod:`repro.analysis.report`).
The static determinism analysis (:mod:`repro.analysis.determinism`) answers
whether a run may be cached and replayed as truth — the gate behind the
hosted service's result cache.
"""

from .determinism import (
    DeterminismInfo,
    determinism_info,
    nondeterminism_reason,
)
from .races import RaceDetector, replay_trace
from .report import AccessSite, RaceReport, render_race_panel

__all__ = [
    "AccessSite",
    "DeterminismInfo",
    "RaceDetector",
    "RaceReport",
    "determinism_info",
    "nondeterminism_reason",
    "render_race_panel",
    "replay_trace",
]
