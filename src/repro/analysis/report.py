"""Span-anchored race diagnostics.

A race report is deliberately shaped like the rest of Tetra's diagnostics:
it names the shared location, the two threads, and both access sites with
``file:line:column`` positions, and it can render caret snippets for each
site — the paper's promise that subtle parallel bugs get pointed at, not
just hinted at.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..source import SourceFile, Span


@dataclass(frozen=True)
class AccessSite:
    """One side of a racy pair: who touched the location, how, and where."""

    thread: str
    is_write: bool
    span: Span

    @property
    def kind(self) -> str:
        return "write" if self.is_write else "read"

    def where(self, source: SourceFile | None = None) -> str:
        name = source.name if source is not None else "<program>"
        return f"{name}:{self.span.line}:{self.span.column}"


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting accesses to one shared location, unordered by
    fork/join and protected by no common lock."""

    variable: str
    first: AccessSite
    second: AccessSite

    def headline(self, source: SourceFile | None = None) -> str:
        return (
            f"data race on '{self.variable}': "
            f"{self.first.kind} by {self.first.thread} at "
            f"{self.first.where(source)} and "
            f"{self.second.kind} by {self.second.thread} at "
            f"{self.second.where(source)}"
        )

    def describe(self, source: SourceFile | None = None) -> str:
        """Multi-line rendering with a caret snippet per access site."""
        lines = [self.headline(source)]
        for site in (self.first, self.second):
            lines.append(f"  {site.kind} by {site.thread}:")
            if source is not None and site.span.line > 0:
                for snippet_line in source.caret_snippet(site.span).splitlines():
                    lines.append(f"    {snippet_line}")
            else:
                lines.append(f"    at line {site.span.line}")
        return "\n".join(lines)


def render_race_panel(reports: list[RaceReport],
                      source: SourceFile | None = None) -> str:
    """The race panel: what the IDE/CLI shows after a detecting run."""
    if not reports:
        return "race detector: no data races observed on this run"
    count = len(reports)
    noun = "data race" if count == 1 else "data races"
    lines = [f"race detector: {count} {noun} found"]
    for i, report in enumerate(reports, 1):
        body = report.describe(source)
        first, *rest = body.splitlines()
        lines.append(f"[{i}] {first}")
        lines.extend(rest)
    lines.append(
        "these accesses are not ordered by fork/join and share no lock — "
        "the program's result can change from run to run. Guard them with "
        "'lock <name>:' or restructure so only one thread touches the data."
    )
    return "\n".join(lines)
