"""Dynamic data-race detection: vector-clock happens-before + locksets.

The detector watches a running program through five kinds of events —
``fork``/``join`` (parallel structure), ``acquire``/``release`` (named
locks), and ``read``/``write`` (shared-memory accesses) — and flags every
pair of accesses to the same location that

* comes from two different Tetra threads,
* includes at least one write,
* is **not ordered** by the fork/join happens-before relation, and
* holds **no common lock** (Eraser's lockset condition).

Ordering is judged against the program's *logical* concurrency, not the
schedule that happened to run: a ``parallel`` block's children are
concurrent with each other even when a backend executes them one after the
other.  That is what makes detection work — and produce identical reports —
on the sequential, simulator, and deterministic cooperative backends, where
the racy interleaving itself may never occur.  Lock-based exclusion uses
locksets rather than release→acquire edges for the same reason: a race
"hidden" by today's lucky lock timing is still reported.

Locations are identified by object identity (a shared frame's slot, an
object's field, an array/dict element); the detector pins every container
it has seen so CPython cannot recycle an id mid-run.  Per location it keeps
the latest read and write per thread — the FastTrack-style bound that keeps
memory proportional to data touched, not to execution length.

:func:`replay_trace` runs the same engine over a recorded
:class:`~repro.runtime.taskgraph.Task` tree whose items include
:class:`~repro.runtime.taskgraph.Access` events, so archived simulator
traces can be audited for races without re-interpreting the program.
"""

from __future__ import annotations

import threading

from ..source import Span
from .report import AccessSite, RaceReport


class _Access:
    """One remembered access: who, what kind, where, and when (epoch)."""

    __slots__ = ("tid", "is_write", "span", "clock_value", "lockset")

    def __init__(self, tid, is_write: bool, span: Span, clock_value: int,
                 lockset: frozenset):
        self.tid = tid
        self.is_write = is_write
        self.span = span
        self.clock_value = clock_value
        self.lockset = lockset


class _Location:
    """Per-location history: the latest read and write of each thread."""

    __slots__ = ("display", "reads", "writes")

    def __init__(self, display: str):
        self.display = display
        self.reads: dict = {}
        self.writes: dict = {}


class RaceDetector:
    """One program run's worth of happens-before + lockset state.

    Thread-safe: the thread backend delivers events from several OS threads
    at once.  Under the cooperative and sequential backends event order is
    deterministic, so reports are too.
    """

    def __init__(self, max_reports: int = 64):
        self.max_reports = max_reports
        self.reports: list[RaceReport] = []
        self._mutex = threading.Lock()
        #: tid → vector clock (tid → logical time).
        self._clocks: dict = {}
        #: tid → stack of lock names currently held.
        self._locksets: dict = {}
        self._labels: dict = {}
        self._locations: dict = {}
        #: Containers we key by id(); pinned so ids are never recycled.
        self._pins: dict[int, object] = {}
        #: Dedup: one report per unordered pair of source sites.
        self._seen: set = set()

    # -- thread lifecycle ------------------------------------------------
    def register(self, tid, label: str) -> None:
        with self._mutex:
            self._ensure(tid, label)

    def _ensure(self, tid, label: str | None = None) -> dict:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = {tid: 1}
            self._clocks[tid] = clock
            self._locksets[tid] = []
        if label is not None:
            self._labels[tid] = label
        return clock

    def fork(self, parent, child, child_label: str) -> None:
        """The child starts knowing everything the parent did so far; the
        parent's later work is concurrent with the child."""
        with self._mutex:
            parent_clock = self._ensure(parent)
            child_clock = dict(parent_clock)
            child_clock[child] = child_clock.get(child, 0) + 1
            self._clocks[child] = child_clock
            self._locksets[child] = []
            self._labels[child] = child_label
            parent_clock[parent] = parent_clock.get(parent, 0) + 1

    def join(self, parent, child) -> None:
        """After a join the parent has seen everything the child did."""
        with self._mutex:
            parent_clock = self._ensure(parent)
            for tid, value in self._clocks.get(child, {}).items():
                if parent_clock.get(tid, 0) < value:
                    parent_clock[tid] = value
            parent_clock[parent] = parent_clock.get(parent, 0) + 1

    # -- locks -----------------------------------------------------------
    def acquire(self, tid, name: str) -> None:
        with self._mutex:
            self._ensure(tid)
            self._locksets[tid].append(name)

    def release(self, tid, name: str) -> None:
        with self._mutex:
            held = self._locksets.get(tid)
            # Tetra locks are non-reentrant, so a name is held at most once.
            if held is not None and name in held:
                held.remove(name)

    # -- accesses ----------------------------------------------------------
    def mark_shared(self, frame) -> None:
        """Flag a frame as visible to several threads (set at fork time);
        only shared frames' variables generate events."""
        frame.shared = True
        with self._mutex:
            self._pins.setdefault(id(frame), frame)

    def read(self, tid, key, display: str, span: Span, pin=None) -> None:
        self._record(tid, key, display, span, False, pin)

    def write(self, tid, key, display: str, span: Span, pin=None) -> None:
        self._record(tid, key, display, span, True, pin)

    def _record(self, tid, key, display: str, span: Span, is_write: bool,
                pin) -> None:
        with self._mutex:
            if pin is not None:
                self._pins.setdefault(id(pin), pin)
            clock = self._ensure(tid)
            location = self._locations.get(key)
            if location is None:
                location = _Location(display)
                self._locations[key] = location
            access = _Access(tid, is_write, span, clock.get(tid, 0),
                             frozenset(self._locksets[tid]))
            # A read conflicts with foreign writes; a write with everything.
            prior_tables = (location.writes,) if not is_write else (
                location.writes, location.reads)
            for table in prior_tables:
                for other_tid, prior in table.items():
                    if other_tid == tid:
                        continue
                    if prior.clock_value <= clock.get(other_tid, 0):
                        continue  # ordered by fork/join
                    if prior.lockset & access.lockset:
                        continue  # serialized by a common lock
                    self._report(location, prior, access)
            table = location.writes if is_write else location.reads
            table[tid] = access

    def _report(self, location: _Location, first: _Access,
                second: _Access) -> None:
        signature = (location.display, frozenset({
            (first.span.line, first.span.column, first.is_write),
            (second.span.line, second.span.column, second.is_write),
        }))
        if signature in self._seen or len(self.reports) >= self.max_reports:
            return
        self._seen.add(signature)
        self.reports.append(RaceReport(
            variable=location.display,
            first=AccessSite(self._label(first.tid), first.is_write,
                             first.span),
            second=AccessSite(self._label(second.tid), second.is_write,
                              second.span),
        ))

    def _label(self, tid) -> str:
        return self._labels.get(tid, f"thread {tid}")


def replay_trace(root) -> list[RaceReport]:
    """Detect races in a recorded task graph.

    The trace must contain :class:`~repro.runtime.taskgraph.Access` items
    (recorded when the simulator runs with ``detect_races`` on); its
    ``Fork`` structure and ``Acquire``/``Release`` items supply exactly the
    happens-before edges and locksets the live detector uses, so replay
    reproduces the live reports without re-interpreting the program.
    """
    from ..runtime.taskgraph import Access, Acquire, Fork, Release

    detector = RaceDetector()
    detector.register(root.id, root.label)

    def walk(task) -> None:
        for item in task.items:
            if isinstance(item, Access):
                record = detector.write if item.write else detector.read
                record(task.id, item.name, item.name, item.span)
            elif isinstance(item, Acquire):
                detector.acquire(task.id, item.name)
            elif isinstance(item, Release):
                detector.release(task.id, item.name)
            elif isinstance(item, Fork):
                for child in item.children:
                    detector.fork(task.id, child.id, child.label)
                for child in item.children:
                    walk(child)
                if item.join:
                    for child in item.children:
                        detector.join(task.id, child.id)

    walk(root)
    return detector.reports
