"""Source text handling: files, positions, and spans.

Every token and AST node carries a :class:`Span` pointing back into a
:class:`SourceFile`, so that diagnostics (lexer errors, type errors, runtime
panics, debugger views) can show the offending line with a caret — an
explicit design goal for an educational system.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Position:
    """A single point in a source file (1-based line, 1-based column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, ``[start, end)`` by offset.

    ``line``/``column`` always refer to the start of the span.
    """

    start: int
    end: int
    line: int
    column: int

    @staticmethod
    def point(offset: int, line: int, column: int) -> "Span":
        return Span(offset, offset, line, column)

    def merge(self, other: "Span") -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        if other.start < self.start:
            first = other
        else:
            first = self
        return Span(
            min(self.start, other.start),
            max(self.end, other.end),
            first.line,
            first.column,
        )

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


#: Span used for synthesized nodes that have no source location.
NO_SPAN = Span(0, 0, 0, 0)


@dataclass
class SourceFile:
    """A named piece of Tetra source text.

    Lines are indexed lazily; the class is cheap to construct from a string
    (the common path for tests, the REPL, and embedded programs).
    """

    name: str
    text: str
    _line_starts: list[int] = field(default_factory=list, repr=False)

    @staticmethod
    def from_string(text: str, name: str = "<string>") -> "SourceFile":
        return SourceFile(name=name, text=text)

    @staticmethod
    def from_path(path: str) -> "SourceFile":
        with open(path, "r", encoding="utf-8") as handle:
            return SourceFile(name=path, text=handle.read())

    def _ensure_index(self) -> None:
        if self._line_starts:
            return
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    @property
    def line_count(self) -> int:
        self._ensure_index()
        return len(self._line_starts)

    def line_text(self, line: int) -> str:
        """The text of 1-based ``line`` without its trailing newline."""
        self._ensure_index()
        if not 1 <= line <= len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]

    def position_of(self, offset: int) -> Position:
        """Translate a character offset into a line/column position."""
        self._ensure_index()
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return Position(lo + 1, offset - self._line_starts[lo] + 1)

    def caret_snippet(self, span: Span, width: int = 1) -> str:
        """Render the line at ``span`` with a caret underneath.

        Used by :class:`repro.errors.TetraError` to produce compiler-style
        diagnostics::

            3 |     return x * fact(x - 1
              |                          ^
        """
        line = self.line_text(span.line)
        gutter = str(span.line)
        pad = " " * len(gutter)
        caret_width = max(width, span.end - span.start, 1)
        caret = " " * (span.column - 1) + "^" * min(caret_width, max(1, len(line) - span.column + 2))
        return f"{gutter} | {line}\n{pad} | {caret}"
