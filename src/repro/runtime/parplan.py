"""Static eligibility analysis for offloading ``parallel for`` to processes.

The proc backend (:mod:`repro.runtime.proc`) can only ship a loop body to a
worker process when it can *merge the results back* under Tetra's variable
rules (paper §IV: the induction variable is worker-private, everything else
is shared).  Shipping is a snapshot — workers see a frozen copy of the
enclosing frame — so the body must not depend on cross-worker visibility of
shared scalars.  This module decides, per ``parallel for`` node, whether
that holds, and records *what* has to merge back:

* **Reductions** — the one blessed use of shared scalars: a ``lock`` body
  that is exactly ``x += expr`` / ``x -= expr`` (merged by summing each
  worker's delta) or the guarded monotone assignment idiom
  ``if cand < x:`` / ``lock x:`` / ``if cand < x: x = cand`` (merged with
  ``min``; ``>`` merges with ``max``).  These cover the paper's primes
  count, TSP best-tour bound, and Figure 3 maximum.
* **Container edits** — element/field stores (``a[i] = v``, ``obj.f = v``)
  outside locks are allowed; the parent deep-diffs each worker's final
  containers against the originals and applies disjoint changes, raising a
  clear diagnostic when two workers changed the same slot differently.
* Everything else that mutates shared state — bare scalar assignment,
  sequential ``for`` loop variables (which live in the shared frame),
  ``lock`` bodies that don't match a reduction, nested parallel constructs,
  and console *input* — makes the loop ineligible, and the proc backend
  falls back to in-process threads rather than silently racing.

The analysis is purely syntactic over the checked AST (plus the checker's
type annotations for method receivers) and is cached on the ``ParallelFor``
node, so it runs once per program regardless of how often the loop runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tetra_ast import (
    Assign,
    AugAssign,
    Attribute,
    BackgroundBlock,
    BinaryOp,
    BinOp,
    Block,
    Break,
    Call,
    Continue,
    Declare,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    LockStmt,
    MethodCall,
    Name,
    ParallelBlock,
    ParallelFor,
    Pass,
    Program,
    Return,
    Stmt,
    TryStmt,
    Unpack,
    While,
    node_equal,
    walk,
)

#: Builtins that consume console input: the parent's input queue cannot be
#: split across processes without changing which read sees which line.
READ_BUILTINS = frozenset({"read_int", "read_real", "read_string", "read_bool"})

#: Statements that mean "this region manages its own concurrency" — the
#: thread fallback keeps their semantics exactly.
_PARALLEL_STMTS = (ParallelFor, ParallelBlock, BackgroundBlock)


@dataclass
class ParforPlan:
    """What the proc backend learned about one ``parallel for`` loop."""

    ok: bool
    #: Human-readable fallback reason when ``ok`` is False (surfaced in
    #: ``ProcBackend.fallbacks`` and in ``--trace`` output).
    reason: str = ""
    #: Shared scalars merged as reductions: name → "sum" | "min" | "max".
    reductions: dict[str, str] = field(default_factory=dict)
    #: Every variable name the body references (reads *or* writes, minus
    #: the loop's own induction variable): the frozen read-set to ship.
    names: tuple[str, ...] = ()
    #: Names the body assigns outside any lock.  Statically these are only
    #: legal when they resolve to a *private* binding (an enclosing
    #: ``parallel for``'s induction variable); the backend checks that
    #: against the live environment at dispatch time.
    scalar_writes: tuple[str, ...] = ()


def plan_parallel_for(node: ParallelFor, program: Program) -> ParforPlan:
    """Analyze (and cache) the offload plan for one ``parallel for``."""
    plan = getattr(node, "_proc_plan", None)
    if plan is None:
        plan = _analyze(node, program)
        node._proc_plan = plan  # type: ignore[attr-defined]
    return plan


# ----------------------------------------------------------------------
# Reduction pattern matching
# ----------------------------------------------------------------------
def _names_in(expr: Expr) -> set[str]:
    return {n.id for n in walk(expr) if isinstance(n, Name)}


def _match_guarded_minmax(stmt: If) -> tuple[str, str] | None:
    """``if cand < x: x = cand`` → ("x", "min"); ``>`` → "max".

    Accepts either operand order and the non-strict comparators.  The
    write is monotone — it only ever moves ``x`` toward the extreme — so
    each worker's final value is its local extreme and the merge is
    ``min``/``max`` over the initial value and all finals, which is the
    same answer a sequential run computes.
    """
    if stmt.elifs or stmt.orelse or len(stmt.then.statements) != 1:
        return None
    inner = stmt.then.statements[0]
    if not isinstance(inner, Assign) or not isinstance(inner.target, Name):
        return None
    var = inner.target.id
    cond = stmt.cond
    if not isinstance(cond, BinOp):
        return None
    lt = cond.op in (BinaryOp.LT, BinaryOp.LE)
    gt = cond.op in (BinaryOp.GT, BinaryOp.GE)
    if not (lt or gt):
        return None
    if isinstance(cond.right, Name) and cond.right.id == var:
        candidate = cond.left          # cand < var  /  cand > var
        kind = "min" if lt else "max"
    elif isinstance(cond.left, Name) and cond.left.id == var:
        candidate = cond.right         # var > cand  →  var moves down
        kind = "min" if gt else "max"
    else:
        return None
    # The assigned value must be the compared candidate, and must not
    # itself read the reduction variable.
    if not node_equal(inner.value, candidate):
        return None
    if var in _names_in(candidate):
        return None
    return var, kind


def _match_reduction(lock_stmt: LockStmt) -> tuple[str, str] | None:
    """A lock body the merge understands, or None."""
    stmts = lock_stmt.body.statements
    if len(stmts) != 1:
        return None
    s = stmts[0]
    if isinstance(s, AugAssign) and isinstance(s.target, Name):
        if s.op in (BinaryOp.ADD, BinaryOp.SUB):
            # x += expr merges as x0 + Σ(worker deltas) — valid only when
            # expr does not read x (each increment must be independent of
            # the running total).
            if s.target.id not in _names_in(s.value):
                return s.target.id, "sum"
        return None
    if isinstance(s, Assign) and isinstance(s.target, Name) \
            and isinstance(s.value, BinOp):
        # The spelled-out forms: x = x + expr / x = expr + x / x = x - expr.
        name = s.target.id
        op, left, right = s.value.op, s.value.left, s.value.right
        if op == BinaryOp.ADD:
            for this, other in ((left, right), (right, left)):
                if isinstance(this, Name) and this.id == name \
                        and name not in _names_in(other):
                    return name, "sum"
        elif op == BinaryOp.SUB:
            if isinstance(left, Name) and left.id == name \
                    and name not in _names_in(right):
                return name, "sum"
        return None
    if isinstance(s, If):
        return _match_guarded_minmax(s)
    return None


# ----------------------------------------------------------------------
# Body scan
# ----------------------------------------------------------------------
class _Ineligible(Exception):
    def __init__(self, reason: str):
        self.reason = reason


class _Scan:
    def __init__(self, node: ParallelFor, program: Program):
        self.node = node
        self.program = program
        self.names: set[str] = set()
        self.scalar_writes: set[str] = set()
        self.reductions: dict[str, str] = {}
        self.calls: set[str] = set()
        self.methods: set[tuple[str, str]] = set()

    # -- helpers -------------------------------------------------------
    def fail(self, stmt: Stmt, why: str) -> None:
        raise _Ineligible(f"line {stmt.span.line}: {why}")

    def expr(self, e: Expr | None) -> None:
        if e is None:
            return
        for sub in walk(e):
            if isinstance(sub, Name):
                self.names.add(sub.id)
            elif isinstance(sub, Call):
                self.calls.add(sub.func)
                if sub.func in READ_BUILTINS:
                    raise _Ineligible(
                        f"line {sub.span.line}: {sub.func}() reads console "
                        "input, which cannot be split across processes"
                    )
            elif isinstance(sub, MethodCall):
                self.methods.add(self._resolve_method(sub))

    def _resolve_method(self, call: MethodCall) -> tuple[str, str]:
        ty = getattr(call.base, "ty", None)
        cls = getattr(ty, "name", None)
        if not cls or self.program.class_def(cls) is None:
            raise _Ineligible(
                f"line {call.span.line}: cannot statically resolve method "
                f"'{call.method}' for process offload"
            )
        return cls, call.method

    def target(self, t: Expr, stmt: Stmt, in_lock: bool) -> None:
        """Classify one assignment target."""
        if isinstance(t, Name):
            self.names.add(t.id)
            if in_lock:
                # Scalar writes under a lock are only legal as part of a
                # recognized reduction, which _stmt handles wholesale.
                self.fail(stmt, "internal: scalar write reached target()")
            if t.id != self.node.var:
                self.scalar_writes.add(t.id)
            return
        if isinstance(t, (Index, Attribute)):
            if in_lock:
                self.fail(
                    stmt,
                    "lock body stores into a container — not a reduction "
                    "the process backend can merge",
                )
            # Element/field store: record the root container and any
            # expressions on the path.
            base = t
            while isinstance(base, (Index, Attribute)):
                if isinstance(base, Index):
                    self.expr(base.index)
                base = base.base
            self.expr(base)
            return
        self.fail(stmt, f"unsupported assignment target {type(t).__name__}")

    # -- statements ----------------------------------------------------
    def block(self, body: Block, in_lock: bool) -> None:
        for s in body.statements:
            self.stmt(s, in_lock)

    def stmt(self, s: Stmt, in_lock: bool) -> None:
        if isinstance(s, _PARALLEL_STMTS):
            self.fail(s, "nested parallel construct (keeps thread semantics)")
        if isinstance(s, ExprStmt):
            self.expr(s.expr)
        elif isinstance(s, Assign):
            self.target(s.target, s, in_lock)
            self.expr(s.value)
        elif isinstance(s, AugAssign):
            self.target(s.target, s, in_lock)
            self.expr(s.value)
        elif isinstance(s, Unpack):
            for t in s.targets:
                self.target(t, s, in_lock)
            self.expr(s.value)
        elif isinstance(s, Declare):
            if in_lock:
                self.fail(s, "declaration inside a lock body")
            self.names.add(s.name)
            self.scalar_writes.add(s.name)
            self.expr(s.value)
        elif isinstance(s, If):
            self.expr(s.cond)
            self.block(s.then, in_lock)
            for clause in s.elifs:
                self.expr(clause.cond)
                self.block(clause.body, in_lock)
            if s.orelse is not None:
                self.block(s.orelse, in_lock)
        elif isinstance(s, While):
            self.expr(s.cond)
            self.block(s.body, in_lock)
        elif isinstance(s, For):
            # A sequential for's loop variable lives in the *shared* frame
            # (only parallel-for induction variables are private), so the
            # body mutates shared state every iteration.
            self.fail(
                s,
                f"sequential for variable '{s.var}' is shared across "
                "workers (wrap the work in a function to keep it local)",
            )
        elif isinstance(s, LockStmt):
            if in_lock:
                self.fail(s, "nested lock inside a lock body")
            match = _match_reduction(s)
            if match is None:
                self.fail(
                    s,
                    f"'lock {s.name}:' body is not a reduction the process "
                    "backend can merge (supported: 'x += expr' and guarded "
                    "min/max assignment)",
                )
            var, kind = match
            prior = self.reductions.get(var)
            if prior is not None and prior != kind:
                self.fail(
                    s,
                    f"variable '{var}' is used in conflicting reductions "
                    f"({prior} vs {kind})",
                )
            self.reductions[var] = kind
            self.names.add(var)
            # Record reads inside the lock body (e.g. the summed term).
            for inner in s.body.statements:
                if isinstance(inner, AugAssign):
                    self.expr(inner.value)
                elif isinstance(inner, If):
                    self.expr(inner.cond)
                    for leaf in inner.then.statements:
                        if isinstance(leaf, Assign):
                            self.expr(leaf.value)
        elif isinstance(s, TryStmt):
            # 'catch name:' binds the message into the shared frame.
            self.fail(
                s,
                f"try/catch binds '{s.error_name}' in the shared frame",
            )
        elif isinstance(s, Return):
            self.fail(s, "return inside a parallel for body")
        elif isinstance(s, (Break, Continue, Pass)):
            pass
        else:  # pragma: no cover - parser emits no other kinds
            self.fail(s, f"unsupported statement {type(s).__name__}")

    # -- transitive callees --------------------------------------------
    def check_callees(self) -> None:
        """Reject loops whose (transitively) called functions use locks,
        parallel constructs, or console input: those need the shared
        in-process runtime, so the loop keeps thread semantics."""
        seen_fns: set[str] = set()
        seen_methods: set[tuple[str, str]] = set()
        fn_stack = list(self.calls)
        method_stack = list(self.methods)
        while fn_stack or method_stack:
            if fn_stack:
                name = fn_stack.pop()
                if name in seen_fns:
                    continue
                seen_fns.add(name)
                fn = self.program.function(name)
                if fn is None:
                    # A builtin: pure with respect to Tetra frames, except
                    # the console readers (already rejected at the call
                    # site, but calls can hide inside callees).
                    if name in READ_BUILTINS:
                        raise _Ineligible(
                            f"called builtin {name}() reads console input"
                        )
                    continue
                where = f"function '{name}'"
                body = fn.body
            else:
                cls, mname = method_stack.pop()
                if (cls, mname) in seen_methods:
                    continue
                seen_methods.add((cls, mname))
                cdef = self.program.class_def(cls)
                method = None
                if cdef is not None:
                    for m in cdef.methods:
                        if m.name == mname:
                            method = m
                            break
                if method is None:
                    raise _Ineligible(
                        f"cannot resolve method '{cls}.{mname}' for "
                        "process offload"
                    )
                where = f"method '{cls}.{mname}'"
                body = method.body
            for sub in walk(body):
                if isinstance(sub, LockStmt):
                    raise _Ineligible(
                        f"{where} uses 'lock {sub.name}:' (locks only "
                        "synchronize within one process)"
                    )
                if isinstance(sub, _PARALLEL_STMTS):
                    raise _Ineligible(
                        f"{where} contains a nested parallel construct"
                    )
                if isinstance(sub, Call):
                    if sub.func in READ_BUILTINS:
                        raise _Ineligible(
                            f"{where} calls {sub.func}(), which reads "
                            "console input"
                        )
                    if sub.func not in seen_fns:
                        fn_stack.append(sub.func)
                if isinstance(sub, MethodCall):
                    resolved = self._resolve_method(sub)
                    if resolved not in seen_methods:
                        method_stack.append(resolved)


def _analyze(node: ParallelFor, program: Program) -> ParforPlan:
    scan = _Scan(node, program)
    try:
        scan.block(node.body, in_lock=False)
        scan.check_callees()
    except _Ineligible as why:
        return ParforPlan(ok=False, reason=why.reason)
    # A scalar that is both a reduction and a bare write can't merge.
    tainted = scan.reductions.keys() & scan.scalar_writes
    if tainted:
        name = sorted(tainted)[0]
        return ParforPlan(
            ok=False,
            reason=f"variable '{name}' is written both under a lock and "
                   "outside one",
        )
    scan.names.discard(node.var)
    return ParforPlan(
        ok=True,
        reductions=dict(scan.reductions),
        names=tuple(sorted(scan.names)),
        scalar_writes=tuple(sorted(scan.scalar_writes)),
    )


# ----------------------------------------------------------------------
# Deep diff / merge of container values
# ----------------------------------------------------------------------
def diff_value(old, new, path: tuple, out: list) -> None:
    """Record (path, new_value) for every leaf where ``new`` differs.

    Containers recurse so two workers editing *different* slots of the same
    array merge cleanly; anything else (scalars, shape changes, type
    changes) records the whole subtree at ``path``.
    """
    from .values import TetraArray, TetraDict, TetraObject, TetraTuple

    if type(old) is not type(new):
        if old != new:
            out.append((path, new))
        return
    if isinstance(old, TetraArray):
        if len(old.items) != len(new.items):
            out.append((path, new))
            return
        for i, (o, n) in enumerate(zip(old.items, new.items)):
            diff_value(o, n, path + (("i", i),), out)
        return
    if isinstance(old, TetraTuple):
        # Tuples are immutable but may hold mutable containers.
        if len(old.items) != len(new.items):
            out.append((path, new))
            return
        for i, (o, n) in enumerate(zip(old.items, new.items)):
            diff_value(o, n, path + (("i", i),), out)
        return
    if isinstance(old, TetraDict):
        for key in set(old.items) | set(new.items):
            if key not in new.items:
                out.append((path + (("del", key),), None))
            elif key not in old.items:
                out.append((path + (("k", key),), new.items[key]))
            else:
                diff_value(old.items[key], new.items[key],
                           path + (("k", key),), out)
        return
    if isinstance(old, TetraObject):
        for fname in old.fields:
            diff_value(old.fields[fname], new.fields.get(fname),
                       path + (("f", fname),), out)
        return
    if old != new:
        out.append((path, new))


def apply_change(root, path: tuple, value) -> None:
    """Write ``value`` at ``path`` inside ``root`` (paths from diff_value)."""
    from .values import TetraArray, TetraDict, TetraObject, TetraTuple

    obj = root
    for step in path[:-1]:
        kind, key = step
        if kind == "i":
            obj = obj.items[key]
        elif kind == "k":
            obj = obj.items[key]
        else:  # "f"
            obj = obj.fields[key]
    kind, key = path[-1]
    if kind == "del":
        obj.items.pop(key, None)
    elif kind == "i":
        if isinstance(obj, TetraTuple):
            # Tuple items are a Python tuple; rebuild around the change.
            items = list(obj.items)
            items[key] = value
            obj.items = tuple(items)
        else:
            obj.items[key] = value
    elif kind == "k":
        obj.items[key] = value
    else:  # "f"
        obj.fields[key] = value


def describe_path(name: str, path: tuple) -> str:
    """Human-readable spelling of a merge path, for diagnostics."""
    text = name
    for kind, key in path:
        if kind == "i":
            text += f"[{key}]"
        elif kind in ("k", "del"):
            text += f"[{key!r}]"
        else:
            text += f".{key}"
    return text
