"""Text Gantt charts of simulated schedules.

Turns a :class:`~repro.runtime.machine.ScheduleResult`'s timeline into a
terminal picture — one row per model core, one glyph per time bucket — so
students can *see* imbalance, lock serialization, and idle cores:

    core 0 |AAAAAAAAAAAABB......|
    core 1 |CCCCCCCCCCCCCCCCCCCC|
    core 2 |DDDDDD..............|

Used by ``tetra sim --timeline`` and the speedup examples.
"""

from __future__ import annotations

from .machine import ScheduleResult

#: Glyphs assigned to tasks in first-seen order ('.' means idle).
_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


def render_gantt(result: ScheduleResult, width: int = 64) -> str:
    """A text Gantt chart of one simulated run, plus a legend.

    Each column is ``makespan / width`` time units; the glyph shown is the
    task occupying the core at the *start* of the bucket (idle = ``.``).
    """
    if result.makespan <= 0 or not result.timeline:
        return "(empty schedule)"
    scale = result.makespan / width

    glyph_of: dict[int, str] = {}
    labels: dict[str, str] = {}

    def glyph(task_id: int, label: str) -> str:
        if task_id not in glyph_of:
            g = _GLYPHS[len(glyph_of) % len(_GLYPHS)]
            glyph_of[task_id] = g
            labels[g] = label
        return glyph_of[task_id]

    rows = {core: ["."] * width for core in range(result.cores)}
    for segment in result.timeline:
        if segment.core < 0:
            continue
        g = glyph(segment.task_id, segment.label)
        first = int(segment.start / scale)
        last = int(max(segment.start, segment.end - 1e-9) / scale)
        for bucket in range(max(0, first), min(width - 1, last) + 1):
            rows[segment.core][bucket] = g

    lines = [
        f"core {core} |{''.join(cells)}|"
        for core, cells in sorted(rows.items())
    ]
    lines.append(f"        0{' ' * (width - 10)}{round(result.makespan)}")
    lines.append("legend: " + "  ".join(
        f"{g}={label}" for g, label in labels.items()
    ))
    lines.append(
        f"utilization {result.utilization * 100:.0f}%  "
        f"lock wait {round(result.lock_wait_time)}  "
        f"tasks {result.task_count}"
    )
    return "\n".join(lines)
