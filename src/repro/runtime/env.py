"""Environments: the interpreter's shared and private symbol tables.

The paper (§IV): "Because of the way threads are created dynamically, they
have private and shared symbol tables."  Concretely:

* Each function activation owns a :class:`Frame` — a flat name→value table.
* Threads spawned by ``parallel`` / ``background`` blocks *share* the
  spawning activation's frame, which is how Figure II's two parallel
  assignments to ``a`` and ``b`` are visible after the join.
* Each ``parallel for`` worker gets an :class:`Environment` layering a small
  *private* table (holding the induction variable) over the shared frame.

Mutation of a shared frame from several threads is exactly the data-race
surface the language is designed to teach about; the frame itself is a dict,
whose individual get/set operations are atomic under CPython, so races stay
at the Tetra-program level instead of corrupting the interpreter.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import TetraInternalError
from .values import Value


class Frame:
    """One function activation's variables (the shared symbol table)."""

    __slots__ = ("function_name", "vars", "depth", "shared")

    def __init__(self, function_name: str, depth: int = 0):
        self.function_name = function_name
        self.vars: dict[str, Value] = {}
        self.depth = depth
        #: Set (by the race detector) once a parallel construct hands this
        #: frame to child threads; accesses to a never-shared frame cannot
        #: race and are not worth recording.
        self.shared = False

    def __repr__(self) -> str:
        return f"Frame({self.function_name}, {sorted(self.vars)})"


class Environment:
    """A view of a frame, optionally with thread-private bindings on top.

    Reads check the private table first; writes go to the private table only
    for names already private (the induction variable), otherwise to the
    shared frame — so a worker's loop variable never leaks, while ordinary
    assignments behave like the paper's shared-memory model.
    """

    __slots__ = ("frame", "private")

    def __init__(self, frame: Frame, private: dict[str, Value] | None = None):
        self.frame = frame
        self.private = private if private is not None else {}

    def child_with_private(self, bindings: dict[str, Value]) -> "Environment":
        """A new view over the same frame with extra private bindings
        (layered: nested ``parallel for`` loops stack their variables)."""
        merged = dict(self.private)
        merged.update(bindings)
        return Environment(self.frame, merged)

    def get(self, name: str) -> Value:
        # Most environments have an empty private table (only parallel-for
        # workers carry one); test truthiness before probing so the common
        # case costs a single dict lookup.  The closure compiler
        # (repro.interp.compile) relies on the same invariant to bypass
        # this method entirely for names it proves can never be private.
        private = self.private
        if private and name in private:
            return private[name]
        try:
            return self.frame.vars[name]
        except KeyError:
            # The checker guarantees definition-before-use; if control flow
            # reaches a read first anyway (e.g. a branch skipped the
            # assignment), that is a checker/interpreter disagreement.
            raise TetraInternalError(
                f"variable '{name}' read before any assignment in "
                f"{self.frame.function_name}"
            ) from None

    def set(self, name: str, value: Value) -> None:
        private = self.private
        if private and name in private:
            private[name] = value
        else:
            self.frame.vars[name] = value

    def is_shared(self, name: str) -> bool:
        """True when ``name`` resolves to a frame several threads can see —
        the only bindings whose accesses the race detector records."""
        return self.frame.shared and name not in self.private

    def has(self, name: str) -> bool:
        return name in self.private or name in self.frame.vars

    def names(self) -> Iterator[str]:
        seen = set(self.private)
        yield from self.private
        for name in self.frame.vars:
            if name not in seen:
                yield name

    def snapshot(self) -> dict[str, Value]:
        """Current visible bindings (debugger variable pane)."""
        merged = dict(self.frame.vars)
        merged.update(self.private)
        return merged
