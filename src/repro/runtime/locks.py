"""Named locks for ``lock <name>:`` blocks, with deadlock *detection*.

The paper maps lock statements onto Pthread mutexes; lock names live in
their own namespace.  A plain mutex, though, punishes a student's two most
common mistakes with a silent hang:

* re-entering a lock the same thread already holds (nested ``lock a:``), and
* acquiring two locks in opposite orders from two threads.

Both are exactly the phenomena Tetra exists to teach, so this table turns
them into a :class:`~repro.errors.TetraDeadlockError` that names the threads
and locks in the cycle.  Detection uses the classic wait-for graph: thread →
lock it waits on → owner thread → ...; a cycle back to the start is a
deadlock.

Detection is event-driven: the thread whose blocking *completes* a cycle
always sees the full cycle in the wait-for graph at the moment it blocks
(every other participant is already recorded as waiting), so one check at
block time plus one on each ownership-change wakeup finds every deadlock.
Blocked threads sleep on a condition variable between wakeups instead of
burning CPU on a 20 ms poll; a slow fallback poll remains purely as a
safety net against lost wakeups.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..errors import TetraCancelledError, TetraDeadlockError
from ..source import NO_SPAN, Span

#: Identifies a Tetra thread in the wait-for graph.  Thread backends use the
#: OS thread ident; the debugger's cooperative backend uses its own ids.
ThreadKey = object


@dataclass
class LockStats:
    """Per-lock counters surfaced by benchmarks and the debugger."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    #: Total seconds threads spent blocked waiting to acquire this lock.
    wait_time: float = 0.0


class LockTable:
    """All named locks of one running program."""

    #: Safety-net poll for blocked threads.  Correctness never depends on
    #: it: cycles are found at block time and on ownership-change wakeups.
    FALLBACK_POLL = 0.5

    def __init__(self) -> None:
        self._monitor = threading.Lock()
        #: Signalled on every ownership change (release); the monitor above
        #: is its underlying lock, so waiters re-check under the monitor.
        self._changed = threading.Condition(self._monitor)
        self._names: set[str] = set()
        self._owners: dict[str, ThreadKey] = {}
        self._owner_labels: dict[ThreadKey, str] = {}
        self._waiting: dict[ThreadKey, str] = {}
        #: Source span of each blocked ``lock`` statement, so a deadlock
        #: report can point at *every* participant, not just the thread
        #: that happened to close the cycle.
        self._waiting_spans: dict[ThreadKey, Span] = {}
        #: Instance copy of the safety-net poll, taken at construction so a
        #: single table (or test) can tune it without touching the class.
        self.fallback_poll: float = self.FALLBACK_POLL
        #: Optional CancelToken; blocked acquires observe it so Ctrl-C
        #: reaches threads that are parked on a lock.
        self.cancel = None
        #: Optional ``grant_hook(name, key)`` called (monitor held) at the
        #: exact moment a lock changes owner — the schedule recorder's
        #: source of per-lock grant order, barging included.
        self.grant_hook = None
        self.stats: dict[str, LockStats] = {}

    # ------------------------------------------------------------------
    def register_thread(self, key: ThreadKey, label: str) -> None:
        """Give a thread a human-readable name for deadlock messages."""
        with self._monitor:
            self._owner_labels[key] = label

    def _label(self, key: ThreadKey) -> str:
        return self._owner_labels.get(key, f"thread {key}")

    def label_for(self, key: ThreadKey) -> str:
        """Public form of the label lookup (used by the recorder)."""
        return self._label(key)

    def known_locks(self) -> list[str]:
        with self._monitor:
            return sorted(self._names)

    def holder_of(self, name: str) -> ThreadKey | None:
        with self._monitor:
            return self._owners.get(name)

    # ------------------------------------------------------------------
    def acquire(self, name: str, key: ThreadKey, span: Span = NO_SPAN,
                on_block=None) -> None:
        """Acquire ``name`` for ``key``; ``on_block()`` fires once (monitor
        held) if — and only if — the acquire actually has to wait, so a
        caller can hand off a scheduling token before parking."""
        with self._changed:
            self._names.add(name)
            stats = self.stats.setdefault(name, LockStats())
            owner = self._owners.get(name)
            if owner == key:
                raise TetraDeadlockError(
                    f"{self._label(key)} tried to enter 'lock {name}:' while "
                    f"already inside it — Tetra locks are not re-entrant, so "
                    "this would wait forever",
                    span,
                )
            if owner is not None:
                stats.contended_acquisitions += 1
            stats.acquisitions += 1
            self._waiting[key] = name
            self._waiting_spans[key] = span
            wait_started = None
            try:
                while self._owners.get(name) is not None:
                    if wait_started is None:
                        wait_started = time.perf_counter()
                        if on_block is not None:
                            on_block()
                    cancel = self.cancel
                    if cancel is not None and cancel.cancelled:
                        raise TetraCancelledError(
                            f"the run was cancelled while {self._label(key)} "
                            f"waited for 'lock {name}:' — {cancel.reason}",
                            span,
                        )
                    # Checked at block time — the thread that closes a cycle
                    # always sees it here — and again on every wakeup.
                    cycle, blocked = self._find_cycle(key)
                    if cycle:
                        raise TetraDeadlockError(
                            self._cycle_message(cycle), span,
                            cycle=tuple(cycle),
                            blocked_spans=tuple(blocked),
                        )
                    # Re-check the wake condition under the monitor right
                    # before sleeping: if the owner released during the
                    # cycle walk we must not park and eat a full fallback
                    # poll waiting for a notify that already happened.
                    if self._owners.get(name) is None:
                        continue
                    timeout = self.fallback_poll
                    if cancel is not None:
                        # Bound cancellation latency for parked threads.
                        timeout = min(timeout, 0.05)
                    self._changed.wait(timeout=timeout)
                self._owners[name] = key
                hook = self.grant_hook
                if hook is not None:
                    hook(name, key)
            finally:
                if wait_started is not None:
                    stats.wait_time += time.perf_counter() - wait_started
                self._waiting.pop(key, None)
                self._waiting_spans.pop(key, None)

    def release(self, name: str, key: ThreadKey) -> None:
        with self._changed:
            if self._owners.get(name) != key:
                # Structured lock blocks make this unreachable from Tetra
                # programs; guard against interpreter bugs anyway.
                raise TetraDeadlockError(
                    f"{self._label(key)} released 'lock {name}:' it does not hold"
                )
            del self._owners[name]
            self._changed.notify_all()

    # ------------------------------------------------------------------
    def _find_cycle(
        self, start: ThreadKey
    ) -> tuple[list[str] | None, list[Span]]:
        """Walk thread→lock→owner edges from ``start`` (monitor held);
        return a readable cycle description plus the source span of every
        blocked ``lock`` statement in it, if the walk loops back."""
        path: list[str] = []
        spans: list[Span] = []
        current = start
        visited: set = set()
        while True:
            lock_name = self._waiting.get(current)
            if lock_name is None:
                return None, []
            path.append(f"{self._label(current)} waits for 'lock {lock_name}'")
            blocked_at = self._waiting_spans.get(current, NO_SPAN)
            if blocked_at is not NO_SPAN:
                spans.append(blocked_at)
            owner = self._owners.get(lock_name)
            if owner is None:
                return None, []
            path.append(f"'lock {lock_name}' is held by {self._label(owner)}")
            if owner == start:
                return path, spans
            if owner in visited:
                # A cycle not involving us; its members report it.
                return None, []
            visited.add(owner)
            current = owner

    @staticmethod
    def _cycle_message(cycle: list[str]) -> str:
        chain = "; ".join(cycle)
        return (
            "deadlock detected — these threads are waiting for each other in "
            f"a cycle: {chain}. Acquire locks in a consistent order to avoid this."
        )
