"""Task graphs recorded by the virtual-time backend.

``SimBackend`` executes a Tetra program *sequentially* while recording what
the thread runtime would have done: how much interpreter work each would-be
thread performs (``Work``), where threads fork and join (``Fork``), and
where critical sections begin and end (``Acquire``/``Release``).  The
resulting fork/join trace is a series-parallel DAG with lock constraints —
exactly the input :mod:`repro.runtime.machine` schedules onto a model
multicore to produce virtual makespans.

Traces are plain data: they can be saved, diffed in tests, and replayed on
machines with different core counts without re-interpreting the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from ..source import NO_SPAN, Span


@dataclass
class Work:
    """Compute for ``units`` of abstract time while holding a core."""

    units: int


@dataclass
class Acquire:
    """Block until the named lock is free, then hold it."""

    name: str


@dataclass
class Release:
    name: str


@dataclass
class Access:
    """A shared-memory read (``write=False``) or write, with its source
    span.  Recorded only when race detection is on; the machine model
    ignores these (they cost nothing), but
    :func:`repro.analysis.races.replay_trace` consumes them."""

    name: str
    write: bool
    span: Span = NO_SPAN


@dataclass
class Fork:
    """Spawn ``children``; if ``join``, wait for all of them to finish."""

    children: list["Task"]
    join: bool


TraceItem = Union[Work, Acquire, Release, Access, Fork]


@dataclass
class Task:
    """One would-be thread: a sequential trace of items."""

    id: int
    label: str
    items: list[TraceItem] = field(default_factory=list)

    def charge(self, units: int) -> None:
        """Accumulate compute cost, merging consecutive Work items so traces
        stay small (one item per basic block, not one per AST node)."""
        if units <= 0:
            return
        if self.items and isinstance(self.items[-1], Work):
            self.items[-1].units += units
        else:
            self.items.append(Work(units))

    @property
    def total_work(self) -> int:
        """All compute units in this task (excluding children)."""
        return sum(item.units for item in self.items if isinstance(item, Work))

    def subtree_work(self) -> int:
        """All compute units in this task and every descendant."""
        total = 0
        for task in self.walk():
            total += task.total_work
        return total

    def walk(self) -> Iterator["Task"]:
        yield self
        for item in self.items:
            if isinstance(item, Fork):
                for child in item.children:
                    yield from child.walk()

    def task_count(self) -> int:
        return sum(1 for _ in self.walk())

    def max_parallelism(self) -> int:
        """Upper bound on simultaneously runnable tasks (fork width, nested)."""
        width = 1
        for item in self.items:
            if isinstance(item, Fork):
                children_width = sum(c.max_parallelism() for c in item.children)
                base = 1 if not item.join else 0
                # While joined children run the parent is blocked; while
                # background children run the parent keeps going.
                width = max(width, children_width + base)
        return width

    def critical_path(self) -> int:
        """Length of the longest dependency chain — the T∞ lower bound of
        work/span analysis.  Lock serialization is ignored here (it is a
        scheduling constraint, not a dependency)."""
        length = 0
        for item in self.items:
            if isinstance(item, Work):
                length += item.units
            elif isinstance(item, Fork) and item.join:
                length += max((c.critical_path() for c in item.children), default=0)
        return length


class TraceRecorder:
    """Builds a task tree while the sim backend runs the program."""

    def __init__(self, root_label: str = "main"):
        self._next_id = 0
        self.root = self._new_task(root_label)
        self._stack: list[Task] = [self.root]
        self._held_locks: list[str] = []  # locks held by the *current* task

    def _new_task(self, label: str) -> Task:
        task = Task(self._next_id, label)
        self._next_id += 1
        return task

    @property
    def current(self) -> Task:
        return self._stack[-1]

    def charge(self, units: int) -> None:
        self.current.charge(units)

    def virtual_now(self) -> int:
        """The virtual clock of the task being recorded: work accumulated
        along the current task stack.  A child starts where its spawner
        left off, siblings overlap, and two ``virtual_now`` readings in the
        same task differ by exactly the units charged between them — which
        is what makes the Tetra ``clock()`` builtin deterministic under the
        sim backend."""
        return sum(task.total_work for task in self._stack)

    def begin_fork(self, labels: list[str], join: bool) -> list[Task]:
        """Create child tasks; the caller then records into each via
        :meth:`enter_child` / :meth:`exit_child`, then calls
        :meth:`end_fork`."""
        children = [self._new_task(label) for label in labels]
        self.current.items.append(Fork(children, join))
        return children

    def enter_child(self, child: Task) -> None:
        self._stack.append(child)

    def exit_child(self) -> None:
        self._stack.pop()

    def access(self, name: str, write: bool, span: Span = NO_SPAN) -> None:
        """Record a shared-memory access (race-detection runs only)."""
        self.current.items.append(Access(name, write, span))

    def acquire(self, name: str) -> bool:
        """Record a lock acquisition.  Returns False if the current task
        already holds ``name`` (certain self-deadlock; caller diagnoses)."""
        if name in self._held_locks:
            return False
        self._held_locks.append(name)
        self.current.items.append(Acquire(name))
        return True

    def release(self, name: str) -> None:
        self._held_locks.remove(name)
        self.current.items.append(Release(name))
