"""Execution backends: how Tetra's parallel constructs actually run.

The interpreter is backend-agnostic; a :class:`Backend` decides what
``parallel`` / ``background`` / ``parallel for`` / ``lock`` mean
operationally.  Three implementations ship (DESIGN.md §2):

* :class:`ThreadBackend` (here) — one real OS thread per parallel statement,
  the paper's own execution model.
* :class:`~repro.runtime.coop.CoopBackend` — deterministic cooperative
  scheduling, the substrate for the debugger and race/deadlock education.
* :class:`~repro.runtime.sim.SimBackend` — sequential recording plus a
  virtual-time multicore model, used for the speedup evaluation.

A *job* is ``(context, thunk)``: the interpreter prepares a fresh
:class:`ThreadContext` per child (its id keys the lock wait-for graph) and a
zero-argument callable that runs the child statement in the right
environment.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import TetraError, TetraThreadError
from ..source import NO_SPAN, Span
from .cost import DEFAULT_COST_MODEL, CostModel
from .locks import LockTable

Job = tuple[object, Callable[[], None]]  # (child ThreadContext, thunk)


@dataclass
class RuntimeConfig:
    """Knobs shared by all backends."""

    #: Worker threads for ``parallel for``.  None → backend default
    #: (machine cores for threads, model cores for the simulator).
    num_workers: int | None = None
    #: 'block' assigns contiguous iteration ranges; 'cyclic' deals them out
    #: round-robin (the chunking ablation in DESIGN.md §3).
    chunking: str = "block"
    #: Wait for ``background`` threads when the program finishes, so program
    #: output is deterministic.  Set False to truly detach them.
    wait_for_background: bool = True
    #: Abort interpretation after this many statements (0 = unlimited).
    #: Guards tests and the debugger against runaway programs.
    step_limit: int = 0
    #: Tetra-level recursion depth limit.
    recursion_limit: int = 200

    def __post_init__(self) -> None:
        if self.chunking not in ("block", "cyclic"):
            raise ValueError("chunking must be 'block' or 'cyclic'")


class Backend:
    """Interface the interpreter programs against."""

    #: True if charge() should be called for every operation (sim only);
    #: the interpreter skips cost computation entirely when False.
    accounting = False
    name = "abstract"

    def __init__(self, config: RuntimeConfig | None = None):
        self.config = config or RuntimeConfig()

    # -- hooks ------------------------------------------------------------
    def charge(self, ctx, units: int) -> None:
        """Account virtual work (sim backend only)."""

    def checkpoint(self, ctx, node) -> None:
        """Called before each statement: scheduling / cancellation point."""

    # -- parallel constructs ----------------------------------------------
    def spawn_group(self, ctx, jobs: Sequence[Job], join: bool,
                    span: Span = NO_SPAN) -> None:
        raise NotImplementedError

    def parallel_for_workers(self, n_items: int) -> int:
        raise NotImplementedError

    def lock(self, ctx, name: str, body: Callable[[], None],
             span: Span = NO_SPAN) -> None:
        raise NotImplementedError

    # -- lifecycle ----------------------------------------------------------
    def start_program(self, root_ctx) -> None:
        """Called once before main() runs."""

    def finish_program(self, root_ctx) -> None:
        """Called once after main() returns (joins background work)."""


class ThreadBackend(Backend):
    """Real OS threads — the paper's Pthreads model, verbatim.

    Honest about CPython: threads give *concurrency* (and real data races,
    which the teaching examples rely on) but the GIL prevents speedup; the
    GIL-honesty benchmark documents that, and the simulator provides the
    scalability evaluation.
    """

    name = "thread"

    def __init__(self, config: RuntimeConfig | None = None):
        super().__init__(config)
        self.locks = LockTable()
        self._background: list[threading.Thread] = []
        self._background_errors: list[BaseException] = []
        self._bg_monitor = threading.Lock()

    # ------------------------------------------------------------------
    def spawn_group(self, ctx, jobs: Sequence[Job], join: bool,
                    span: Span = NO_SPAN) -> None:
        threads: list[threading.Thread] = []
        errors: list[tuple[str, BaseException]] = []
        err_lock = threading.Lock()

        def runner(child_ctx, thunk) -> None:
            self.locks.register_thread(child_ctx.id, child_ctx.label)
            try:
                thunk()
            except BaseException as exc:  # noqa: BLE001 - propagated below
                with err_lock:
                    errors.append((child_ctx.label, exc))
                if not join:
                    with self._bg_monitor:
                        self._background_errors.append(exc)

        for child_ctx, thunk in jobs:
            thread = threading.Thread(
                target=runner,
                args=(child_ctx, thunk),
                name=child_ctx.label,
                daemon=False,
            )
            threads.append(thread)
            thread.start()

        if join:
            for thread in threads:
                thread.join()
            if errors:
                label, exc = errors[0]
                if isinstance(exc, TetraError):
                    raise exc
                raise TetraThreadError(
                    f"{label} failed with {type(exc).__name__}: {exc}", span
                ) from exc
        else:
            with self._bg_monitor:
                self._background.extend(threads)

    def parallel_for_workers(self, n_items: int) -> int:
        workers = self.config.num_workers or os.cpu_count() or 1
        return max(1, min(workers, n_items))

    def lock(self, ctx, name: str, body: Callable[[], None],
             span: Span = NO_SPAN) -> None:
        self.locks.acquire(name, ctx.id, span)
        try:
            body()
        finally:
            self.locks.release(name, ctx.id)

    def start_program(self, root_ctx) -> None:
        self.locks.register_thread(root_ctx.id, root_ctx.label)

    def finish_program(self, root_ctx) -> None:
        if not self.config.wait_for_background:
            return
        while True:
            with self._bg_monitor:
                if not self._background:
                    break
                thread = self._background.pop()
            thread.join()
        with self._bg_monitor:
            if self._background_errors:
                exc = self._background_errors[0]
                self._background_errors.clear()
                if isinstance(exc, TetraError):
                    raise exc
                raise TetraThreadError(
                    f"a background thread failed with "
                    f"{type(exc).__name__}: {exc}"
                ) from exc


class SequentialBackend(Backend):
    """Runs parallel constructs sequentially in program order.

    The semantic baseline: any data-race-free Tetra program must produce the
    same answer here as on the thread backend (a property the differential
    tests exercise), and it is also the fastest way to run a program when
    you only care about its output.
    """

    name = "sequential"

    def __init__(self, config: RuntimeConfig | None = None):
        super().__init__(config)
        self._held: list[tuple[object, str]] = []

    def spawn_group(self, ctx, jobs: Sequence[Job], join: bool,
                    span: Span = NO_SPAN) -> None:
        for _child_ctx, thunk in jobs:
            thunk()

    def parallel_for_workers(self, n_items: int) -> int:
        return max(1, min(self.config.num_workers or 1, n_items))

    def lock(self, ctx, name: str, body: Callable[[], None],
             span: Span = NO_SPAN) -> None:
        from ..errors import TetraDeadlockError

        if (ctx.id, name) in self._held:
            raise TetraDeadlockError(
                f"{ctx.label} re-entered 'lock {name}:' it already holds", span
            )
        self._held.append((ctx.id, name))
        try:
            body()
        finally:
            self._held.remove((ctx.id, name))
