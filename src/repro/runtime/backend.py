"""Execution backends: how Tetra's parallel constructs actually run.

The interpreter is backend-agnostic; a :class:`Backend` decides what
``parallel`` / ``background`` / ``parallel for`` / ``lock`` mean
operationally.  Three implementations ship (DESIGN.md §2):

* :class:`ThreadBackend` (here) — one real OS thread per parallel statement,
  the paper's own execution model.
* :class:`~repro.runtime.coop.CoopBackend` — deterministic cooperative
  scheduling, the substrate for the debugger and race/deadlock education.
* :class:`~repro.runtime.sim.SimBackend` — sequential recording plus a
  virtual-time multicore model, used for the speedup evaluation.

A *job* is ``(context, thunk)``: the interpreter prepares a fresh
:class:`ThreadContext` per child (its id keys the lock wait-for graph) and a
zero-argument callable that runs the child statement in the right
environment.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import (
    TetraCancelledError,
    TetraDeadlockError,
    TetraError,
    TetraLimitError,
    TetraThreadError,
)
from ..source import NO_SPAN, Span
from ..stdlib.builtin_time import monotonic_clock
from .cost import DEFAULT_COST_MODEL, CostModel
from .locks import LockTable

Job = tuple[object, Callable[[], None]]  # (child ThreadContext, thunk)


def raise_thread_failures(failures: Sequence[tuple[str, BaseException]],
                          span: Span, kind: str) -> None:
    """Propagate worker failures without silently dropping any of them.

    A single Tetra diagnostic is re-raised as itself (its span and phase are
    already the best report).  Several failures are aggregated into one
    :class:`TetraThreadError` naming every failed thread — except when all
    of them describe the same run-wide abort (the same deadlock cycle, the
    same tripped limit, the same cancellation), where repeating the report
    once per thread would only bury it.
    """
    if not failures:
        return
    if len(failures) == 1:
        label, exc = failures[0]
        if isinstance(exc, TetraError):
            raise exc
        raise TetraThreadError(
            f"{label} failed with {type(exc).__name__}: {exc}", span
        ) from exc
    for run_wide in (TetraDeadlockError, TetraLimitError,
                     TetraCancelledError):
        if all(isinstance(exc, run_wide) for _, exc in failures):
            raise failures[0][1]
    details = "; ".join(
        f"{label} failed with {type(exc).__name__}: {exc}"
        for label, exc in failures
    )
    raise TetraThreadError(
        f"{len(failures)} {kind} threads failed — {details}", span
    ) from failures[0][1]


@dataclass
class RuntimeConfig:
    """Knobs shared by all backends."""

    #: Worker threads for ``parallel for``.  None → backend default
    #: (machine cores for threads, model cores for the simulator).
    num_workers: int | None = None
    #: 'block' assigns contiguous iteration ranges; 'cyclic' deals them out
    #: round-robin (the chunking ablation in DESIGN.md §3); 'dynamic' uses
    #: guided decreasing chunk sizes — a work queue on the proc backend, a
    #: deterministic dealt-guided partition in-process.
    chunking: str = "block"
    #: Wait for ``background`` threads when the program finishes, so program
    #: output is deterministic.  Set False to truly detach them.
    wait_for_background: bool = True
    #: Abort interpretation after this many statements (0 = unlimited).
    #: Guards tests and the debugger against runaway programs.
    step_limit: int = 0
    #: Tetra-level recursion depth limit.
    recursion_limit: int = 200
    #: Record shared read/write events and report data races
    #: (happens-before + lockset; see :mod:`repro.analysis.races`).
    detect_races: bool = False
    #: Collect span events (threads, fork/join, locks, calls) exportable as
    #: Chrome trace JSON (see :mod:`repro.obs`).
    trace: bool = False
    #: Aggregate run metrics (busy time, lock contention, load balance)
    #: onto :attr:`repro.api.RunResult.metrics`.
    metrics: bool = False
    #: Count statement executions (and, on sim, charged cost units) per
    #: source line — ``tetra run --profile``.
    profile: bool = False
    #: Abort the run after this much time (0 = unlimited).  Measured on the
    #: backend's own clock: monotonic host seconds on thread/sequential,
    #: deterministic virtual units on sim/coop (the PR-3 clock contract).
    time_limit: float = 0.0
    #: Abort when the live value heap exceeds this many container cells
    #: (array/dict elements, tuple items, object fields; 0 = unlimited).
    memory_limit: int = 0
    #: Abort after the program has printed this many characters (0 =
    #: unlimited).  When unset but ``memory_limit`` is, the interpreter
    #: derives ``memory_limit * OUTPUT_CHARS_PER_CELL`` so captured output
    #: — which the :class:`~repro.resilience.guard.HeapMeter` cannot see —
    #: is still bounded (an unbounded print loop is an OOM vector for any
    #: hosted run).
    output_limit: int = 0
    #: Cooperative cancellation token (SIGINT, IDE stop button, watchdogs).
    #: Checked at every statement boundary when set.
    cancel: object = None
    #: A seeded :class:`repro.resilience.FaultPlan` for chaos testing, or
    #: None.  Usually built from :attr:`chaos_seed`.
    fault_plan: object = None
    #: Convenience: a bare seed builds a default FaultPlan (the CLI's
    #: ``--chaos SEED``).
    chaos_seed: int | None = None
    #: A :class:`~repro.runtime.schedule.ScheduleRecorder` capturing this
    #: run's scheduling decisions (turns, lock grants, parallel-for
    #: shapes) for a replayable artifact, or None.
    schedule_recorder: object = None
    #: A parsed :class:`~repro.runtime.schedule.Schedule` to replay; only
    #: the coop backend honors it (it drives the policy, the lock grant
    #: order, and parallel-for worker counts).
    schedule_replay: object = None
    #: The native compiled tier (:mod:`repro.compiler.native`): "off"
    #: never lowers to C, "auto" lowers what it can and silently falls
    #: back (a notice lands in ``--metrics``), "require" raises a
    #: :class:`~repro.errors.TetraNativeError` when the tier cannot be
    #: set up (no C toolchain, failed build, incompatible run config).
    native: str = "off"

    def __post_init__(self) -> None:
        if self.chunking not in ("block", "cyclic", "dynamic"):
            raise ValueError(
                "chunking must be 'block', 'cyclic', or 'dynamic'"
            )
        if self.native not in ("auto", "off", "require"):
            raise ValueError("native must be 'auto', 'off', or 'require'")
        if self.chaos_seed is not None and self.fault_plan is None:
            from ..resilience.faults import FaultPlan

            self.fault_plan = FaultPlan(self.chaos_seed)


def guided_chunk_sizes(n: int, workers: int, min_chunk: int = 1) -> list[int]:
    """Guided self-scheduling chunk sizes: each next chunk takes
    ``remaining / (2 * workers)`` iterations, so early chunks are large
    (low dispatch overhead) and late chunks small (tail load balance)."""
    sizes: list[int] = []
    remaining = n
    while remaining > 0:
        size = max(min_chunk, remaining // (2 * workers))
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


class Backend:
    """Interface the interpreter programs against."""

    #: True if charge() should be called for every operation (sim only);
    #: the interpreter skips cost computation entirely when False.
    accounting = False
    #: True when :meth:`now` returns deterministic virtual time (sim, coop)
    #: rather than host seconds.
    virtual_clock = False
    #: The run's :class:`~repro.obs.observer.Observer`, installed by the
    #: interpreter when tracing/metrics/profiling is on.  Every emission
    #: site guards with one ``None``-check, so disabled runs pay nothing —
    #: the same contract as the race detector.
    obs = None
    #: Optional hook: ``try_parallel_for(interp, stmt, items, ctx) -> bool``.
    #: A backend that can execute an entire ``parallel for`` itself (the
    #: proc backend's multiprocess offload) sets this; both the tree walker
    #: and the compiled fast path consult it before spawning threads.  A
    #: False return means "run the loop the normal in-process way".
    try_parallel_for = None
    #: The run's :class:`~repro.compiler.native.NativeState`, installed by
    #: the interpreter when the native tier is requested; ``--metrics``
    #: reads it off the backend like the proc pool's fallback list.
    native_state = None
    name = "abstract"

    def __init__(self, config: RuntimeConfig | None = None):
        self.config = config or RuntimeConfig()

    # -- hooks ------------------------------------------------------------
    def now(self) -> float:
        """This backend's clock — also what the Tetra ``clock()`` builtin
        reports.  Host monotonic seconds by default; the sim backend
        returns accumulated virtual cost units for the current task and the
        coop backend returns executed scheduler turns, so timing a program
        under those backends measures *modelled* time, deterministically.
        """
        return monotonic_clock()

    def charge(self, ctx, units: int) -> None:
        """Account virtual work (sim backend only)."""

    def checkpoint(self, ctx, node) -> None:
        """Called before each statement: scheduling / cancellation point."""

    def wants_checkpoints(self) -> bool:
        """True when :meth:`checkpoint` must be called for every statement.

        The compiled fast path skips the call entirely when this is False
        (the lean prologue).  Backends whose checkpoint only matters in
        some configurations — the thread backend records turns only under
        a schedule recorder — override this instead of relying on the
        method-override test, so plain runs stay lean."""
        return type(self).checkpoint is not Backend.checkpoint

    def record_access(self, ctx, name: str, write: bool,
                      span: Span = NO_SPAN) -> None:
        """Trace hook for shared reads/writes, only called while race
        detection is on.  The simulator records these into its task graph
        so saved traces can be replayed through the race detector."""

    # -- parallel constructs ----------------------------------------------
    def spawn_group(self, ctx, jobs: Sequence[Job], join: bool,
                    span: Span = NO_SPAN) -> None:
        raise NotImplementedError

    def parallel_for_workers(self, n_items: int) -> int:
        raise NotImplementedError

    def lock(self, ctx, name: str, body: Callable[[], None],
             span: Span = NO_SPAN) -> None:
        raise NotImplementedError

    # -- lifecycle ----------------------------------------------------------
    def start_program(self, root_ctx) -> None:
        """Called once before main() runs."""

    def finish_program(self, root_ctx) -> None:
        """Called once after main() returns (joins background work)."""


class ThreadBackend(Backend):
    """Real OS threads — the paper's Pthreads model, verbatim.

    Honest about CPython: threads give *concurrency* (and real data races,
    which the teaching examples rely on) but the GIL prevents speedup; the
    GIL-honesty benchmark documents that, and the simulator provides the
    scalability evaluation.
    """

    name = "thread"

    def __init__(self, config: RuntimeConfig | None = None):
        super().__init__(config)
        self.locks = LockTable()
        self._background: list[threading.Thread] = []
        self._background_errors: list[tuple[str, BaseException]] = []
        self._bg_monitor = threading.Lock()
        #: Statement-granular serialization while a schedule recorder is
        #: attached (see repro.runtime.schedule); None on plain runs, so
        #: they stay lean and genuinely concurrent.
        self._turnstile = None
        rec = self.config.schedule_recorder
        if rec is not None:
            from .schedule import Turnstile

            self._turnstile = Turnstile(rec, self.config.fault_plan)
            self.locks.grant_hook = (
                lambda name, key: rec.grant(name, self.locks.label_for(key))
            )

    # ------------------------------------------------------------------
    def checkpoint(self, ctx, node) -> None:
        ts = self._turnstile
        if ts is not None:
            ts.step(ctx)

    def wants_checkpoints(self) -> bool:
        return self._turnstile is not None

    def spawn_group(self, ctx, jobs: Sequence[Job], join: bool,
                    span: Span = NO_SPAN) -> None:
        threads: list[threading.Thread] = []
        errors: list[tuple[str, BaseException]] = []
        err_lock = threading.Lock()
        ts = self._turnstile

        def runner(child_ctx, thunk) -> None:
            self.locks.register_thread(child_ctx.id, child_ctx.label)
            try:
                thunk()
            except BaseException as exc:  # noqa: BLE001 - propagated below
                with err_lock:
                    errors.append((child_ctx.label, exc))
                if not join:
                    with self._bg_monitor:
                        self._background_errors.append((child_ctx.label, exc))
            finally:
                if ts is not None:
                    ts.finish(child_ctx)

        for child_ctx, thunk in jobs:
            thread = threading.Thread(
                target=runner,
                args=(child_ctx, thunk),
                name=child_ctx.label,
                daemon=False,
            )
            threads.append(thread)
            thread.start()

        if join:
            if ts is not None and threads:
                # The joining parent must not sit on the turnstile token
                # while its children need it; resuming records one turn,
                # mirroring the coop scheduler's join-resume rule.
                ts.pause(ctx)
                for thread in threads:
                    thread.join()
                ts.resume(ctx)
            else:
                for thread in threads:
                    thread.join()
            raise_thread_failures(errors, span, "parallel")
        else:
            with self._bg_monitor:
                self._background.extend(threads)

    def parallel_for_workers(self, n_items: int) -> int:
        workers = self.config.num_workers or os.cpu_count() or 1
        if self.config.detect_races and self.config.num_workers is None:
            # On a 1-core host a single worker would hide the logical
            # concurrency the detector exists to report.
            workers = max(2, workers)
        return max(1, min(workers, n_items))

    def lock(self, ctx, name: str, body: Callable[[], None],
             span: Span = NO_SPAN) -> None:
        plan = self.config.fault_plan
        ts = self._turnstile
        if plan is not None and ts is None:
            # Chaos: widen the race window in front of the critical
            # section.  While recording, the turnstile's own token-free
            # jitter plays this role (a sleep here would hold the token).
            plan.lock_delay(ctx, name)
        on_block = None
        blocked: list = []
        if ts is not None:
            def on_block() -> None:
                # Fires only when the acquire actually waits — an
                # uncontended acquire costs no turn, on any backend.
                blocked.append(True)
                ts.pause(ctx)
        obs = self.obs
        if obs is None:
            self.locks.acquire(name, ctx.id, span, on_block=on_block)
            if blocked:
                ts.resume(ctx)
            try:
                body()
            finally:
                self.locks.release(name, ctx.id)
            return
        contended = self.locks.holder_of(name) is not None
        t_req = obs.clock()
        self.locks.acquire(name, ctx.id, span, on_block=on_block)
        if blocked:
            ts.resume(ctx)
        t_acq = obs.clock()
        try:
            body()
        finally:
            self.locks.release(name, ctx.id)
            obs.lock_span(ctx.id, name, t_req, t_acq, obs.clock(), contended)

    def start_program(self, root_ctx) -> None:
        self.locks.register_thread(root_ctx.id, root_ctx.label)
        # Blocked acquires poll the token so cancellation reaches threads
        # that are waiting on a lock, not just ones executing statements.
        self.locks.cancel = self.config.cancel

    def finish_program(self, root_ctx) -> None:
        ts = self._turnstile
        try:
            if not self.config.wait_for_background:
                return
            if ts is not None:
                # Background threads still need the token to run; the
                # root's trailing join must not starve them.
                ts.pause(root_ctx)
            while True:
                with self._bg_monitor:
                    if not self._background:
                        break
                    thread = self._background.pop()
                thread.join()
            with self._bg_monitor:
                failures = list(self._background_errors)
                self._background_errors.clear()
            raise_thread_failures(failures, NO_SPAN, "background")
        finally:
            if ts is not None:
                # Teardown gate: stop serializing so no thread (on any
                # error path) can hang waiting for a token that will
                # never be released again.
                ts.close(root_ctx)


class SequentialBackend(Backend):
    """Runs parallel constructs sequentially in program order.

    The semantic baseline: any data-race-free Tetra program must produce the
    same answer here as on the thread backend (a property the differential
    tests exercise), and it is also the fastest way to run a program when
    you only care about its output.
    """

    name = "sequential"

    def __init__(self, config: RuntimeConfig | None = None):
        super().__init__(config)
        self._held: list[tuple[object, str]] = []
        self._recorder = self.config.schedule_recorder

    def checkpoint(self, ctx, node) -> None:
        rec = self._recorder
        if rec is not None:
            rec.turn(ctx.label)

    def wants_checkpoints(self) -> bool:
        return self._recorder is not None

    def spawn_group(self, ctx, jobs: Sequence[Job], join: bool,
                    span: Span = NO_SPAN) -> None:
        # Run every child even after one fails, then aggregate — the same
        # report a real parallel group produces on the thread backend (a
        # raw child exception used to escape here with no span or label).
        plan = self.config.fault_plan
        if plan is not None:
            jobs = plan.perturb_jobs(list(jobs))
        failures: list[tuple[str, BaseException]] = []
        for child_ctx, thunk in jobs:
            try:
                thunk()
            except BaseException as exc:  # noqa: BLE001 - aggregated below
                failures.append((child_ctx.label, exc))
        rec = self._recorder
        if rec is not None and join and jobs:
            # On the coop scheduler, resuming from a join costs the parent
            # one turn; synthesize it so sequential recordings line up
            # turn-for-turn with their replay.
            rec.turn(ctx.label)
        raise_thread_failures(failures, span,
                              "parallel" if join else "background")

    def parallel_for_workers(self, n_items: int) -> int:
        workers = self.config.num_workers or 1
        if self.config.detect_races and self.config.num_workers is None:
            workers = 2  # surface logical concurrency to the detector
        return max(1, min(workers, n_items))

    def lock(self, ctx, name: str, body: Callable[[], None],
             span: Span = NO_SPAN) -> None:
        if (ctx.id, name) in self._held:
            raise TetraDeadlockError(
                f"{ctx.label} re-entered 'lock {name}:' it already holds", span
            )
        rec = self._recorder
        if rec is not None:
            rec.grant(name, ctx.label)
        obs = self.obs
        t_acq = obs.clock() if obs is not None else 0.0
        self._held.append((ctx.id, name))
        try:
            body()
        finally:
            self._held.remove((ctx.id, name))
            if obs is not None:
                # Sequential execution never waits: request == acquire.
                obs.lock_span(ctx.id, name, t_acq, t_acq, obs.clock(), False)
