"""Serialization of recorded task graphs.

A :class:`~repro.runtime.taskgraph.Task` tree is plain data; this module
round-trips it through JSON so a recorded workload can be archived,
diffed in review, shared with students, or re-scheduled later on machines
of different widths *without re-interpreting the program* (recording a
large workload costs seconds; scheduling costs milliseconds).

Used by ``tetra sim --save-trace/--load-trace`` and the benchmark suite's
regression fixtures.
"""

from __future__ import annotations

import json

from ..errors import TetraError
from ..source import Span
from .taskgraph import Access, Acquire, Fork, Release, Task, TraceItem, Work

#: Format marker: bump on breaking layout changes.
FORMAT = "tetra-trace/1"


def _item_to_json(item: TraceItem) -> dict:
    if isinstance(item, Work):
        return {"work": item.units}
    if isinstance(item, Acquire):
        return {"acquire": item.name}
    if isinstance(item, Release):
        return {"release": item.name}
    if isinstance(item, Access):
        return {
            "access": item.name,
            "write": item.write,
            "span": [item.span.start, item.span.end,
                     item.span.line, item.span.column],
        }
    if isinstance(item, Fork):
        return {
            "fork": [_task_to_json(c) for c in item.children],
            "join": item.join,
        }
    raise TypeError(f"unknown trace item {item!r}")


def _task_to_json(task: Task) -> dict:
    return {
        "id": task.id,
        "label": task.label,
        "items": [_item_to_json(i) for i in task.items],
    }


def trace_to_json(root: Task) -> str:
    """Serialize a task tree to a JSON string."""
    return json.dumps(
        {"format": FORMAT, "root": _task_to_json(root)},
        indent=2,
    )


def _item_from_json(data: dict) -> TraceItem:
    if "work" in data:
        return Work(int(data["work"]))
    if "acquire" in data:
        return Acquire(str(data["acquire"]))
    if "release" in data:
        return Release(str(data["release"]))
    if "access" in data:
        raw_span = data.get("span") or [0, 0, 0, 0]
        return Access(str(data["access"]), bool(data.get("write", False)),
                      Span(*(int(v) for v in raw_span)))
    if "fork" in data:
        children = [_task_from_json(c) for c in data["fork"]]
        return Fork(children, bool(data.get("join", True)))
    raise TetraError(f"unrecognized trace item {sorted(data)!r}")


def _task_from_json(data: dict) -> Task:
    try:
        task = Task(int(data["id"]), str(data["label"]))
        task.items = [_item_from_json(i) for i in data["items"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise TetraError(f"malformed trace data: {exc}") from exc
    return task


def trace_from_json(text: str) -> Task:
    """Rebuild a task tree from :func:`trace_to_json` output.

    Validates the format marker and id uniqueness so a stale or corrupted
    file fails with a diagnostic instead of a wedged simulation.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TetraError(f"trace file is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise TetraError(
            f"not a Tetra trace file (expected format {FORMAT!r})"
        )
    root = _task_from_json(data["root"])
    ids = [t.id for t in root.walk()]
    if len(ids) != len(set(ids)):
        raise TetraError("trace file has duplicate task ids")
    return root


def save_trace(root: Task, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_json(root))


def load_trace(path: str) -> Task:
    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_json(handle.read())
