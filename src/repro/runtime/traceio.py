"""Serialization of recorded task graphs.

A :class:`~repro.runtime.taskgraph.Task` tree is plain data; this module
round-trips it through JSON so a recorded workload can be archived,
diffed in review, shared with students, or re-scheduled later on machines
of different widths *without re-interpreting the program* (recording a
large workload costs seconds; scheduling costs milliseconds).

Used by ``tetra sim --save-trace/--load-trace`` and the benchmark suite's
regression fixtures.  The format-marker machinery (:func:`check_format`)
is shared with the schedule artifacts of
:mod:`repro.runtime.schedule`: every versioned Tetra file carries a
``"format": "family/N"`` field, and a stale, corrupted, or
newer-than-this-build file fails with a diagnostic that names the file
and the offending field instead of a raw ``KeyError``.
"""

from __future__ import annotations

import json

from ..errors import TetraError
from ..source import Span
from .taskgraph import Access, Acquire, Fork, Release, Task, TraceItem, Work

#: Format family/version: bump the version on breaking layout changes.
TRACE_FORMAT_FAMILY = "tetra-trace"
TRACE_FORMAT_VERSION = 1
FORMAT = f"{TRACE_FORMAT_FAMILY}/{TRACE_FORMAT_VERSION}"


def check_format(data, family: str, version: int,
                 path: str = "<file>") -> None:
    """Validate a ``"format": "family/N"`` marker, distinguishing the
    three ways it can be wrong: not a Tetra file at all, a different kind
    of Tetra file, or a version skew (recorded by a newer or older
    build)."""
    kind = family.split("-", 1)[-1]  # "tetra-trace" -> "trace"
    if not isinstance(data, dict):
        raise TetraError(
            f"{path}: expected a JSON object at the top level, got "
            f"{type(data).__name__} — not a Tetra {kind} file"
        )
    marker = data.get("format")
    expected = f"{family}/{version}"
    if marker == expected:
        return
    if marker is None:
        raise TetraError(
            f"{path}: missing the 'format' field — not a Tetra {kind} "
            f"file (expected format {expected!r})"
        )
    if isinstance(marker, str) and marker.startswith(family + "/"):
        found = marker.split("/", 1)[1]
        try:
            newer = int(found) > version
        except ValueError:
            newer = False
        if newer:
            raise TetraError(
                f"{path}: format {marker!r} was written by a newer Tetra "
                f"than this one (which reads {expected!r}) — upgrade "
                "Tetra, or re-record the file with this version"
            )
        raise TetraError(
            f"{path}: format {marker!r} is an old layout this Tetra no "
            f"longer reads (expected {expected!r}) — re-record the file"
        )
    raise TetraError(
        f"{path}: field 'format' is {marker!r} — not a Tetra {kind} "
        f"file (expected {expected!r})"
    )


def _item_to_json(item: TraceItem) -> dict:
    if isinstance(item, Work):
        return {"work": item.units}
    if isinstance(item, Acquire):
        return {"acquire": item.name}
    if isinstance(item, Release):
        return {"release": item.name}
    if isinstance(item, Access):
        return {
            "access": item.name,
            "write": item.write,
            "span": [item.span.start, item.span.end,
                     item.span.line, item.span.column],
        }
    if isinstance(item, Fork):
        return {
            "fork": [_task_to_json(c) for c in item.children],
            "join": item.join,
        }
    raise TypeError(f"unknown trace item {item!r}")


def _task_to_json(task: Task) -> dict:
    return {
        "id": task.id,
        "label": task.label,
        "items": [_item_to_json(i) for i in task.items],
    }


def trace_to_json(root: Task) -> str:
    """Serialize a task tree to a JSON string."""
    return json.dumps(
        {"format": FORMAT, "root": _task_to_json(root)},
        indent=2,
    )


def _item_from_json(data, path: str) -> TraceItem:
    if not isinstance(data, dict):
        raise TetraError(
            f"{path}: malformed trace — a task item should be an object, "
            f"got {type(data).__name__}"
        )
    try:
        if "work" in data:
            return Work(int(data["work"]))
        if "acquire" in data:
            return Acquire(str(data["acquire"]))
        if "release" in data:
            return Release(str(data["release"]))
        if "access" in data:
            raw_span = data.get("span") or [0, 0, 0, 0]
            return Access(str(data["access"]),
                          bool(data.get("write", False)),
                          Span(*(int(v) for v in raw_span)))
        if "fork" in data:
            children = [_task_from_json(c, path) for c in data["fork"]]
            return Fork(children, bool(data.get("join", True)))
    except TetraError:
        raise
    except (TypeError, ValueError) as exc:
        field = sorted(data)[0] if data else "?"
        raise TetraError(
            f"{path}: malformed trace — bad value in item field "
            f"{field!r}: {exc}"
        ) from exc
    raise TetraError(
        f"{path}: malformed trace — unrecognized trace item with fields "
        f"{sorted(data)!r}"
    )


def _task_from_json(data, path: str) -> Task:
    if not isinstance(data, dict):
        raise TetraError(
            f"{path}: malformed trace — a task record should be an "
            f"object, got {type(data).__name__}"
        )
    for field in ("id", "label", "items"):
        if field not in data:
            raise TetraError(
                f"{path}: malformed trace — task record is missing the "
                f"field {field!r}"
            )
    try:
        task = Task(int(data["id"]), str(data["label"]))
    except (TypeError, ValueError) as exc:
        raise TetraError(
            f"{path}: malformed trace — bad value in task field 'id': "
            f"{exc}"
        ) from exc
    items = data["items"]
    if not isinstance(items, list):
        raise TetraError(
            f"{path}: malformed trace — task field 'items' should be a "
            f"list, got {type(items).__name__}"
        )
    task.items = [_item_from_json(i, path) for i in items]
    return task


def trace_from_json(text: str, path: str = "<trace>") -> Task:
    """Rebuild a task tree from :func:`trace_to_json` output.

    Validates the format marker, the record layout, and id uniqueness so
    a stale or corrupted file fails with a diagnostic naming the file and
    the offending field instead of a wedged simulation."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TetraError(
            f"{path}: trace file is not valid JSON: {exc}"
        ) from exc
    check_format(data, TRACE_FORMAT_FAMILY, TRACE_FORMAT_VERSION, path)
    if "root" not in data:
        raise TetraError(
            f"{path}: malformed trace — missing the 'root' task"
        )
    root = _task_from_json(data["root"], path)
    ids = [t.id for t in root.walk()]
    if len(ids) != len(set(ids)):
        raise TetraError(f"{path}: trace file has duplicate task ids")
    return root


def save_trace(root: Task, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_json(root))


def load_trace(path: str) -> Task:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise TetraError(
            f"cannot read trace file {path}: {exc.strerror or exc}"
        ) from exc
    return trace_from_json(text, path)
