"""The model multicore machine: schedules a recorded task graph.

A deterministic discrete-event simulation places tasks from a
:class:`~repro.runtime.taskgraph.Task` tree onto ``cores`` model cores:

* Greedy, non-preemptive list scheduling (FIFO ready queue) — the classic
  Graham-style scheduler whose makespan is within 2× of optimal and matches
  how an OS schedules CPU-bound threads closely enough for speedup shapes.
* Lock constraints serialize critical sections (FIFO per lock).
* A *sharing tax* inflates work while several cores are busy, modelling the
  contention on shared interpreter structures the paper blames for its
  62.5% efficiency.

Determinism: ties break on task creation order, so a given trace and core
count always yield the same makespan — a property the test suite pins down.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from ..errors import TetraDeadlockError
from .cost import DEFAULT_COST_MODEL, CostModel
from .taskgraph import Access, Acquire, Fork, Release, Task, Work


@dataclass
class TaskRun:
    """Mutable per-task scheduling state."""

    task: Task
    pc: int = 0                      # index into task.items
    core: int | None = None          # core currently held (for the timeline)
    parent: "TaskRun | None" = None
    #: Ids of the children the current join is waiting on (None otherwise).
    #: Tracked per fork so a finished *background* child can never satisfy
    #: an unrelated join.
    join_group: "set[int] | None" = None
    waiting_join: bool = False
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def finished(self) -> bool:
        return self.finished_at is not None


@dataclass(frozen=True)
class TimelineSegment:
    """One contiguous run of a task on a core (for Gantt rendering)."""

    core: int
    start: float
    end: float
    task_id: int
    label: str


@dataclass
class ScheduleResult:
    """Everything a benchmark wants to report about one simulated run."""

    cores: int
    makespan: float
    total_work: int
    task_count: int
    critical_path: int
    core_busy_time: float
    lock_wait_time: float = 0.0
    per_task_finish: dict[int, float] = field(default_factory=dict)
    timeline: list[TimelineSegment] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Fraction of core-seconds spent computing (0..1)."""
        if self.makespan <= 0:
            return 1.0
        return self.core_busy_time / (self.makespan * self.cores)

    def speedup_against(self, baseline: "ScheduleResult") -> float:
        if self.makespan <= 0:
            return float("inf")
        return baseline.makespan / self.makespan

    def efficiency_against(self, baseline: "ScheduleResult") -> float:
        return self.speedup_against(baseline) / self.cores


class Machine:
    """A model multicore executing one recorded task graph."""

    def __init__(self, cores: int, cost_model: CostModel = DEFAULT_COST_MODEL):
        if cores < 1:
            raise ValueError("a machine needs at least one core")
        self.cores = cores
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    def run(self, root: Task) -> ScheduleResult:
        runs: dict[int, TaskRun] = {t.id: TaskRun(t) for t in root.walk()}
        # Wire parent pointers for join bookkeeping.
        for task in root.walk():
            for item in task.items:
                if isinstance(item, Fork):
                    for child in item.children:
                        runs[child.id].parent = runs[task.id]

        clock = 0.0
        seq = 0
        ready: deque[TaskRun] = deque([runs[root.id]])
        running: list[tuple[float, int, TaskRun]] = []  # heap of work-finish events
        cores_busy = 0
        free_cores = list(range(self.cores))
        heapq.heapify(free_cores)
        timeline: list[TimelineSegment] = []
        live = 1  # spawned-and-unfinished tasks (root is live at start)
        busy_time = 0.0
        lock_wait_time = 0.0
        lock_owner: dict[str, TaskRun] = {}
        lock_waiters: dict[str, deque[tuple[TaskRun, float]]] = {}
        unfinished = len(runs)

        tax = self.cost_model.sharing_tax_percent / 100.0

        def work_duration(units: int) -> float:
            """Inflate work by the sharing tax while several cores are busy."""
            active = max(1, min(live, self.cores))
            return units * (1.0 + tax * (active - 1))

        def advance(run: TaskRun) -> bool:
            """Advance ``run`` while it holds a core.  Returns True if it is
            still running (a work-finish event was scheduled); False if it
            blocked or finished (core released by caller)."""
            nonlocal seq, live, unfinished, busy_time
            while run.pc < len(run.task.items):
                item = run.task.items[run.pc]
                if isinstance(item, Work):
                    duration = work_duration(item.units)
                    busy_time += duration
                    seq += 1
                    timeline.append(TimelineSegment(
                        run.core if run.core is not None else -1,
                        clock, clock + duration, run.task.id, run.task.label,
                    ))
                    heapq.heappush(running, (clock + duration, seq, run))
                    return True
                if isinstance(item, Acquire):
                    owner = lock_owner.get(item.name)
                    if owner is None:
                        lock_owner[item.name] = run
                        run.pc += 1
                        continue
                    lock_waiters.setdefault(item.name, deque()).append((run, clock))
                    return False
                if isinstance(item, Release):
                    del lock_owner[item.name]
                    waiters = lock_waiters.get(item.name)
                    if waiters:
                        next_run, since = waiters.popleft()
                        nonlocal_lock_wait(clock - since)
                        lock_owner[item.name] = next_run
                        next_run.pc += 1  # past its Acquire
                        ready.append(next_run)
                    run.pc += 1
                    continue
                if isinstance(item, Access):
                    # Race-detection annotations carry no scheduling cost.
                    run.pc += 1
                    continue
                if isinstance(item, Fork):
                    run.pc += 1
                    for child in item.children:
                        child_run = runs[child.id]
                        live += 1
                        ready.append(child_run)
                    if item.join:
                        pending = {
                            c.id for c in item.children
                            if not runs[c.id].finished
                        }
                        if pending:
                            run.join_group = pending
                            run.waiting_join = True
                            return False
                    continue
                raise AssertionError(f"unknown trace item {item!r}")
            # Trace exhausted: the task is done.
            run.finished_at = clock
            live -= 1
            unfinished -= 1
            parent = run.parent
            if (parent is not None and parent.waiting_join
                    and parent.join_group and run.task.id in parent.join_group):
                parent.join_group.discard(run.task.id)
                if not parent.join_group:
                    parent.join_group = None
                    parent.waiting_join = False
                    ready.append(parent)
            return False

        def nonlocal_lock_wait(amount: float) -> None:
            nonlocal lock_wait_time
            lock_wait_time += amount

        while True:
            # Fill free cores from the ready queue.
            while ready and cores_busy < self.cores:
                run = ready.popleft()
                if run.started_at is None:
                    run.started_at = clock
                cores_busy += 1
                run.core = heapq.heappop(free_cores)
                if not advance(run):
                    cores_busy -= 1
                    heapq.heappush(free_cores, run.core)
                    run.core = None
            if not running:
                break
            finish_time, _, run = heapq.heappop(running)
            clock = finish_time
            run.pc += 1  # past the Work item that just completed
            if not advance(run):
                cores_busy -= 1
                heapq.heappush(free_cores, run.core)
                run.core = None

        if unfinished:
            stuck = sorted(
                r.task.label for r in runs.values() if not r.finished
            )
            raise TetraDeadlockError(
                "the simulated machine wedged: tasks "
                + ", ".join(stuck)
                + " can never run — two threads acquire the same locks in "
                "opposite orders"
            )

        return ScheduleResult(
            cores=self.cores,
            makespan=clock,
            total_work=root.subtree_work(),
            task_count=root.task_count(),
            critical_path=root.critical_path(),
            core_busy_time=busy_time,
            lock_wait_time=lock_wait_time,
            per_task_finish={
                tid: run.finished_at for tid, run in runs.items()
                if run.finished_at is not None
            },
            timeline=timeline,
        )


def speedup_curve(root: Task, core_counts: list[int],
                  cost_model: CostModel = DEFAULT_COST_MODEL
                  ) -> dict[int, ScheduleResult]:
    """Schedule the same trace on machines of several widths.

    The 1-core baseline, if absent from ``core_counts``, is added — speedup
    and efficiency are conventionally reported against it.
    """
    counts = sorted(set(core_counts) | {1})
    return {m: Machine(m, cost_model).run(root) for m in counts}
