"""The virtual-time backend: record once, schedule on any machine width.

``SimBackend`` executes the program *sequentially* (so it is deterministic
and runs fine on a 1-core host) while charging every interpreted operation
to the would-be thread that performs it, producing a task graph.  The graph
is then placed on a :class:`~repro.runtime.machine.Machine` of any core
count to obtain virtual makespans — the substitution that regenerates the
paper's 8-core speedup evaluation (DESIGN.md §2, §4).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import TetraDeadlockError
from ..source import NO_SPAN, Span
from .backend import Backend, Job, RuntimeConfig, raise_thread_failures
from .cost import DEFAULT_COST_MODEL, CostModel
from .machine import Machine, ScheduleResult, speedup_curve
from .taskgraph import Task, TraceRecorder


class SimBackend(Backend):
    """Sequential execution + task-graph recording + machine-model timing."""

    accounting = True
    virtual_clock = True
    name = "sim"

    def __init__(self, cores: int = 8, cost_model: CostModel = DEFAULT_COST_MODEL,
                 config: RuntimeConfig | None = None):
        super().__init__(config)
        self.cores = cores
        self.cost_model = cost_model
        self.recorder = TraceRecorder()
        #: Schedule recorder (distinct from the task-graph recorder above):
        #: sim runs children inline in spawn order, so the schedule artifact
        #: is simply that sequential order plus synthetic join-resume turns
        #: matching the coop scheduler's accounting.
        self._schedule_rec = self.config.schedule_recorder

    # ------------------------------------------------------------------
    # Recording hooks
    # ------------------------------------------------------------------
    def checkpoint(self, ctx, node) -> None:
        rec = self._schedule_rec
        if rec is not None:
            rec.turn(ctx.label)

    def wants_checkpoints(self) -> bool:
        return self._schedule_rec is not None

    def now(self) -> float:
        """Virtual time for the task currently recording: ``clock()``
        deltas under this backend equal the cost units charged between the
        two readings, not host wall time."""
        return float(self.recorder.virtual_now())

    def charge(self, ctx, units: int) -> None:
        self.recorder.charge(units)
        if self.obs is not None:
            self.obs.charge_units(ctx.id, units)

    def record_access(self, ctx, name: str, write: bool,
                      span: Span = NO_SPAN) -> None:
        # Only called while race detection is on; the trace then doubles as
        # input for repro.analysis.races.replay_trace.
        self.recorder.access(name, write, span)

    def spawn_group(self, ctx, jobs: Sequence[Job], join: bool,
                    span: Span = NO_SPAN) -> None:
        plan = self.config.fault_plan
        if plan is not None:
            # Seeded shuffle of the children: a deterministic way to flip
            # order-dependent results under `tetra stress`.
            jobs = plan.perturb_jobs(list(jobs))
        cm = self.cost_model
        self.recorder.charge(cm.thread_spawn * len(jobs))
        children = self.recorder.begin_fork(
            [child_ctx.label for child_ctx, _ in jobs], join
        )
        # Aggregate child failures exactly like the thread backend would,
        # instead of letting the first child's raw exception tear through
        # the recording (which also kept later siblings from running).
        failures = []
        for child_task, (child_ctx, thunk) in zip(children, jobs):
            self.recorder.enter_child(child_task)
            try:
                thunk()
            except BaseException as exc:  # noqa: BLE001 - aggregated below
                failures.append((child_ctx.label, exc))
            finally:
                self.recorder.exit_child()
        if join:
            self.recorder.charge(cm.thread_join * len(jobs))
        rec = self._schedule_rec
        if rec is not None and join and jobs:
            # Coop parents pay one turn to resume from a join; synthesize
            # the same turn here so replayed turn sequences line up.
            rec.turn(ctx.label)
        raise_thread_failures(failures, span,
                              "parallel" if join else "background")

    def parallel_for_workers(self, n_items: int) -> int:
        workers = self.config.num_workers or self.cores
        return max(1, min(workers, n_items))

    def lock(self, ctx, name: str, body: Callable[[], None],
             span: Span = NO_SPAN) -> None:
        cm = self.cost_model
        obs = self.obs
        t_req = self.now() if obs is not None else 0.0
        self.recorder.charge(cm.lock_acquire)
        if not self.recorder.acquire(name):
            raise TetraDeadlockError(
                f"{ctx.label} re-entered 'lock {name}:' it already holds — "
                "Tetra locks are not re-entrant",
                span,
            )
        rec = self._schedule_rec
        if rec is not None:
            rec.grant(name, ctx.label)
        t_acq = self.now() if obs is not None else 0.0
        try:
            body()
        finally:
            self.recorder.release(name)
            self.recorder.charge(cm.lock_release)
            if obs is not None:
                # Recording is sequential; modelled waiting appears in the
                # machine schedule, not here.
                obs.lock_span(ctx.id, name, t_req, t_acq, self.now(), False)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def trace(self) -> Task:
        """The recorded task graph (valid after the program has run)."""
        return self.recorder.root

    def schedule(self, cores: int | None = None) -> ScheduleResult:
        """Place the recorded graph on a machine of ``cores`` model cores."""
        machine = Machine(cores or self.cores, self.cost_model)
        return machine.run(self.trace)

    def speedups(self, core_counts: list[int]) -> dict[int, ScheduleResult]:
        """Schedule the same trace at several widths (1-core baseline added)."""
        return speedup_curve(self.trace, core_counts, self.cost_model)
