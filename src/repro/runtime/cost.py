"""Cost model for the virtual-time machine simulation (``SimBackend``).

The original evaluation ran the C++ interpreter on an 8-core machine.  We
reproduce the *shape* of that result by charging every interpreted operation
a cost in abstract work units and scheduling the resulting task graph on a
model machine (see ``repro.runtime.machine``).  Costs are relative — only
ratios matter for speedup curves — and the defaults approximate a
tree-walking interpreter, where every node visit costs about the same and
calls/spawns are markedly more expensive.

``CostModel`` also carries the *parallelism overheads* (thread spawn/join,
lock acquire/release) that make efficiency drop below 100%: the paper
reports 62.5% efficiency at 8 cores, and attributes the loss to sharing of
interpreter data structures — which behaves exactly like a per-operation
synchronization tax plus spawn/join costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Abstract work units charged per interpreted operation."""

    # Expression costs
    literal: int = 1
    name_load: int = 1
    name_store: int = 1
    binop: int = 2
    unary: int = 1
    index_load: int = 2
    index_store: int = 2
    call_overhead: int = 8       # frame setup + argument binding
    builtin_overhead: int = 4
    array_element: int = 1       # per element when materializing literals/ranges

    # Statement costs
    statement: int = 1           # dispatch cost per executed statement
    branch: int = 1
    loop_iteration: int = 1

    # Parallelism overheads (the efficiency killers)
    thread_spawn: int = 220      # create + start one interpreter thread
    thread_join: int = 60        # join one child
    lock_acquire: int = 12
    lock_release: int = 8
    #: Per-work-unit tax modelling contention on shared interpreter
    #: structures (the paper: "Due to the sharing of data structures amongst
    #: interpreter threads, this was not easy" — i.e. synchronization is
    #: sprinkled through the hot path).  Applied only to work done while more
    #: than one task is live; expressed in percent.
    sharing_tax_percent: int = 4

    def scaled(self, factor: float) -> "CostModel":
        """A model with all *overheads* scaled by ``factor`` (ablation knob)."""
        return replace(
            self,
            thread_spawn=max(0, round(self.thread_spawn * factor)),
            thread_join=max(0, round(self.thread_join * factor)),
            lock_acquire=max(0, round(self.lock_acquire * factor)),
            lock_release=max(0, round(self.lock_release * factor)),
        )


#: Default model used by benchmarks unless overridden.
DEFAULT_COST_MODEL = CostModel()

#: A zero-overhead model: speedup limited only by workload structure
#: (ideal-machine ablation baseline).
FREE_PARALLELISM = CostModel(
    thread_spawn=0, thread_join=0, lock_acquire=0, lock_release=0,
    sharing_tax_percent=0,
)
