"""Schedule record/replay: turn any run into a reproducible artifact.

``tetra stress`` can tell a student that seed 7 on the thread backend
deadlocked or printed the wrong sum — but until now the evidence
evaporated with the run.  This module records *the decisions that
determine an interleaving* and replays them deterministically:

* **Turns** — the serialized order in which threads executed statements
  (and resumed from lock/join blocks).  On the deterministic backends
  this is simply the scheduler's own grant order; on the thread backend a
  :class:`Turnstile` serializes execution at statement granularity while
  chaos jitter still decides *which* interleaving happens, so the
  recorded run is an honest sample of the schedule space.
* **Lock grants** — the per-lock order in which threads won each lock,
  including barging (a later requester overtaking parked waiters).
* **Parallel-for shapes** — worker count per ``parallel for`` execution,
  so replay partitions the iteration space exactly as the recorded run
  did (including multiprocess offloads on the proc backend).
* **Faults** — the chaos seed; semantically visible injected faults
  (thread faults) are re-drawn from the same dedicated RNG stream in the
  same program order, so they land on the same threads.

The artifact is versioned JSON (``tetra-schedule/1``) embedding the
source text and the recorded ground truth (output, race fingerprints,
fault counts, final status), and it replays on the **coop** scheduler via
:class:`~repro.runtime.coop.ReplayPolicy` — one recorded turn per
scheduler grant — which also makes every recorded schedule a steppable
debugger session (``DebugSession(..., replay=...)``).

Granularity contract: record/replay captures *statement-level*
interleavings — the same granularity the cooperative scheduler (and the
paper's lesson scripts) use.  Sub-statement OS races (two threads inside
one ``x = x + 1``) are serialized by the recording turnstile; the race
*detector* still reports them, because it judges logical concurrency,
not timing.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time

from ..errors import TetraError

#: Format family/version for the schedule artifact; bump the version on
#: breaking layout changes (see :func:`repro.runtime.traceio.check_format`).
SCHEDULE_FORMAT_FAMILY = "tetra-schedule"
SCHEDULE_FORMAT_VERSION = 1
SCHEDULE_FORMAT = f"{SCHEDULE_FORMAT_FAMILY}/{SCHEDULE_FORMAT_VERSION}"

#: Cap on recorded turns; beyond it the artifact is marked truncated and
#: refuses to replay (a partial schedule would silently diverge).
MAX_TURNS = 500_000


class ScheduleRecorder:
    """Collects one run's scheduling decisions (thread-safe, append-only).

    Backends call :meth:`turn` once per consumed scheduler turn — one
    executed statement or one resumption from a lock/join block — and
    :meth:`grant` every time a lock changes hands.  The interpreter calls
    :meth:`pfor` once per ``parallel for`` execution with the worker
    count it actually used.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self.turns: list[str] = []
        self.grants: list[tuple[str, str]] = []
        self.pfors: list[dict] = []
        self.truncated = False

    def turn(self, label: str) -> None:
        with self._mu:
            if len(self.turns) >= MAX_TURNS:
                self.truncated = True
                return
            self.turns.append(label)

    def grant(self, name: str, label: str) -> None:
        with self._mu:
            self.grants.append((name, label))

    def pfor(self, line: int, items: int, workers: int,
             offloaded: bool = False) -> None:
        with self._mu:
            self.pfors.append({
                "line": int(line),
                "items": int(items),
                "workers": int(workers),
                "offloaded": bool(offloaded),
            })


class Turnstile:
    """Statement-granular serialization of the thread backend while
    recording.

    One token lock: a thread may only execute the statement after its
    checkpoint while holding the token, so the recorded turn order *is*
    the execution order.  Between release and re-acquire the holder
    yields (with chaos jitter when a :class:`FaultPlan` is present), so
    the OS — and the seed — still pick which thread wins the next turn;
    recording explores real interleavings, it does not flatten them to
    round-robin.

    Threads that block (lock waits, joins) :meth:`pause` first so they
    never hold the token while parked; :meth:`resume` re-acquires and
    records the resumption as one turn, mirroring the coop scheduler's
    "resuming costs a turn" rule.  :meth:`close` is the abort/teardown
    gate: it stops serialization so error paths never hang a thread on
    the token of a program that already unwound.
    """

    def __init__(self, recorder: ScheduleRecorder, plan=None):
        self._token = threading.Lock()
        self._mu = threading.Lock()
        self._holder: object = None
        self._dead = False
        self._recorder = recorder
        self._plan = plan

    # ------------------------------------------------------------------
    def step(self, ctx) -> None:
        """One statement boundary: yield, (jitter), re-acquire, record."""
        if self._dead:
            return
        self._release_if_holder(ctx)
        plan = self._plan
        if plan is not None:
            # Token-free jitter: the sleep happens while nobody holds the
            # token, which is what lets another thread barge in and take
            # the next turn — the seed's way of varying the schedule.
            plan.maybe_preempt(ctx)
        else:
            time.sleep(0)
        if self._acquire(ctx):
            self._recorder.turn(ctx.label)

    def pause(self, ctx) -> None:
        """Give up the token around a blocking operation (lock wait, join)."""
        self._release_if_holder(ctx)

    def resume(self, ctx) -> None:
        """Re-acquire after a blocking operation; the resumption is a turn."""
        if self._dead:
            return
        if self._acquire(ctx):
            self._recorder.turn(ctx.label)

    def finish(self, ctx) -> None:
        """A thread is done (or unwinding): release the token if held."""
        self._release_if_holder(ctx)

    def close(self, ctx=None) -> None:
        """End of program or abort: stop serializing, wake waiters."""
        with self._mu:
            self._dead = True
            if ctx is not None and self._holder == ctx.id:
                self._holder = None
                self._token.release()

    # ------------------------------------------------------------------
    def _release_if_holder(self, ctx) -> None:
        with self._mu:
            if self._holder == ctx.id:
                self._holder = None
                self._token.release()

    def _acquire(self, ctx) -> bool:
        while not self._token.acquire(timeout=0.05):
            if self._dead:
                return False
        if self._dead:
            self._token.release()
            return False
        with self._mu:
            self._holder = ctx.id
        return True


# ----------------------------------------------------------------------
# The artifact
# ----------------------------------------------------------------------
def race_fingerprints(races) -> list[list]:
    """Schedule-independent fingerprints for race reports, sorted so two
    runs that observed the same races compare equal regardless of
    detection order."""
    prints = []
    for r in races:
        prints.append([
            r.variable,
            r.first.thread, r.first.kind, r.first.span.line,
            r.second.thread, r.second.kind, r.second.span.line,
        ])
    return sorted(prints)


def source_sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def build_artifact(recorder: ScheduleRecorder, *, source_text: str,
                   name: str, entry: str, backend_name: str, config,
                   inputs: list[str] | None, output: str, status: str,
                   races, fault_counts: dict) -> dict:
    """Assemble the versioned artifact for one recorded run."""
    plan = config.fault_plan
    fault_plan = None
    if plan is not None:
        fault_plan = {
            "preempt_prob": plan.preempt_prob,
            "max_preempt_ms": plan.max_preempt_ms,
            "lock_delay_prob": plan.lock_delay_prob,
            "max_lock_delay_ms": plan.max_lock_delay_ms,
            "thread_fault_prob": plan.thread_fault_prob,
        }
    return {
        "format": SCHEDULE_FORMAT,
        "name": name,
        "entry": entry,
        "backend": backend_name,
        "chaos_seed": plan.seed if plan is not None else config.chaos_seed,
        "fault_plan": fault_plan,
        "detect_races": bool(config.detect_races),
        "num_workers": config.num_workers,
        "chunking": config.chunking,
        "inputs": list(inputs or []),
        "source": source_text,
        "source_sha256": source_sha256(source_text),
        "truncated": recorder.truncated,
        "turns": list(recorder.turns),
        "lock_grants": [[name, label] for name, label in recorder.grants],
        "parallel_fors": list(recorder.pfors),
        "recorded": {
            "status": status,
            "output": output,
            "races": race_fingerprints(races),
            "fault_counts": dict(fault_counts),
        },
    }


def _want(data: dict, key: str, types, path: str, where: str = "schedule"):
    """Fetch a required field, naming the file and field on failure."""
    if key not in data:
        raise TetraError(
            f"{path}: malformed {where} — missing field {key!r}"
        )
    value = data[key]
    if types is not None and not isinstance(value, types):
        expected = getattr(types, "__name__", None) or \
            "/".join(t.__name__ for t in types)
        raise TetraError(
            f"{path}: malformed {where} — field {key!r} should be "
            f"{expected}, got {type(value).__name__}"
        )
    return value


class Schedule:
    """One parsed schedule artifact, validated field by field."""

    def __init__(self, data: dict, path: str = "<schedule>"):
        from .traceio import check_format

        check_format(data, SCHEDULE_FORMAT_FAMILY, SCHEDULE_FORMAT_VERSION,
                     path)
        self.path = path
        self.name = str(data.get("name", "<schedule>"))
        self.entry = str(data.get("entry", "main"))
        self.backend = str(_want(data, "backend", str, path))
        self.chaos_seed = data.get("chaos_seed")
        if self.chaos_seed is not None and \
                not isinstance(self.chaos_seed, int):
            raise TetraError(
                f"{path}: malformed schedule — field 'chaos_seed' should "
                f"be an integer or null, got "
                f"{type(self.chaos_seed).__name__}"
            )
        self.fault_knobs = data.get("fault_plan")
        if self.fault_knobs is not None and \
                not isinstance(self.fault_knobs, dict):
            raise TetraError(
                f"{path}: malformed schedule — field 'fault_plan' should "
                f"be an object or null, got "
                f"{type(self.fault_knobs).__name__}"
            )
        self.detect_races = bool(data.get("detect_races", False))
        self.num_workers = data.get("num_workers")
        self.chunking = str(data.get("chunking", "block"))
        self.inputs = [str(x) for x in _want(data, "inputs", list, path)]
        self.source = _want(data, "source", str, path)
        self.source_sha256 = str(data.get("source_sha256", ""))
        if bool(data.get("truncated", False)):
            raise TetraError(
                f"{path}: this schedule was truncated at {MAX_TURNS} turns "
                "while recording — a partial schedule cannot replay "
                "faithfully"
            )
        turns = _want(data, "turns", list, path)
        if not all(isinstance(t, str) for t in turns):
            raise TetraError(
                f"{path}: malformed schedule — field 'turns' should be a "
                "list of thread labels (strings)"
            )
        self.turns: list[str] = list(turns)
        self.grants: list[tuple[str, str]] = []
        for i, pair in enumerate(_want(data, "lock_grants", list, path)):
            if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                    or not all(isinstance(p, str) for p in pair)):
                raise TetraError(
                    f"{path}: malformed schedule — entry {i} of "
                    "'lock_grants' should be a [lock, thread-label] pair"
                )
            self.grants.append((pair[0], pair[1]))
        self.pfors: list[dict] = []
        for i, rec in enumerate(_want(data, "parallel_fors", list, path)):
            if not isinstance(rec, dict) or "workers" not in rec:
                raise TetraError(
                    f"{path}: malformed schedule — entry {i} of "
                    "'parallel_fors' should be an object with a "
                    "'workers' field"
                )
            self.pfors.append(rec)
        recorded = _want(data, "recorded", dict, path)
        self.recorded_status = str(recorded.get("status", "ok"))
        self.recorded_output = str(
            _want(recorded, "output", str, path, "schedule 'recorded'")
        )
        self.recorded_races = [
            list(r) for r in recorded.get("races", [])
        ]
        self.recorded_fault_counts = dict(recorded.get("fault_counts", {}))

    def make_fault_plan(self):
        """Reconstruct the recorded run's fault plan — same seed, same
        knobs — so a replay re-injects the same thread faults (None when
        the recording ran without chaos)."""
        if self.chaos_seed is None:
            return None
        from ..resilience import FaultPlan

        return FaultPlan(self.chaos_seed, **(self.fault_knobs or {}))


def save_schedule(artifact: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def parse_schedule(data, path: str = "<schedule>") -> Schedule:
    """Validate raw JSON data (or pass a :class:`Schedule` through)."""
    if isinstance(data, Schedule):
        return data
    if not isinstance(data, dict):
        raise TetraError(
            f"{path}: a schedule artifact must be a JSON object, got "
            f"{type(data).__name__}"
        )
    return Schedule(data, path)


def load_schedule(path: str) -> Schedule:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise TetraError(
            f"cannot read schedule file {path}: {exc.strerror or exc}"
        ) from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TetraError(
            f"{path}: schedule file is not valid JSON: {exc}"
        ) from exc
    return parse_schedule(data, path)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
class ReplayReport:
    """How faithfully a replay reproduced its recording."""

    def __init__(self, schedule: Schedule, result, policy) -> None:
        self.schedule = schedule
        self.output_match = (result.output == schedule.recorded_output)
        self.races_match = (
            race_fingerprints(result.races) == schedule.recorded_races
        )
        # Timing faults (preempt, lock-delay) are *subsumed* by the
        # schedule — their effect is the interleaving itself, which the
        # turns reproduce.  Only semantically visible faults must recur.
        seen = result.fault_counts.get("thread-fault", 0)
        want = schedule.recorded_fault_counts.get("thread-fault", 0)
        self.faults_match = (seen == want)
        self.status_match = (
            (result.aborted_by or "ok") == schedule.recorded_status
        )
        self.matched_turns = getattr(policy, "matched_turns", 0)
        self.fallback_turns = getattr(policy, "fallback_turns", 0)
        self.pending_turns = len(getattr(policy, "script", ()))

    @property
    def faithful(self) -> bool:
        return (self.output_match and self.races_match
                and self.faults_match and self.status_match)

    def render(self) -> str:
        ok = "byte-identical" if self.faithful else "DIVERGED"
        parts = [
            f"replay of {self.schedule.path} "
            f"(recorded on {self.schedule.backend}): {ok}",
            f"  output:  {'match' if self.output_match else 'differs'}",
            f"  races:   {'match' if self.races_match else 'differ'}",
            f"  faults:  {'match' if self.faults_match else 'differ'}",
            f"  status:  {'match' if self.status_match else 'differs'} "
            f"(recorded: {self.schedule.recorded_status})",
            f"  turns:   {self.matched_turns} replayed, "
            f"{self.fallback_turns} filled in, "
            f"{self.pending_turns} unused",
        ]
        return "\n".join(parts)


def replay_schedule(schedule, *, trace: bool = False, metrics: bool = False,
                    record_schedule: bool = False, cache: bool = True,
                    time_limit: float = 0.0):
    """Replay a recorded schedule on the coop scheduler.

    ``schedule`` is a :class:`Schedule`, a raw artifact dict, or a path.
    Returns a normal :class:`~repro.api.RunResult` (``on_error="return"``
    semantics, so a replayed deadlock lands in ``result.error``) with a
    :class:`ReplayReport` attached as ``result.replay``.
    """
    from ..api import run_source  # late: api imports the runtime package

    if isinstance(schedule, str):
        schedule = load_schedule(schedule)
    else:
        schedule = parse_schedule(schedule)
    return run_source(
        schedule.source, inputs=list(schedule.inputs), backend="coop",
        name=schedule.name, entry=schedule.entry,
        detect_races=schedule.detect_races, cache=cache,
        trace=trace, metrics=metrics, time_limit=time_limit,
        record_schedule=record_schedule, replay=schedule,
        on_error="return",
    )
