"""Runtime values for the Tetra interpreter.

Primitives map onto Python primitives (``int``, ``float``, ``str``,
``bool``) so arithmetic stays fast; arrays are :class:`TetraArray`, a typed,
bounds-checked, mutable sequence — the one place where an educational
language must be stricter than raw Python lists (negative indices and silent
growth would hide bugs the paper wants students to see).

This module also centralizes the C-flavoured numeric semantics the paper
implies (``mid = len(nums) / 2`` on ints must truncate): :func:`int_div`,
:func:`int_mod`, and :func:`tetra_pow`.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from ..errors import TetraIndexError, TetraZeroDivisionError
from ..source import NO_SPAN, Span
from ..types import (
    BOOL,
    INT,
    REAL,
    STRING,
    ArrayType,
    ClassType,
    DictType,
    TupleType,
    Type,
)

#: The Python-level type of any Tetra runtime value.
Value = object


class TetraArray:
    """A mutable, fixed-length, homogeneously typed array.

    ``element_type`` is carried for runtime introspection (``str()`` of
    nested arrays, the debugger's variable pane) and for copy-on-construct
    coercion of int values into real arrays.
    """

    # __weakref__ lets the resilience HeapMeter attach a finalizer without
    # giving up the slotted layout (same for the other containers below).
    __slots__ = ("items", "element_type", "__weakref__")

    def __init__(self, items: Iterable[Value], element_type: Type):
        self.items: list[Value] = list(items)
        self.element_type = element_type

    # -- sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.items)

    def _check_index(self, index: int, span: Span) -> int:
        if not 0 <= index < len(self.items):
            raise TetraIndexError(
                f"index {index} is out of range for an array of length "
                f"{len(self.items)} (valid indexes are 0 through "
                f"{len(self.items) - 1})",
                span,
            )
        return index

    def get(self, index: int, span: Span = NO_SPAN) -> Value:
        return self.items[self._check_index(index, span)]

    def set(self, index: int, value: Value, span: Span = NO_SPAN) -> None:
        self.items[self._check_index(index, span)] = value

    # -- equality and display ----------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TetraArray):
            return NotImplemented
        return self.items == other.items

    def __hash__(self):  # arrays are mutable
        raise TypeError("Tetra arrays are not hashable")

    def __repr__(self) -> str:
        return f"TetraArray({self.items!r}, {self.element_type})"


class TetraTuple:
    """An immutable fixed-arity tuple value."""

    __slots__ = ("items", "__weakref__")

    def __init__(self, items):
        self.items: tuple = tuple(items)

    def __len__(self) -> int:
        return len(self.items)

    def get(self, index: int, span: Span = NO_SPAN):
        # The checker guarantees constant in-range indexes; defend anyway.
        if not 0 <= index < len(self.items):
            raise TetraIndexError(
                f"tuple index {index} is out of range (arity "
                f"{len(self.items)})",
                span,
            )
        return self.items[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TetraTuple):
            return NotImplemented
        return self.items == other.items

    def __hash__(self):
        raise TypeError("Tetra tuples are not hashable")

    def __repr__(self) -> str:
        return f"TetraTuple({self.items!r})"


class TetraObject:
    """An instance of a user-defined class: named, typed, mutable fields.

    ``field_order`` preserves declaration order for display;
    ``field_types`` drives int→real widening on stores.
    """

    __slots__ = ("class_name", "fields", "field_types", "field_order",
                 "__weakref__")

    def __init__(self, class_name: str, fields: dict,
                 field_types: dict, field_order: list):
        self.class_name = class_name
        self.fields: dict = dict(fields)
        self.field_types: dict = field_types
        self.field_order: list = field_order

    def get(self, name: str, span: Span = NO_SPAN):
        try:
            return self.fields[name]
        except KeyError:
            raise TetraIndexError(
                f"'{self.class_name}' has no field '{name}'", span
            ) from None

    def set(self, name: str, value, span: Span = NO_SPAN) -> None:
        if name not in self.fields:
            raise TetraIndexError(
                f"'{self.class_name}' has no field '{name}'", span
            )
        self.fields[name] = coerce_to(value, self.field_types[name])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TetraObject):
            return NotImplemented
        return (self.class_name == other.class_name
                and self.fields == other.fields)

    def __hash__(self):
        raise TypeError("Tetra objects are not hashable")

    def __repr__(self) -> str:
        return f"TetraObject({self.class_name}, {self.fields!r})"


class TetraDict:
    """A mutable associative array with typed keys and values.

    Iteration and display use **sorted key order**, so dict-using programs
    are deterministic across runs and backends — a must for an educational
    language (and for this repository's differential tests).
    """

    __slots__ = ("items", "key_type", "value_type", "__weakref__")

    def __init__(self, items: dict, key_type: Type, value_type: Type):
        self.items: dict = dict(items)
        self.key_type = key_type
        self.value_type = value_type

    def __len__(self) -> int:
        return len(self.items)

    def sorted_keys(self) -> list:
        return sorted(self.items.keys())

    def __iter__(self):
        return iter(self.sorted_keys())

    def get(self, key, span: Span = NO_SPAN):
        try:
            return self.items[key]
        except KeyError:
            raise TetraIndexError(
                f"the dict has no key {display(key)!s} "
                f"(use has_key() to test first)",
                span,
            ) from None

    def set(self, key, value) -> None:
        self.items[key] = value

    def remove(self, key, span: Span = NO_SPAN) -> None:
        try:
            del self.items[key]
        except KeyError:
            raise TetraIndexError(
                f"cannot remove missing key {display(key)!s}", span
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TetraDict):
            return NotImplemented
        return self.items == other.items

    def __hash__(self):
        raise TypeError("Tetra dicts are not hashable")

    def __repr__(self) -> str:
        return f"TetraDict({self.items!r})"


def type_of_value(value: Value) -> Type:
    """Runtime type of a value (bool before int: bool *is* an int in Python)."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return REAL
    if isinstance(value, str):
        return STRING
    if isinstance(value, TetraArray):
        return ArrayType(value.element_type)
    if isinstance(value, TetraDict):
        return DictType(value.key_type, value.value_type)
    if isinstance(value, TetraTuple):
        return TupleType(tuple(type_of_value(v) for v in value.items))
    if isinstance(value, TetraObject):
        return ClassType(value.class_name)
    raise TypeError(f"not a Tetra value: {value!r}")


#: Digit budget for printing huge integers.  CPython's default int->str
#: limit (4300 digits) is far too small for an educational language where
#: ``print(fact(2000))`` is a day-one exercise; this budget covers that and
#: then some, while still bounding the quadratic conversion cost a runaway
#: ``a *= a`` loop could otherwise hang the console with.
MAX_PRINT_DIGITS = 500_000


def _int_text(value: int) -> str:
    try:
        return str(value)
    except ValueError:
        import sys

        if sys.get_int_max_str_digits() < MAX_PRINT_DIGITS:
            sys.set_int_max_str_digits(MAX_PRINT_DIGITS)
            try:
                return str(value)
            except ValueError:
                pass
        from ..errors import TetraRuntimeError

        raise TetraRuntimeError(
            f"this integer is too large to print (more than "
            f"{MAX_PRINT_DIGITS} digits); it is still usable in arithmetic"
        ) from None


def display(value: Value) -> str:
    """Render a value the way ``print`` shows it.

    Ints and strings print plainly; reals use Python's shortest-repr floats;
    bools print as ``true`` / ``false``; arrays as ``[a, b, c]``.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return _int_text(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, TetraArray):
        return "[" + ", ".join(display(v) for v in value) + "]"
    if isinstance(value, TetraTuple):
        return "(" + ", ".join(display(v) for v in value.items) + ")"
    if isinstance(value, TetraDict):
        return "{" + ", ".join(
            f"{display(k)}: {display(value.items[k])}"
            for k in value.sorted_keys()
        ) + "}"
    if isinstance(value, TetraObject):
        inner = ", ".join(
            f"{name}: {display(value.fields[name])}"
            for name in value.field_order
        )
        return f"{value.class_name}({inner})"
    return str(value)


# ----------------------------------------------------------------------
# Numeric semantics
# ----------------------------------------------------------------------
def int_div(a: int, b: int, span: Span = NO_SPAN) -> int:
    """C-style integer division: truncates toward zero (``-7 / 2 == -3``)."""
    if b == 0:
        raise TetraZeroDivisionError("integer division by zero", span)
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def int_mod(a: int, b: int, span: Span = NO_SPAN) -> int:
    """C-style remainder: same sign as the dividend, pairs with int_div."""
    if b == 0:
        raise TetraZeroDivisionError("integer modulo by zero", span)
    return a - int_div(a, b, span) * b


def real_div(a: float, b: float, span: Span = NO_SPAN) -> float:
    if b == 0.0:
        raise TetraZeroDivisionError("division by zero", span)
    return a / b


def real_mod(a: float, b: float, span: Span = NO_SPAN) -> float:
    """``fmod`` semantics (sign of dividend), consistent with int_mod."""
    if b == 0.0:
        raise TetraZeroDivisionError("modulo by zero", span)
    return math.fmod(a, b)


def tetra_pow(a: Value, b: Value, span: Span = NO_SPAN) -> Value:
    """``**``: int ** non-negative int stays int; anything else is real."""
    if isinstance(a, int) and isinstance(b, int) and not isinstance(a, bool) and not isinstance(b, bool):
        if b >= 0:
            return a ** b
        if a == 0:
            raise TetraZeroDivisionError("0 raised to a negative power", span)
        return float(a) ** b
    return float(a) ** float(b)


_REAL_TYPE = type(REAL)


def coerce_to(value: Value, target: Type) -> Value:
    """Apply the implicit int→real widening when storing into a real slot
    (element-wise for tuples, whose widening is covariant).

    This sits on the interpreter's hottest path (every argument bind and
    return), so it branches on exact types with no imports or allocation in
    the common no-op case.
    """
    if type(value) is int and type(target) is _REAL_TYPE:
        return float(value)
    if type(value) is TetraTuple and type(target) is TupleType:
        return TetraTuple(
            coerce_to(v, t) for v, t in zip(value.items, target.elements)
        )
    return value


def make_array(values: Iterable[Value], element_type: Type) -> TetraArray:
    """Build an array, widening int elements if the element type is real."""
    coerced = [coerce_to(v, element_type) for v in values]
    return TetraArray(coerced, element_type)


def deep_copy(value: Value) -> Value:
    """Structural copy of a value (arrays copy recursively; primitives are
    immutable).  Used by the ``copy`` builtin and the debugger snapshots."""
    if isinstance(value, TetraArray):
        return TetraArray([deep_copy(v) for v in value.items], value.element_type)
    if isinstance(value, TetraDict):
        return TetraDict(
            {k: deep_copy(v) for k, v in value.items.items()},
            value.key_type, value.value_type,
        )
    if isinstance(value, TetraTuple):
        return TetraTuple(deep_copy(v) for v in value.items)
    if isinstance(value, TetraObject):
        return TetraObject(
            value.class_name,
            {k: deep_copy(v) for k, v in value.fields.items()},
            value.field_types,
            value.field_order,
        )
    return value
