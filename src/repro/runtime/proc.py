"""The ``proc`` backend: real multicore speedup for ``parallel for``.

The thread backend is honest about CPython — real threads, real races, no
speedup, because the GIL serializes the interpreter.  This backend closes
the gap to the paper's headline evaluation (wall-clock scaling of the
primes and TSP workloads) by running ``parallel for`` bodies across a
persistent pool of **worker processes**:

* Closures don't pickle, so workers bootstrap by *recompiling the program
  from its source text* through :func:`repro.api.cached_program` — the
  sha-keyed cache makes that a one-time cost per worker (free under fork,
  which inherits the parent's warm cache), after which each worker holds
  its own compiled fast-path closure for the loop body.
* Loop chunks ship as ``(items, frozen read-set)`` messages: a snapshot of
  the variables the body references.  Writes merge back under the
  language's rules — the induction variable is private and discarded,
  lock-protected reductions (``count += 1``, guarded min/max) combine
  arithmetically, and container element/field edits are deep-diffed
  against the originals and applied if disjoint, with a clear diagnostic
  naming the slot when two workers disagree.
* Everything the merge contract cannot express — ``parallel:`` /
  ``background:`` blocks, ``lock`` bodies that aren't reductions, bare
  shared-scalar writes (see :mod:`repro.runtime.parplan`), mutable values
  reached through an enclosing loop's private induction variable — **falls
  back to in-process threads**: ProcBackend *is a* :class:`ThreadBackend`, so
  ineligible regions keep their exact thread semantics instead of
  silently racing across processes.

Resilience: the parent polls the result queue, so a tripped time limit or
a fired :class:`~repro.resilience.CancelToken` terminates the pool
promptly (workers are killed, not joined).  Observability: each worker
reports monotonic start/end stamps per chunk — on Linux ``perf_counter``
is the system-wide CLOCK_MONOTONIC, so the parent merges them straight
into the Observer's thread spans and the Chrome trace shows real
wall-clock overlap across cores.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import signal
import threading
import traceback

from ..errors import (
    TetraCancelledError,
    TetraError,
    TetraInternalError,
    TetraLimitError,
    TetraRuntimeError,
    TetraThreadError,
)
from ..stdlib.builtin_time import monotonic_clock
from .backend import (
    RuntimeConfig,
    ThreadBackend,
    guided_chunk_sizes,
    raise_thread_failures,
)
from .parplan import (
    apply_change,
    describe_path,
    diff_value,
    plan_parallel_for,
)
from .values import TetraArray, TetraDict, TetraObject, TetraTuple

#: Values whose mutations the merge tracks (everything else is immutable).
_MUTABLE = (TetraArray, TetraDict, TetraObject, TetraTuple)

#: How often the parent re-checks cancel/deadline/liveness while waiting.
_POLL_SECONDS = 0.05


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _ship_exc(exc: BaseException) -> tuple:
    """A picklable description of a worker-side failure."""
    if isinstance(exc, TetraError):
        try:
            blob = pickle.dumps(exc)
            pickle.loads(blob)
            return ("tetra", blob)
        except Exception:  # noqa: BLE001 - fall through to the plain form
            pass
    return ("plain", type(exc).__name__, str(exc))


def _revive_exc(shipped: tuple, source) -> BaseException:
    if shipped[0] == "tetra":
        exc = pickle.loads(shipped[1])
        if isinstance(exc, TetraError) and exc.source is None \
                and source is not None:
            exc.attach_source(source)
        return exc
    _, type_name, message = shipped
    return RuntimeError(f"{type_name}: {message}")


def _find_parfor(program, key: tuple):
    """Locate a ParallelFor node by its (line, column) — stable across the
    parent and a worker that recompiled the same source text."""
    from ..tetra_ast import ParallelFor, walk

    defs = list(program.functions)
    for cls in program.classes:
        defs.extend(cls.methods)
    for fn in defs:
        for node in walk(fn.body):
            if isinstance(node, ParallelFor) \
                    and (node.span.line, node.span.column) == key:
                return fn, node
    return None, None


def _compile_body(interp, key: tuple):
    """Compile the loop body once per worker: a fresh fast-path closure
    whose induction set matches the enclosing function's."""
    from ..tetra_ast import ParallelFor, walk

    fn, node = _find_parfor(interp.program, key)
    if node is None:
        raise TetraInternalError(
            f"proc worker cannot locate the parallel for at line "
            f"{key[0]} in its recompiled program"
        )
    if interp._compiled is not None:
        from ..interp.compile import _Compiler

        comp = _Compiler(interp)
        comp.compile()  # populate call-site invokers
        comp._induction = frozenset(
            n.var for n in walk(fn.body) if isinstance(n, ParallelFor)
        )
        body_run = comp.block(node.body)
    else:
        def body_run(ctx, _body=node.body):
            interp.exec_block(_body, ctx)
    return body_run, node.var, fn.name


def _run_chunk(interp, bodies: dict, key: tuple, chunk: list, private: dict,
               frame_vars: dict, want_items: bool, report: list,
               io, worker_index: int) -> tuple:
    from ..interp.context import ThreadContext
    from .env import Environment, Frame

    entry = bodies.get(key)
    if entry is None:
        entry = bodies[key] = _compile_body(interp, key)
    body_run, var, fn_name = entry
    frame = Frame(fn_name)
    frame.vars.update(frame_vars)
    env = Environment(frame, dict(private))
    env.private[var] = chunk[0]
    ctx = ThreadContext(f"proc worker {worker_index + 1}", env)
    private_tbl = env.private
    t0 = monotonic_clock()
    for item in chunk:
        private_tbl[var] = item
        body_run(ctx)
    t1 = monotonic_clock()
    updates = {name: frame.vars[name] for name in report
               if name in frame.vars}
    return (worker_index, t0, t1, len(chunk), io.output, updates,
            chunk if want_items else None)


def _worker_main(worker_index: int, task_q, result_q, source_text: str,
                 prog_name: str, fast: bool, recursion_limit: int) -> None:
    """One pool worker: bootstrap via the program cache, then serve chunks
    until the sentinel (or a kill) arrives."""
    try:
        # The parent coordinates shutdown; a terminal Ctrl-C must not kill
        # workers out from under it.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        from .. import api as api_mod
        from ..interp.interpreter import Interpreter
        from ..stdlib.io import CapturingIO
        from .backend import SequentialBackend

        # Under fork this process inherited the parent's cache lock *in
        # the held state* (the pool acquires it around Process.start so no
        # other parent thread can be mid-critical-section at fork time).
        # We are single-threaded here; swap in a fresh lock.  The in-flight
        # single-flight table is inherited too, and a forked copy of a
        # parent thread's compile-in-progress Event would never be set in
        # this process — drop it so this worker compiles for itself.
        api_mod._cache_lock = threading.Lock()
        api_mod._inflight = {}
        # Offload only happens on uninstrumented runs, so ask for the same
        # (races=False, obs=False, native=False) cache variant the parent
        # compiled — under fork the inherited entry makes this bootstrap
        # free.  Workers never run native kernels themselves (a loop that
        # lowered natively is claimed before proc offload is consulted).
        program, source = api_mod.cached_program(source_text, prog_name,
                                                 flags=(False, False, False))
        config = RuntimeConfig(recursion_limit=recursion_limit)
        io = CapturingIO()
        interp = Interpreter(program, source,
                             backend=SequentialBackend(config), io=io,
                             config=config, fast=fast)
        bodies: dict = {}
    except BaseException:  # noqa: BLE001 - reported to the parent
        result_q.put(("boot", worker_index, traceback.format_exc()))
        return
    while True:
        try:
            msg = task_q.get()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg is None:
            return
        tid, key, blob, want_items, report = msg
        # Claim the task before running it: the parent uses this to tell a
        # busy worker from a dead one (a crashed owner of an unreported
        # chunk must fail the run, not hang it).  mp.Queue is FIFO per
        # producer, so the claim always precedes this task's result.
        try:
            result_q.put(("pick", tid, worker_index))
        except Exception:  # pragma: no cover - queue torn down under us
            return
        io.clear()
        try:
            chunk, private, frame_vars = pickle.loads(blob)
            payload = _run_chunk(interp, bodies, key, chunk, private,
                                 frame_vars, want_items, report, io,
                                 worker_index)
            result_q.put(("ok", tid, pickle.dumps(payload)))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            try:
                result_q.put(("err", tid,
                              (worker_index, _ship_exc(exc), io.output)))
            except Exception:  # pragma: no cover - last-resort report
                result_q.put(("err", tid,
                              (worker_index,
                               ("plain", type(exc).__name__, "unreportable"),
                               "")))


# ----------------------------------------------------------------------
# Pool
# ----------------------------------------------------------------------
class _WorkerPool:
    """A persistent set of worker processes plus their task/result queues."""

    def __init__(self, jobs: int, source_text: str, prog_name: str,
                 fast: bool, recursion_limit: int):
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.procs: list = []
        self.jobs = jobs
        self.dead = False
        # Under fork a child inherits every mutex as-is; make sure nobody
        # holds the program-cache lock mid-fork or the worker's bootstrap
        # cached_program() call would deadlock on a lock no one owns.
        from ..api import _cache_lock

        with _cache_lock:
            for w in range(jobs):
                p = ctx.Process(
                    target=_worker_main,
                    args=(w, self.task_q, self.result_q, source_text,
                          prog_name, fast, recursion_limit),
                    name=f"tetra-proc-{w + 1}",
                    daemon=True,
                )
                p.start()
                self.procs.append(p)

    def any_alive(self) -> bool:
        return any(p.is_alive() for p in self.procs)

    def shutdown(self, kill: bool = False) -> None:
        if self.dead:
            return
        self.dead = True
        if not kill:
            try:
                for _ in self.procs:
                    self.task_q.put(None)
            except Exception:  # noqa: BLE001 - degrade to a hard kill
                kill = True
        grace = monotonic_clock() + (0.2 if kill else 2.0)
        for p in self.procs:
            p.join(timeout=max(0.0, grace - monotonic_clock()))
        for p in self.procs:
            if p.is_alive():
                p.terminate()
        for p in self.procs:
            if p.is_alive():
                p.join(timeout=0.5)
            if p.is_alive():
                p.kill()
                p.join(timeout=0.5)
        for q in (self.task_q, self.result_q):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # noqa: BLE001 - queues may already be gone
                pass


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------
class ProcBackend(ThreadBackend):
    """Process-parallel ``parallel for``; threads for everything else.

    Subclasses :class:`ThreadBackend` deliberately: ``parallel:`` /
    ``background:`` blocks, ``lock`` statements, and every loop the
    analysis rejects run on real in-process threads with unchanged
    semantics.  Only loops :func:`~repro.runtime.parplan.plan_parallel_for`
    proves mergeable are offloaded to the worker pool.
    """

    name = "proc"

    def __init__(self, config: RuntimeConfig | None = None):
        super().__init__(config)
        self.pool: _WorkerPool | None = None
        self._dispatch_mu = threading.Lock()
        self._deadline: float | None = None
        #: (line, reason) for every loop that fell back to threads —
        #: surfaced by ``tetra run --backend proc --trace`` and tests.
        self.fallbacks: list[tuple[int, str]] = []
        #: Worker processes actually started (0 until the first offload).
        self.pool_workers = 0

    # -- lifecycle -----------------------------------------------------
    def start_program(self, root_ctx) -> None:
        super().start_program(root_ctx)
        if self.config.time_limit:
            self._deadline = monotonic_clock() + self.config.time_limit

    def finish_program(self, root_ctx) -> None:
        try:
            super().finish_program(root_ctx)
        finally:
            pool, self.pool = self.pool, None
            if pool is not None:
                pool.shutdown()

    # -- offload entry point -------------------------------------------
    def try_parallel_for(self, interp, stmt, items, ctx) -> bool:
        """Offload one ``parallel for`` execution; False → caller runs the
        normal in-process thread path."""
        cfg = self.config
        if cfg.detect_races or cfg.profile or cfg.step_limit \
                or cfg.memory_limit or cfg.output_limit:
            # Per-statement instrumentation (race events, line counters,
            # step budgets, the heap/output meters) lives in this process.
            return False
        if interp.source is None or len(items) < 2:
            return False
        plan = plan_parallel_for(stmt, interp.program)
        if not plan.ok:
            self._note_fallback(stmt, plan.reason)
            return False
        jobs = self.parallel_for_workers(len(items))
        if jobs < 2:
            return False
        env = ctx.env
        # Bare scalar writes are only mergeable when they hit a *private*
        # binding (an enclosing loop's induction variable) — resolvable
        # only against the live environment, hence checked here.
        for name in plan.scalar_writes:
            if name not in env.private:
                self._note_fallback(
                    stmt,
                    f"assigns shared variable '{name}' outside a lock "
                    "(cannot merge across processes)",
                )
                return False
        # A mutable value reached through a *private* binding (an enclosing
        # parallel for's induction variable, e.g. a row of an iterated
        # grid) is visible to the program after the loop, but the merge
        # only reports reductions, shared frame variables, and this loop's
        # own items — a worker's edits to its pickled copy would be lost.
        # Keep thread semantics instead of silently diverging.
        for name in plan.names:
            if name in env.private \
                    and isinstance(env.private[name], _MUTABLE):
                self._note_fallback(
                    stmt,
                    f"'{name}' is an enclosing loop's induction variable "
                    "bound to a mutable value — edits made in a worker "
                    "process could not be merged back",
                )
                return False
        for name in plan.reductions:
            if name in env.private or name not in env.frame.vars:
                self._note_fallback(
                    stmt,
                    f"reduction variable '{name}' is not a shared frame "
                    "variable",
                )
                return False
        # Serialize concurrent dispatches (a parallel block whose children
        # each reach a parallel for): one wave through the pool at a time.
        with self._dispatch_mu:
            offloaded = self._dispatch(interp, stmt, plan, items, ctx, jobs)
        if offloaded:
            rec = self.config.schedule_recorder
            if rec is not None:
                # Worker processes emit no turns; the replay sizes its
                # in-process pool from this record and lets round-robin
                # fill the chunk bodies in.
                rec.pfor(stmt.span.line, len(items), jobs, offloaded=True)
        return offloaded

    def _note_fallback(self, stmt, reason: str) -> None:
        note = (stmt.span.line, reason)
        if note not in self.fallbacks:
            self.fallbacks.append(note)

    # -- dispatch ------------------------------------------------------
    def _chunks(self, items: list, jobs: int) -> list[tuple[range, list]]:
        """(original indices, items) per chunk, under the configured policy.

        block/cyclic mirror the in-process partition (one chunk per
        worker); dynamic produces many guided-size chunks that the pool's
        workers pull from the task queue — a true work-queue schedule.
        The indices are each item's position in the *original* iteration
        order — under cyclic dealing chunk w holds items w, w+jobs, … —
        so the merge can name the exact iterated value in diagnostics.
        """
        mode = self.config.chunking
        n = len(items)
        if mode == "cyclic":
            chunks = [(range(w, n, jobs), items[w::jobs])
                      for w in range(jobs)]
            return [c for c in chunks if c[1]]
        if mode == "dynamic":
            sizes = guided_chunk_sizes(n, jobs)
        else:  # block
            base, extra = divmod(n, jobs)
            sizes = [base + (1 if w < extra else 0) for w in range(jobs)]
        out = []
        start = 0
        for size in sizes:
            if size:
                out.append((range(start, start + size),
                            items[start:start + size]))
            start += size
        return out

    def _ensure_pool(self, interp) -> _WorkerPool | None:
        pool = self.pool
        if pool is not None:
            return None if pool.dead else pool
        size = self.config.num_workers or os.cpu_count() or 1
        pool = _WorkerPool(
            size,
            interp.source.text,
            getattr(interp.source, "name", "<proc>"),
            interp.fast,
            self.config.recursion_limit,
        )
        self.pool = pool
        self.pool_workers = size
        return pool

    def _kill_pool(self, pool: _WorkerPool) -> None:
        pool.shutdown(kill=True)
        self.pool = None

    def _dispatch(self, interp, stmt, plan, items, ctx, jobs) -> bool:
        cfg = self.config
        env = ctx.env
        span = stmt.span
        line = span.line
        private = {name: env.private[name] for name in plan.names
                   if name in env.private}
        frame_vars = {name: env.frame.vars[name] for name in plan.names
                      if name not in env.private and name in env.frame.vars}
        report = sorted(
            set(plan.reductions)
            | {name for name, value in frame_vars.items()
               if isinstance(value, _MUTABLE)}
        )
        want_items = any(isinstance(item, _MUTABLE) for item in items)
        chunks = self._chunks(items, jobs)
        order = list(range(len(chunks)))
        chaos = cfg.fault_plan
        if chaos is not None and len(order) > 1:
            # Chaos: shuffle dispatch order (the proc analogue of the
            # sequential backend's spawn-order shuffle).
            order = chaos.perturb_jobs(order)
        key = (line, span.column)
        tasks = []
        try:
            for tid in order:
                blob = pickle.dumps((chunks[tid][1], private, frame_vars))
                tasks.append((tid, key, blob, want_items, report))
        except Exception as why:  # noqa: BLE001 - unpicklable state
            self._note_fallback(stmt, f"cannot serialize loop state ({why})")
            return False
        pool = self._ensure_pool(interp)
        if pool is None:
            return False
        obs = self.obs
        group_start = obs.clock() if obs is not None else 0.0
        for task in tasks:
            pool.task_q.put(task)
        results, failures = self._collect(pool, len(tasks), span)
        # Console output in chunk order: for block/dynamic chunking that
        # is iteration order, so a deterministic program prints exactly
        # what the sequential walker prints.
        io = interp.io
        for tid in range(len(chunks)):
            if tid in results:
                text = results[tid][4]
            elif tid in failures:
                text = failures[tid][2]  # partial output before the error
            else:
                text = ""
            if text:
                io.write(text)
        if obs is not None:
            self._record_spans(obs, ctx, env, results, line, group_start)
        if failures:
            labeled = []
            for tid in sorted(failures):
                worker_index, shipped, _out = failures[tid]
                exc = _revive_exc(shipped, interp.source)
                labeled.append((
                    f"proc worker {worker_index + 1} "
                    f"(parallel for, line {line})",
                    exc,
                ))
            raise_thread_failures(labeled, span, "parallel for")
        self._merge(env, stmt, plan, frame_vars, chunks, results,
                    want_items)
        return True

    def _collect(self, pool: _WorkerPool, n_tasks: int, span):
        """Wait for every chunk, enforcing cancel/time limits promptly."""
        token = self.config.cancel
        results: dict[int, tuple] = {}
        failures: dict[int, tuple] = {}
        running: dict[int, int] = {}   # claimed task id -> worker index
        while len(results) + len(failures) < n_tasks:
            if token is not None and token.cancelled:
                self._kill_pool(pool)
                raise TetraCancelledError(
                    f"the run was cancelled — {token.reason}", span
                )
            if self._deadline is not None \
                    and monotonic_clock() > self._deadline:
                self._kill_pool(pool)
                limit = self.config.time_limit
                raise TetraLimitError(
                    f"the program exceeded its time limit of {limit:g} "
                    "seconds — raise it with --time-limit or "
                    "RuntimeConfig(time_limit=...)",
                    span,
                    limit="time",
                )
            try:
                msg = pool.result_q.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                # A worker never exits on its own while chunks are in
                # flight, so a dead process is always abnormal (OOM kill,
                # segfault).  Fail fast when the owner of an unreported
                # chunk died — the surviving workers blocked on the task
                # queue would otherwise leave the run hanging forever —
                # and when nobody is left to serve the unclaimed tasks.
                dead = {w for w, p in enumerate(pool.procs)
                        if not p.is_alive()}
                lost = sorted(tid for tid, w in running.items()
                              if w in dead)
                if lost:
                    w = running[lost[0]]
                    self._kill_pool(pool)
                    raise TetraThreadError(
                        f"proc worker {w + 1} died before finishing its "
                        "chunk (killed or crashed mid-run)", span,
                    )
                if not pool.any_alive():
                    self._kill_pool(pool)
                    raise TetraThreadError(
                        "a proc worker process died before finishing its "
                        "chunk", span,
                    )
                continue
            kind, tid, payload = msg
            if kind == "pick":
                running[tid] = payload
            elif kind == "ok":
                running.pop(tid, None)
                results[tid] = pickle.loads(payload)
            elif kind == "err":
                running.pop(tid, None)
                failures[tid] = payload
            else:  # "boot" — the worker never came up
                self._kill_pool(pool)
                raise TetraInternalError(
                    f"proc worker failed to start:\n{payload}"
                )
        return results, failures

    # -- observability -------------------------------------------------
    def _record_spans(self, obs, ctx, env, results: dict, line: int,
                      group_start: float) -> None:
        """Merge worker-reported chunk stamps into per-worker thread spans
        (same CLOCK_MONOTONIC domain as the parent's clock on Linux)."""
        per_worker: dict[int, list] = {}
        for tid in sorted(results):
            worker_index, t0, t1, n_items = results[tid][:4]
            agg = per_worker.get(worker_index)
            if agg is None:
                per_worker[worker_index] = [t0, t1, n_items]
            else:
                agg[0] = min(agg[0], t0)
                agg[1] = max(agg[1], t1)
                agg[2] += n_items
        child_ids = []
        for worker_index in sorted(per_worker):
            t0, t1, n_items = per_worker[worker_index]
            child = ctx.spawn_child(
                f"proc worker {worker_index + 1} "
                f"(parallel for, line {line})",
                env,
            )
            obs.register_thread(child)
            obs.thread_span(child.id, t0, t1)
            obs.register_chunk(child.id, line, n_items)
            child_ids.append(child.id)
        obs.group_span(ctx.id, "parallel for", group_start, obs.clock(),
                       child_ids, line, True)

    # -- merge ---------------------------------------------------------
    def _merge(self, env, stmt, plan, frame_vars: dict, chunks: list,
               results: dict, want_items: bool) -> None:
        span = stmt.span
        # Reductions: combine each worker's final against the snapshot.
        for name, kind in plan.reductions.items():
            init = frame_vars[name]
            finals = [results[tid][5][name] for tid in sorted(results)
                      if name in results[tid][5]]
            if kind == "sum":
                merged = init
                for final in finals:
                    merged = merged + (final - init)
            elif kind == "min":
                merged = min([init] + finals)
            else:
                merged = max([init] + finals)
            env.set(name, merged)
        # Containers: diff every worker's finals against the *pristine*
        # originals first, then apply — so one worker's edits never show
        # up as phantom differences in another's diff.
        changes: list[tuple[str, object, tuple, object, int]] = []
        for name in frame_vars:
            parent = frame_vars[name]
            if name in plan.reductions or not isinstance(parent, _MUTABLE):
                continue
            for tid in sorted(results):
                final = results[tid][5].get(name)
                if final is None:
                    continue
                diffs: list = []
                diff_value(parent, final, (), diffs)
                for path, value in diffs:
                    changes.append((name, parent, path, value, tid))
        if want_items:
            for tid in sorted(results):
                final_items = results[tid][6]
                if final_items is None:
                    continue
                indices, chunk = chunks[tid]
                for offset, (orig, final) in enumerate(zip(chunk,
                                                           final_items)):
                    if not isinstance(orig, _MUTABLE):
                        continue
                    diffs = []
                    diff_value(orig, final, (), diffs)
                    for path, value in diffs:
                        changes.append((f"<item {indices[offset]}>", orig,
                                        path, value, tid))
        self._apply_changes(env, span, changes)

    def _apply_changes(self, env, span, changes: list) -> None:
        # Conflicts key on the *identity* of the pristine root object plus
        # the path, never the display name: one object reached under two
        # names (aliased frame variables, or the same value iterated at
        # two positions) is a single merge slot, while two distinct
        # objects can never collide just because their labels match.
        seen: dict[tuple, tuple] = {}    # (root id, path) -> (value, tid, name)
        prefixes: dict[tuple, int] = {}  # (root id, proper prefix) -> tid
        ordered: list[tuple] = []
        rebound: set[str] = set()        # names already queued for env.set
        for name, root, path, value, tid in changes:
            key = (id(root), path)
            exact = seen.get(key)
            if exact is not None:
                prior_value, prior_tid, _prior_name = exact
                if type(prior_value) is type(value) and prior_value == value:
                    # Agreement on the same object's slot: applying once
                    # suffices — except a wholesale frame-variable rebind,
                    # which must land on every alias *name* separately.
                    if not path and name not in rebound:
                        rebound.add(name)
                        ordered.append((name, root, path, value))
                    continue
                raise TetraRuntimeError(
                    f"parallel for workers made conflicting updates to "
                    f"{describe_path(name, path)} (chunks {prior_tid + 1} "
                    f"and {tid + 1} disagree) — the process backend cannot "
                    "merge unsynchronized writes to the same slot; protect "
                    "it with a lock or run with --backend thread",
                    span,
                )
            overlap_tid = prefixes.get(key)
            if overlap_tid is None:
                for cut in range(1, len(path)):
                    holder = seen.get((id(root), path[:cut]))
                    if holder is not None and holder[1] != tid:
                        overlap_tid = holder[1]
                        break
            if overlap_tid is not None and overlap_tid != tid:
                raise TetraRuntimeError(
                    f"parallel for workers made overlapping updates inside "
                    f"{describe_path(name, path)} (chunks "
                    f"{overlap_tid + 1} and {tid + 1}) — protect it with a "
                    "lock or run with --backend thread",
                    span,
                )
            seen[key] = (value, tid, name)
            for cut in range(1, len(path)):
                prefixes.setdefault((id(root), path[:cut]), tid)
            if not path:
                rebound.add(name)
            ordered.append((name, root, path, value))
        for name, root, path, value in ordered:
            if not path:
                if name.startswith("<item"):
                    raise TetraRuntimeError(
                        f"a parallel for worker replaced {name} wholesale — "
                        "the process backend merges element and field "
                        "edits, not reassignment of a whole iterated value",
                        span,
                    )
                env.set(name, value)
            else:
                apply_change(root, path, value)
