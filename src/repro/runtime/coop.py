"""Deterministic cooperative scheduling of Tetra threads.

The IDE the paper describes lets a student "step through the different
threads independently ... step though the code in one thread all the way to
the end (or a lock) to ensure that this does not negatively impact what the
other threads are doing".  That requires a runtime where *the tool* chooses
which thread advances — something native debuggers cannot offer (paper §V).

``CoopBackend`` provides it: Tetra threads are real OS threads, but a baton
protocol guarantees **exactly one** runs between checkpoints (one checkpoint
per interpreted statement), and a pluggable :class:`SchedulerPolicy` picks
the next runner.  Policies:

* :class:`RoundRobinPolicy` — deterministic interleaving, switch every N
  statements; N=1 maximizes interleaving and reliably exposes Figure III's
  check-then-act race.
* :class:`RandomPolicy` — seeded pseudo-random interleavings for schedule
  fuzzing (run a test under many seeds).
* :class:`ScriptPolicy` — an explicit list of thread labels to run, for
  reproducing one specific buggy interleaving in a lesson.
* :class:`ManualPolicy` — nobody runs until a controller (the debugger)
  grants steps; this is the IDE's per-thread stepping.

All blocked threads with none runnable means deadlock; the scheduler builds
the wait-for description and aborts every thread with a
:class:`~repro.errors.TetraDeadlockError` instead of hanging the session.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import (
    TetraDeadlockError,
    TetraError,
    TetraInternalError,
    TetraThreadError,
)
from ..source import NO_SPAN, Span
from .backend import Backend, Job, RuntimeConfig, raise_thread_failures

_INF = float("inf")


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
class SchedulerPolicy:
    """Chooses the next thread to run at every scheduling point."""

    #: Manual policies leave the program paused until a controller grants
    #: steps; automatic policies always pick somebody.
    manual = False

    def choose(self, ready: list[int], current: int | None) -> int:
        raise NotImplementedError

    def initial_budget(self) -> float:
        return _INF


class RoundRobinPolicy(SchedulerPolicy):
    """Cycle through runnable threads in id order, switching every
    ``switch_every`` statements."""

    def __init__(self, switch_every: int = 1):
        if switch_every < 1:
            raise ValueError("switch_every must be >= 1")
        self.switch_every = switch_every
        self._since_switch = 0

    def choose(self, ready: list[int], current: int | None) -> int:
        if current in ready:
            self._since_switch += 1
            if self._since_switch < self.switch_every:
                return current  # keep running
        self._since_switch = 0
        if current is None or current not in ready:
            return ready[0]
        after = [t for t in ready if t > current]
        return after[0] if after else ready[0]


class RandomPolicy(SchedulerPolicy):
    """Seeded random choice at every statement — schedule fuzzing."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, ready: list[int], current: int | None) -> int:
        return self._rng.choice(ready)


class ScriptPolicy(SchedulerPolicy):
    """Follow an explicit schedule of thread *labels*: the k-th entry names
    the thread that executes the k-th scripted statement.

    An entry is consumed when its thread runs; entries for threads that are
    not ready *yet* (including threads that have not spawned) are left in
    place and round-robin fills in until they can run; entries for finished
    threads are dropped.  When the script is exhausted, round-robin finishes
    the program."""

    def __init__(self, script: Sequence[str]):
        self.script = deque(script)
        self._fallback = RoundRobinPolicy()
        #: Filled by the scheduler so labels can be resolved to ids.
        self.label_of: dict[int, str] = {}
        #: Ids of finished threads (maintained by the scheduler).
        self.finished_ids: set[int] = set()

    def choose(self, ready: list[int], current: int | None) -> int:
        while self.script:
            wanted = self.script[0]
            matches = [t for t in ready if self.label_of.get(t) == wanted]
            if matches:
                self.script.popleft()
                return matches[0]
            finished = any(
                self.label_of.get(t) == wanted for t in self.finished_ids
            )
            if finished:
                self.script.popleft()  # can never run again: drop
                continue
            break  # not ready yet (or never will exist): fill in with RR
        return self._fallback.choose(ready, current)


class ReplayPolicy(ScriptPolicy):
    """A :class:`ScriptPolicy` fed from a recorded schedule artifact.

    Identical matching rules — entries name thread labels, entries for
    finished threads are dropped, a front entry whose thread is not ready
    yet is left in place while round-robin fills in — plus fidelity
    counters, so a replay can report how much of the recorded schedule it
    actually consumed.  Round-robin fill-ins are expected for schedules
    recorded around multiprocess offloads (worker processes produce no
    turns) and for the unwind tail of aborted runs; a thread→coop replay
    of a clean run consumes the script exactly."""

    def __init__(self, script: Sequence[str]):
        super().__init__(script)
        self.matched_turns = 0
        self.fallback_turns = 0

    def choose(self, ready: list[int], current: int | None) -> int:
        while self.script:
            wanted = self.script[0]
            matches = [t for t in ready if self.label_of.get(t) == wanted]
            if matches:
                self.script.popleft()
                self.matched_turns += 1
                return matches[0]
            finished = any(
                self.label_of.get(t) == wanted for t in self.finished_ids
            )
            if finished:
                self.script.popleft()
                continue
            break
        self.fallback_turns += 1
        return self._fallback.choose(ready, current)


class GrantGate:
    """Enforces a recorded per-lock grant order during replay.

    The recorded run may have let a late requester barge past parked
    waiters; FIFO handoff on replay would diverge.  The gate holds each
    lock's recorded grant queue and applies reservation semantics: a free
    lock may only be taken by the next recorded grantee — anyone else
    must park even though the lock is free — and on release the lock is
    handed to the waiter matching the next recorded grantee, or left
    reserved if that thread has not asked yet.  Entries for finished
    threads are dropped; an exhausted queue falls back to FIFO."""

    def __init__(self, grants: Sequence[tuple[str, str]]):
        self._queues: dict[str, deque[str]] = {}
        for name, label in grants:
            self._queues.setdefault(name, deque()).append(label)

    def _front(self, name: str, finished: set[str]) -> str | None:
        queue = self._queues.get(name)
        while queue:
            if queue[0] in finished:
                queue.popleft()
                continue
            return queue[0]
        return None

    def may_take(self, name: str, label: str, finished: set[str]) -> bool:
        front = self._front(name, finished)
        return front is None or front == label

    def took(self, name: str, label: str) -> None:
        queue = self._queues.get(name)
        if queue and queue[0] == label:
            queue.popleft()

    def pick_waiter(self, name: str, waiters: Sequence[tuple[int, str]],
                    finished: set[str]) -> int | None:
        """The waiter id to hand a released lock to, or None to leave the
        lock reserved for a recorded grantee that has not asked yet."""
        front = self._front(name, finished)
        if front is None:
            return waiters[0][0] if waiters else None
        for wid, label in waiters:
            if label == front:
                return wid
        return None

    def rescue(self, name: str) -> None:
        """Drop the front entry for ``name`` — the no-false-deadlock
        valve when a replay diverged and the reserved thread will never
        come (see CoopScheduler._schedule_turn)."""
        queue = self._queues.get(name)
        if queue:
            queue.popleft()


class ManualPolicy(SchedulerPolicy):
    """Threads only run when a controller grants them steps (the debugger)."""

    manual = True

    def choose(self, ready: list[int], current: int | None) -> int:  # pragma: no cover
        raise AssertionError("manual policy is driven by the controller")

    def initial_budget(self) -> float:
        return 0


# ----------------------------------------------------------------------
# Scheduler state
# ----------------------------------------------------------------------
READY = "ready"
BLOCKED_LOCK = "blocked on lock"
BLOCKED_JOIN = "waiting to join children"
FINISHED = "finished"


@dataclass
class CoopThread:
    """Scheduler-side record of one Tetra thread."""

    id: int
    label: str
    state: str = READY
    budget: float = _INF
    waiting_lock: str | None = None
    #: Child thread ids the current join is waiting on (None when not joining).
    join_group: set[int] | None = None
    parent: "CoopThread | None" = None
    #: True when the scheduler granted a turn this thread has not yet
    #: consumed (consumed at the next checkpoint or block resumption).
    has_fresh_turn: bool = False
    #: Where the thread last checkpointed (line info for the debugger).
    current_span: Span = NO_SPAN
    error: BaseException | None = None
    #: Pending per-thread abort (replay deadlock victim); raised the next
    #: time this thread wakes in ``_wait_for_turn``.
    abort_exc: BaseException | None = None


class CoopScheduler:
    """The turn token: at most one Tetra thread runs at any moment, and the
    policy is consulted exactly once per *turn* — one executed statement, or
    one resumption from a lock/join block.  That makes ScriptPolicy entries
    line up 1:1 with statements, which is what lesson scripts need.
    """

    def __init__(self, policy: SchedulerPolicy):
        self.policy = policy
        self.cv = threading.Condition()
        self.threads: dict[int, CoopThread] = {}
        #: Thread currently holding the turn (it may be executing).
        self.turn_holder: int | None = None
        self._last_holder: int | None = None
        self.lock_owner: dict[str, int] = {}
        self.lock_waiters: dict[str, deque[int]] = {}
        self.abort_exc: BaseException | None = None
        self.statements_run: dict[int, int] = {}
        #: Optional :class:`~repro.runtime.schedule.ScheduleRecorder`; every
        #: granted turn and lock grant is recorded, making a coop run (any
        #: policy, chaos included) re-runnable from the artifact alone.
        self.turn_recorder = None
        #: Optional :class:`GrantGate` enforcing a recorded lock grant order.
        self.grant_gate = None
        #: Labels of finished threads — the gate drops queue entries for
        #: them so a recorded grantee that already exited can't wedge a lock.
        self.finished_labels: set[str] = set()

    # -- registration ----------------------------------------------------
    def register(self, ctx, parent_id: int | None = None) -> CoopThread:
        with self.cv:
            parent = self.threads.get(parent_id) if parent_id is not None else None
            record = CoopThread(ctx.id, ctx.label, parent=parent,
                                budget=self.policy.initial_budget())
            self.threads[ctx.id] = record
            self.statements_run[ctx.id] = 0
            if isinstance(self.policy, ScriptPolicy):
                self.policy.label_of[ctx.id] = ctx.label
            return record

    # -- turn machinery ------------------------------------------------
    def _eligible(self) -> list[int]:
        """Threads that could be given the next turn (cv held)."""
        return sorted(
            t.id for t in self.threads.values()
            if t.state == READY and t.budget > 0
        )

    def _schedule_turn(self) -> None:
        """Hand out the next turn if nobody holds one (cv held)."""
        if self.turn_holder is not None:
            return
        ready = self._eligible()
        if ready:
            if self.policy.manual:
                chosen = ready[0]
            else:
                chosen = self.policy.choose(ready, self._last_holder)
            record = self.threads[chosen]
            if record.budget is not _INF:
                record.budget -= 1
            record.has_fresh_turn = True
            self.turn_holder = chosen
            self._last_holder = chosen
            rec = self.turn_recorder
            if rec is not None:
                rec.turn(record.label)
            self.cv.notify_all()
            return
        self.cv.notify_all()
        live = [t for t in self.threads.values() if t.state != FINISHED]
        if live and all(t.state in (BLOCKED_LOCK, BLOCKED_JOIN) for t in live):
            # A gate reservation can park every thread even though a lock
            # is *free* (reserved for a recorded grantee that, after a
            # divergence, will never ask).  A real deadlock always has its
            # locks held, so handing any free-but-waited-on lock to its
            # first waiter only fires on divergence, never on real cycles.
            if self.grant_gate is not None:
                if self._rescue_reserved_locks():
                    self._schedule_turn()
                    return
                # The thread backend's deadlock semantics are
                # victim-unwind: the thread that closed the cycle aborts
                # alone, its lock releases let the others proceed, and the
                # failure surfaces at the join.  The recorded grants tell
                # us who proceeded, hence who unwound — mirror that so the
                # replay reproduces post-deadlock output too.
                victim = self._pick_deadlock_victim(live)
                if victim is not None:
                    self._abort_victim(victim, live)
                    return
            self._declare_deadlock(live)
        # Otherwise (manual mode): threads are paused awaiting grants.

    def _rescue_reserved_locks(self) -> bool:
        """Break gate reservations on free locks (cv held); True if any
        waiter was unparked."""
        rescued = False
        for name, waiters in self.lock_waiters.items():
            if waiters and self.lock_owner.get(name) is None:
                self.grant_gate.rescue(name)
                next_id = waiters.popleft()
                record = self.threads[next_id]
                self.lock_owner[name] = next_id
                record.state = READY
                rec = self.turn_recorder
                if rec is not None:
                    rec.grant(name, record.label)
                rescued = True
        return rescued

    def _pick_deadlock_victim(self, live: list[CoopThread]) -> CoopThread | None:
        """The blocked thread the recording says must unwind (cv held):
        some blocked thread W is the recorded next grantee of the lock it
        waits for; W can only get it if the current owner unwinds — and
        the recording having further grants proves the owner did."""
        gate = self.grant_gate
        for t in live:
            if t.state != BLOCKED_LOCK or t.waiting_lock is None:
                continue
            front = gate._front(t.waiting_lock, self.finished_labels)
            if front != t.label:
                continue
            owner = self.lock_owner.get(t.waiting_lock)
            if owner is None:
                continue
            victim = self.threads.get(owner)
            if victim is not None and victim.state == BLOCKED_LOCK:
                return victim
        return None

    def _abort_victim(self, victim: CoopThread, live: list[CoopThread]) -> None:
        """Abort one deadlocked thread (cv held); its unwind releases the
        locks it holds, letting the recorded survivors continue."""
        parts = []
        for t in live:
            if t.state != BLOCKED_LOCK:
                continue
            owner = self.lock_owner.get(t.waiting_lock or "")
            owner_label = (self.threads[owner].label
                           if owner is not None else "nobody")
            parts.append(
                f"{t.label} waits for 'lock {t.waiting_lock}' "
                f"held by {owner_label}"
            )
        exc = TetraDeadlockError(
            "deadlock detected — these threads are waiting for each other "
            "in a cycle: " + "; ".join(parts) +
            ". Acquire locks in a consistent order to avoid this.",
            victim.current_span,
            cycle=tuple(parts),
            blocked_spans=tuple(
                t.current_span for t in live
                if t.state == BLOCKED_LOCK and t.current_span is not NO_SPAN
            ),
        )
        waiters = self.lock_waiters.get(victim.waiting_lock or "")
        if waiters and victim.id in waiters:
            waiters.remove(victim.id)
        victim.abort_exc = exc
        self.cv.notify_all()

    def _declare_deadlock(self, live: list[CoopThread]) -> None:
        parts = []
        for t in live:
            if t.state == BLOCKED_LOCK:
                owner = self.lock_owner.get(t.waiting_lock or "")
                owner_label = (self.threads[owner].label
                               if owner is not None else "nobody")
                parts.append(
                    f"{t.label} waits for 'lock {t.waiting_lock}' "
                    f"held by {owner_label}"
                )
            else:
                parts.append(f"{t.label} waits to join its children")
        # Anchor the diagnostic at a lock-blocked thread's last checkpoint
        # so `tetra run` renders a caret; NO_SPAN here used to make coop
        # deadlocks the only runtime error without a source location.
        span = next(
            (t.current_span for t in live
             if t.state == BLOCKED_LOCK and t.current_span is not NO_SPAN),
            next((t.current_span for t in live
                  if t.current_span is not NO_SPAN), NO_SPAN),
        )
        blocked_spans = tuple(
            t.current_span for t in live
            if t.state == BLOCKED_LOCK and t.current_span is not NO_SPAN
        )
        self.abort_exc = TetraDeadlockError(
            "deadlock detected — every thread is blocked: " + "; ".join(parts),
            span,
            cycle=tuple(parts),
            blocked_spans=blocked_spans,
        )
        self.cv.notify_all()

    def _yield_turn(self, record: CoopThread) -> None:
        """Complete this thread's turn and hand out the next (cv held)."""
        if self.turn_holder == record.id:
            self.turn_holder = None
        self._schedule_turn()

    def _wait_for_turn(self, record: CoopThread) -> None:
        """Block (cv held) until this thread is granted a fresh turn."""
        while True:
            if self.abort_exc is not None:
                raise self.abort_exc
            if record.abort_exc is not None:
                exc = record.abort_exc
                record.abort_exc = None
                raise exc
            if (self.turn_holder == record.id and record.has_fresh_turn
                    and record.state == READY):
                record.has_fresh_turn = False  # consume
                return
            self.cv.wait()

    # -- hooks called by the backend -------------------------------------
    def checkpoint(self, ctx, span: Span) -> None:
        """Called before each statement.  Consumes one turn per statement."""
        with self.cv:
            record = self.threads[ctx.id]
            record.current_span = span
            self.statements_run[ctx.id] += 1
            if record.has_fresh_turn:
                # A turn was granted while this thread was starting up or
                # mid-transition; it pays for this statement.
                record.has_fresh_turn = False
                return
            self._yield_turn(record)
            self._wait_for_turn(record)

    def thread_started(self, ctx) -> None:
        """Spawned threads run straight to their first checkpoint and park
        there; nothing to do (kept for backend symmetry)."""

    def thread_finished(self, ctx, error: BaseException | None) -> None:
        with self.cv:
            record = self.threads[ctx.id]
            record.state = FINISHED
            record.error = error
            record.has_fresh_turn = False
            self.finished_labels.add(record.label)
            if isinstance(self.policy, ScriptPolicy):
                self.policy.finished_ids.add(record.id)
            parent = record.parent
            if (parent is not None and parent.state == BLOCKED_JOIN
                    and parent.join_group and record.id in parent.join_group):
                parent.join_group.discard(record.id)
                if not parent.join_group:
                    parent.join_group = None
                    parent.state = READY
            self._yield_turn(record)

    def block_for_join(self, ctx, child_ids: Sequence[int]) -> None:
        with self.cv:
            record = self.threads[ctx.id]
            pending = {
                cid for cid in child_ids
                if self.threads[cid].state != FINISHED
            }
            if not pending:
                return
            record.join_group = pending
            record.state = BLOCKED_JOIN
            record.has_fresh_turn = False
            self._yield_turn(record)
            # Resuming after the join costs one turn.
            self._wait_for_turn(record)
            self.turn_holder = record.id  # hold it while finishing the join

    def acquire_lock(self, ctx, name: str, span: Span) -> None:
        with self.cv:
            record = self.threads[ctx.id]
            owner = self.lock_owner.get(name)
            if owner == ctx.id:
                raise TetraDeadlockError(
                    f"{record.label} tried to enter 'lock {name}:' while "
                    "already inside it — Tetra locks are not re-entrant",
                    span,
                )
            gate = self.grant_gate
            if owner is None and (gate is None or gate.may_take(
                    name, record.label, self.finished_labels)):
                self.lock_owner[name] = ctx.id
                if gate is not None:
                    gate.took(name, record.label)
                rec = self.turn_recorder
                if rec is not None:
                    rec.grant(name, record.label)
                return
            # Either the lock is held, or the gate reserves it for the
            # recorded next grantee — park even though it is free.
            self.lock_waiters.setdefault(name, deque()).append(ctx.id)
            record.state = BLOCKED_LOCK
            record.waiting_lock = name
            record.has_fresh_turn = False
            self._yield_turn(record)
            # Resuming with the lock costs one turn.
            self._wait_for_turn(record)
            record.waiting_lock = None
            self.turn_holder = record.id

    def release_lock(self, ctx, name: str) -> None:
        with self.cv:
            del self.lock_owner[name]
            waiters = self.lock_waiters.get(name)
            if not waiters:
                return
            gate = self.grant_gate
            if gate is None:
                next_id = waiters.popleft()
            else:
                pairs = [(wid, self.threads[wid].label) for wid in waiters]
                next_id = gate.pick_waiter(name, pairs, self.finished_labels)
                if next_id is None:
                    # Reserved: the recorded next grantee has not asked
                    # yet; the lock stays free until it does (or the
                    # rescue valve in _schedule_turn fires).
                    return
                waiters.remove(next_id)
            record = self.threads[next_id]
            self.lock_owner[name] = next_id
            record.state = READY
            if gate is not None:
                gate.took(name, record.label)
            rec = self.turn_recorder
            if rec is not None and self.abort_exc is None \
                    and record.abort_exc is None:
                # Grants made while the program is unwinding (a deadlock
                # abort cascading through parked waiters) are teardown
                # mechanics, not execution: the grantee never runs another
                # statement.  Recording them would make a replay believe
                # the owner unwound victim-style and let survivors run on.
                rec.grant(name, record.label)

    # -- controller API (the debugger) ------------------------------------
    def wait_until_paused(self, timeout: float = 10.0) -> None:
        """Block the controller until no Tetra thread can run."""
        with self.cv:
            ok = self.cv.wait_for(
                lambda: (self.abort_exc is not None
                         or (self.turn_holder is None
                             and not self._eligible())),
                timeout=timeout,
            )
            if not ok:  # pragma: no cover - only on interpreter bugs
                # A bare timeout here used to surface as an unexplained
                # assertion in the debugger; name the stuck thread, its
                # state, and how far the schedule got so the report is
                # actionable.
                holder = self.turn_holder
                if holder is not None:
                    record = self.threads.get(holder)
                    who = (f"{record.label} (state: {record.state})"
                           if record is not None else f"thread id {holder}")
                else:
                    who = "no thread (turn unassigned)"
                states = ", ".join(
                    f"{t.label}={t.state}" for t in self.threads.values()
                )
                turns = sum(self.statements_run.values())
                raise TetraInternalError(
                    f"cooperative scheduler failed to pause within {timeout}s "
                    f"— turn held by {who}; after {turns} scheduler turns; "
                    f"thread states: {states or 'none registered'}"
                )

    def grant(self, thread_id: int, steps: int = 1) -> None:
        """Let ``thread_id`` run ``steps`` turns (manual mode)."""
        with self.cv:
            record = self.threads.get(thread_id)
            if record is None:
                raise TetraThreadError(f"no thread with id {thread_id}")
            if record.state == FINISHED:
                raise TetraThreadError(f"{record.label} has already finished")
            if record.state != READY:
                raise TetraThreadError(f"{record.label} is {record.state}")
            record.budget += steps
            self._schedule_turn()

    def snapshot(self) -> list[CoopThread]:
        with self.cv:
            return list(self.threads.values())


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class CoopBackend(Backend):
    """Deterministic cooperative execution (see module docstring)."""

    virtual_clock = True
    name = "coop"

    def __init__(self, policy: SchedulerPolicy | None = None,
                 config: RuntimeConfig | None = None):
        super().__init__(config)
        replay = self.config.schedule_replay
        if policy is None:
            plan = self.config.fault_plan
            if replay is not None:
                policy = ReplayPolicy(replay.turns)
            elif plan is not None:
                # Chaos on the coop backend *is* the schedule: one seed =
                # one exact, replayable interleaving.
                policy = RandomPolicy(plan.schedule_seed())
            else:
                policy = RoundRobinPolicy()
        self.scheduler = CoopScheduler(policy)
        self.scheduler.turn_recorder = self.config.schedule_recorder
        #: Recorded per-loop worker counts, consumed in program order so
        #: parallel-for labels line up with the recording even when the
        #: recording backend sized its pools differently (thread uses
        #: cpu_count, proc offloads).  Installed independently of the
        #: policy so the debugger (ManualPolicy) replays them too.
        self._pfor_replay: deque[dict] = deque()
        if replay is not None:
            self.scheduler.grant_gate = GrantGate(replay.grants)
            self._pfor_replay = deque(replay.pfors)
        self._background: list[threading.Thread] = []
        self._background_ctxs: list[object] = []
        #: Thread id → interpreter ThreadContext; the debugger reads call
        #: stacks and variable snapshots through this while threads are paused.
        self.contexts: dict[int, object] = {}

    # ------------------------------------------------------------------
    def now(self) -> float:
        """The logical clock: total statements executed across all threads
        (i.e. scheduler turns consumed).  Reads happen while the caller
        holds the scheduler turn, so timestamps are deterministic for a
        given policy seed."""
        return float(sum(self.scheduler.statements_run.values()))

    def checkpoint(self, ctx, node) -> None:
        self.scheduler.checkpoint(ctx, node.span)

    def spawn_group(self, ctx, jobs: Sequence[Job], join: bool,
                    span: Span = NO_SPAN) -> None:
        sched = self.scheduler
        threads: list[threading.Thread] = []
        records = []

        def runner(child_ctx, thunk) -> None:
            error: BaseException | None = None
            try:
                sched.thread_started(child_ctx)
                thunk()
            except BaseException as exc:  # noqa: BLE001 - stored and re-raised
                error = exc
            finally:
                sched.thread_finished(child_ctx, error)

        for child_ctx, thunk in jobs:
            self.contexts[child_ctx.id] = child_ctx
            records.append(sched.register(child_ctx, parent_id=ctx.id))
            thread = threading.Thread(
                target=runner, args=(child_ctx, thunk),
                name=child_ctx.label, daemon=False,
            )
            threads.append(thread)
            thread.start()

        if join:
            sched.block_for_join(ctx, [child_ctx.id for child_ctx, _ in jobs])
            for thread in threads:
                thread.join()
            failures = [(r.label, r.error) for r in records
                        if r.error is not None]
            raise_thread_failures(failures, span, "parallel")
        else:
            self._background.extend(threads)
            self._background_ctxs.extend(records)

    def parallel_for_workers(self, n_items: int) -> int:
        if self._pfor_replay:
            recorded = self._pfor_replay.popleft()
            return max(1, min(int(recorded["workers"]), n_items))
        workers = self.config.num_workers or 4
        return max(1, min(workers, n_items))

    def lock(self, ctx, name: str, body: Callable[[], None],
             span: Span = NO_SPAN) -> None:
        obs = self.obs
        if obs is None:
            self.scheduler.acquire_lock(ctx, name, span)
            try:
                body()
            finally:
                self.scheduler.release_lock(ctx, name)
            return
        contended = name in self.scheduler.lock_owner
        t_req = self.now()
        self.scheduler.acquire_lock(ctx, name, span)
        t_acq = self.now()
        try:
            body()
        finally:
            self.scheduler.release_lock(ctx, name)
            obs.lock_span(ctx.id, name, t_req, t_acq, self.now(), contended)

    def start_program(self, root_ctx) -> None:
        self.contexts[root_ctx.id] = root_ctx
        self.scheduler.register(root_ctx)

    def finish_program(self, root_ctx) -> None:
        # The root must keep scheduling others while it waits, so park it as
        # join-blocked on any background threads that are still live.
        if self._background and self.config.wait_for_background:
            root_record = self.scheduler.threads[root_ctx.id]
            for record in self._background_ctxs:
                record.parent = root_record
            self.scheduler.block_for_join(
                root_ctx, [r.id for r in self._background_ctxs]
            )
            for thread in self._background:
                thread.join()
            failures = [(r.label, r.error) for r in self._background_ctxs
                        if r.error is not None]
            try:
                raise_thread_failures(failures, NO_SPAN, "background")
            finally:
                self.scheduler.thread_finished(root_ctx, None)
            return
        self.scheduler.thread_finished(root_ctx, None)
