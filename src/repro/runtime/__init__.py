"""Tetra's parallel runtime: values, environments, locks, and backends."""

from .backend import (
    Backend,
    RuntimeConfig,
    SequentialBackend,
    ThreadBackend,
    guided_chunk_sizes,
)
from .coop import (
    CoopBackend,
    CoopScheduler,
    ManualPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulerPolicy,
    ScriptPolicy,
)
from .cost import DEFAULT_COST_MODEL, FREE_PARALLELISM, CostModel
from .env import Environment, Frame
from .locks import LockStats, LockTable
from .machine import Machine, ScheduleResult, speedup_curve
from .proc import ProcBackend
from .schedule import (
    Schedule,
    ScheduleRecorder,
    load_schedule,
    replay_schedule,
    save_schedule,
)
from .sim import SimBackend
from .taskgraph import Access, Acquire, Fork, Release, Task, TraceRecorder, Work
from .values import (
    TetraArray,
    Value,
    coerce_to,
    deep_copy,
    display,
    int_div,
    int_mod,
    make_array,
    real_div,
    real_mod,
    tetra_pow,
    type_of_value,
)

__all__ = [
    "Backend", "RuntimeConfig", "SequentialBackend", "ThreadBackend",
    "ProcBackend", "guided_chunk_sizes",
    "CoopBackend", "CoopScheduler", "ManualPolicy", "RandomPolicy",
    "RoundRobinPolicy", "SchedulerPolicy", "ScriptPolicy",
    "DEFAULT_COST_MODEL", "FREE_PARALLELISM", "CostModel",
    "Environment", "Frame", "LockStats", "LockTable",
    "Machine", "ScheduleResult", "speedup_curve", "SimBackend",
    "Schedule", "ScheduleRecorder", "load_schedule", "replay_schedule",
    "save_schedule",
    "Access", "Acquire", "Fork", "Release", "Task", "TraceRecorder", "Work",
    "TetraArray", "Value", "coerce_to", "deep_copy", "display",
    "int_div", "int_mod", "make_array", "real_div", "real_mod",
    "tetra_pow", "type_of_value",
]
