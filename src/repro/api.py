"""High-level convenience API — the functions most users call.

>>> from repro import run_source
>>> result = run_source('''
... def main():
...     print("hello from tetra")
... ''')
>>> result.output
'hello from tetra\\n'

Every function here composes the pipeline (lex → parse → check → interpret)
with sensible defaults; the underlying pieces stay importable for tools that
need finer control.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import TetraError
from .parser import parse_source
from .source import SourceFile
from .tetra_ast import Program
from .types import ProgramSymbols, check_program, collect_diagnostics
from .interp import Interpreter
from .runtime import Backend, RuntimeConfig, SequentialBackend, SimBackend, ThreadBackend
from .runtime.coop import CoopBackend, RandomPolicy, RoundRobinPolicy, ScriptPolicy
from .stdlib.io import CapturingIO

#: Backend factories selectable by name in :func:`run_source`.
BACKEND_FACTORIES = {
    "thread": ThreadBackend,
    "sequential": SequentialBackend,
    "coop": CoopBackend,
    "sim": SimBackend,
}


@dataclass
class RunResult:
    """Everything a run produced."""

    program: Program
    backend: Backend
    io: CapturingIO
    symbols: ProgramSymbols
    #: Data races observed by the detector (empty unless ``detect_races``).
    races: list = field(default_factory=list)

    @property
    def output(self) -> str:
        return self.io.output

    def output_lines(self) -> list[str]:
        return self.io.lines()


def compile_source(text: str, name: str = "<string>") -> tuple[Program, SourceFile]:
    """Parse and type-check; returns the checked program and its source."""
    source = SourceFile.from_string(text, name)
    program = parse_source(source)
    check_program(program, source)
    return program, source


def check_source(text: str, name: str = "<string>") -> list[TetraError]:
    """All static diagnostics for a piece of source (empty list = clean)."""
    source = SourceFile.from_string(text, name)
    try:
        program = parse_source(source)
    except TetraError as exc:
        return [exc]
    return list(collect_diagnostics(program, source))


def run_source(text: str, inputs: list[str] | None = None,
               backend: str | Backend = "thread",
               config: RuntimeConfig | None = None,
               name: str = "<string>", entry: str = "main",
               detect_races: bool = False) -> RunResult:
    """Compile and run Tetra source, capturing console output.

    ``backend`` is a name from :data:`BACKEND_FACTORIES` or a ready-made
    backend instance (e.g. a ``SimBackend(cores=8)`` whose trace you want).
    ``detect_races=True`` turns on the dynamic race detector; observed
    races land in :attr:`RunResult.races`.
    """
    program, source = compile_source(text, name)
    if detect_races:
        config = replace(config, detect_races=True) if config is not None \
            else RuntimeConfig(detect_races=True)
    if isinstance(backend, str):
        try:
            factory = BACKEND_FACTORIES[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; pick one of "
                f"{sorted(BACKEND_FACTORIES)}"
            ) from None
        backend_obj = factory() if config is None else _construct(factory, config)
    else:
        backend_obj = backend
    io = CapturingIO(inputs or [])
    interp = Interpreter(program, source, backend=backend_obj, io=io,
                         config=config)
    interp.run(entry)
    return RunResult(program, backend_obj, io, program.symbols,  # type: ignore[attr-defined]
                     races=interp.races)


def _construct(factory, config: RuntimeConfig):
    """Backends take ``config`` at different positions; pass by keyword."""
    return factory(config=config)


def run_file(path: str, inputs: list[str] | None = None,
             backend: str | Backend = "thread",
             config: RuntimeConfig | None = None,
             detect_races: bool = False) -> RunResult:
    """Compile and run a ``.ttr`` file."""
    source = SourceFile.from_path(path)
    return run_source(source.text, inputs, backend, config, name=path,
                      detect_races=detect_races)
