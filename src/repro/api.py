"""High-level convenience API — the functions most users call.

>>> from repro import run_source
>>> result = run_source('''
... def main():
...     print("hello from tetra")
... ''')
>>> result.output
'hello from tetra\\n'

Every function here composes the pipeline (lex → parse → check → interpret)
with sensible defaults; the underlying pieces stay importable for tools that
need finer control.

Repeat runs of the same source — REPL loops, IDE re-runs, benchmark
harnesses — go through a small LRU **program cache** keyed by
``(sha256(text), name, entry)``: the lex/parse/check work happens once and
the checked AST (with its type annotations and symbol tables) is reused.
The AST is read-only during interpretation, so cached programs are safe to
share across runs, backends, and threads; per-interpreter state (the
closure trees of the fast path) is rebuilt per run, which is a single
O(nodes) pass.  Pass ``cache=False`` (or ``tetra run --no-cache``) to
bypass it, e.g. when benchmarking the front end itself.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from .errors import TetraError
from .parser import parse_source
from .source import SourceFile
from .tetra_ast import Program
from .types import ProgramSymbols, check_program, collect_diagnostics
from .interp import Interpreter
from .runtime import Backend, RuntimeConfig, SequentialBackend, SimBackend, ThreadBackend
from .runtime.coop import CoopBackend, RandomPolicy, RoundRobinPolicy, ScriptPolicy
from .runtime.proc import ProcBackend
from .stdlib.io import CapturingIO

#: Backend factories selectable by name in :func:`run_source`.
BACKEND_FACTORIES = {
    "thread": ThreadBackend,
    "sequential": SequentialBackend,
    "coop": CoopBackend,
    "sim": SimBackend,
    "proc": ProcBackend,
}


@dataclass
class RunResult:
    """Everything a run produced."""

    program: Program
    backend: Backend
    io: CapturingIO
    symbols: ProgramSymbols
    #: Data races observed by the detector (empty unless ``detect_races``).
    races: list = field(default_factory=list)
    #: The program's display name (file path or the default "<string>").
    name: str = "<string>"
    #: Aggregated :class:`~repro.obs.RunMetrics` (None unless the run was
    #: made with ``metrics=True``).
    metrics: object = None
    #: The raw :class:`~repro.obs.Observer` when tracing/metrics/profiling
    #: was enabled; feed it to :func:`repro.obs.chrome_trace` or
    #: :func:`repro.obs.render_profile`.
    obs: object = None
    #: :class:`~repro.resilience.faults.FaultRecord` entries the chaos plan
    #: injected (empty unless the run had a ``chaos_seed``/fault plan).
    faults: list = field(default_factory=list)
    #: Injection counters by kind (e.g. ``{"preempt": 12}``), never capped.
    fault_counts: dict = field(default_factory=dict)
    #: Why the run stopped early: ``"time"``, ``"memory"``, ``"steps"``,
    #: ``"recursion"``, ``"cancelled"``, ``"deadlock"``, ``"error"`` — or
    #: None when it ran to completion.  Only set with ``on_error="return"``.
    aborted_by: str | None = None
    #: The :class:`~repro.errors.TetraError` that ended the run, when
    #: ``on_error="return"`` swallowed it.  Partial output/races/metrics
    #: gathered before the abort are still populated.
    error: object = None
    #: The recorded schedule artifact (a ``tetra-schedule/1`` dict, ready
    #: for :func:`repro.runtime.schedule.save_schedule`) when the run was
    #: made with ``record_schedule=True``.
    schedule: dict | None = None
    #: :class:`~repro.runtime.schedule.ReplayReport` comparing this run to
    #: its recording, when the run was made with ``replay=...``.
    replay: object = None

    @property
    def output(self) -> str:
        return self.io.output

    def output_lines(self) -> list[str]:
        return self.io.lines()

    def chrome_trace(self) -> dict:
        """The run as a Chrome trace-event document (``trace=True`` runs).

        Dump it with ``json.dump`` and load the file in Perfetto or
        ``chrome://tracing``.
        """
        if self.obs is None:
            raise ValueError(
                "this run was not traced — pass trace=True (or metrics=True) "
                "to run_source/run_file"
            )
        from .obs import chrome_trace
        return chrome_trace(self.obs, self.backend)

    def __repr__(self) -> str:
        # The default dataclass repr would dump the whole AST, backend, and
        # symbol tables — hundreds of lines in a pytest failure report.
        return (
            f"<RunResult {self.name!r} backend={self.backend.name} "
            f"output={len(self.output)} chars races={len(self.races)}>"
        )


def compile_source(text: str, name: str = "<string>") -> tuple[Program, SourceFile]:
    """Parse and type-check; returns the checked program and its source."""
    source = SourceFile.from_string(text, name)
    program = parse_source(source)
    check_program(program, source)
    return program, source


# ----------------------------------------------------------------------
# Program cache
# ----------------------------------------------------------------------
_CACHE_CAPACITY = 128
_cache: OrderedDict[tuple, tuple[Program, SourceFile]] = OrderedDict()
_cache_lock = threading.Lock()
_cache_hits = 0
_cache_misses = 0
#: Single-flight tracking: key -> Event set when the leading compile of
#: that key finishes (successfully or not).  Guarded by ``_cache_lock``.
#: Forked worker processes must reset this alongside ``_cache_lock`` — an
#: inherited Event copy would never be set in the child.
_inflight: dict[tuple, threading.Event] = {}


def cached_program(text: str, name: str = "<string>",
                   entry: str = "main",
                   cache: bool = True,
                   flags: tuple = (False, False, False)
                   ) -> tuple[Program, SourceFile]:
    """:func:`compile_source` behind the LRU program cache.

    Only successful compilations are cached — a program with a syntax or
    type error raises every time, with a fresh diagnostic.  Any change to
    the source text changes its hash and misses the cache, so there is no
    explicit invalidation to get wrong.

    ``flags`` folds compile-affecting run modes into the key — by default
    ``(detect_races, observability, native)`` all off, the plain-run
    variant.  The race detector and the observability layer bind their
    hooks into per-node annotations and compiled closures, and the
    native tier annotates ``parallel for`` nodes with its lowered-kernel
    metadata; callers that enable any of them pass their flag tuple here
    so an instrumented (or native-lowered) run never shares a cached
    tree with a plain one (each variant gets its own entry).

    Concurrent misses on the same key are **single-flight**: the first
    caller compiles while the rest wait on its result, so N simultaneous
    requests for the same program (the ``tetra serve`` steady state) cost
    one compile and record one miss — the losers used to compile too and
    silently discard their trees.  A failed leading compile wakes the
    waiters to retry, so each of them still raises its own diagnostic.
    """
    global _cache_hits, _cache_misses
    if not cache:
        return compile_source(text, name)
    key = (hashlib.sha256(text.encode("utf-8")).hexdigest(), name, entry,
           flags)
    while True:
        with _cache_lock:
            cached = _cache.get(key)
            if cached is not None:
                _cache.move_to_end(key)
                _cache_hits += 1
                return cached
            waiter = _inflight.get(key)
            if waiter is None:
                _inflight[key] = threading.Event()
                _cache_misses += 1
                break
        waiter.wait()
    try:
        compiled = compile_source(text, name)
        # Pre-attach the determinism metadata while we are the single
        # flight: every later consumer of this cached tree — notably the
        # serve layer's result-cache gate — reads it as a plain attribute.
        from .analysis.determinism import determinism_info

        determinism_info(compiled[0])
    except BaseException:
        with _cache_lock:
            done = _inflight.pop(key, None)
        if done is not None:
            done.set()
        raise
    with _cache_lock:
        _cache[key] = compiled
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_CAPACITY:
            _cache.popitem(last=False)
        done = _inflight.pop(key, None)
    if done is not None:
        done.set()
    return compiled


def cached_parse(text: str, name: str = "<string>",
                 tag: object = None,
                 cache: bool = True) -> tuple[Program, SourceFile]:
    """Parse (without type-checking) behind the same LRU cache.

    This is the entry point for incremental front ends — the REPL and the
    IDE session — that parse fragments repeatedly and run their own
    checking passes.  ``tag`` scopes the cache entry: the checker annotates
    AST nodes in place, so a cached tree is only safe to reuse by a
    consumer that re-checks it (or checked it) itself — callers pass a
    per-session token to avoid sharing annotated trees across sessions.
    """
    global _cache_hits, _cache_misses
    if not cache:
        source = SourceFile.from_string(text, name)
        return parse_source(source), source
    key = ("parse", hashlib.sha256(text.encode("utf-8")).hexdigest(),
           name, tag)
    with _cache_lock:
        cached = _cache.get(key)
        if cached is not None:
            _cache.move_to_end(key)
            _cache_hits += 1
            return cached
        _cache_misses += 1
    source = SourceFile.from_string(text, name)
    program = parse_source(source)
    with _cache_lock:
        _cache[key] = (program, source)
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_CAPACITY:
            _cache.popitem(last=False)
    return program, source


def clear_program_cache() -> None:
    """Drop every cached program and reset the hit/miss counters."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0


def program_cache_info() -> dict:
    """Cache statistics (mirrors ``functools.lru_cache``'s info fields)."""
    with _cache_lock:
        return {
            "hits": _cache_hits,
            "misses": _cache_misses,
            "currsize": len(_cache),
            "maxsize": _CACHE_CAPACITY,
        }


def check_source(text: str, name: str = "<string>") -> list[TetraError]:
    """All static diagnostics for a piece of source (empty list = clean)."""
    source = SourceFile.from_string(text, name)
    try:
        program = parse_source(source)
    except TetraError as exc:
        return [exc]
    return list(collect_diagnostics(program, source))


def _abort_kind(exc) -> str:
    """Classify why a run ended early (for :attr:`RunResult.aborted_by`)."""
    from .errors import (
        TetraCancelledError,
        TetraDeadlockError,
        TetraLimitError,
    )

    if isinstance(exc, TetraDeadlockError):
        return "deadlock"
    if isinstance(exc, TetraCancelledError):
        return "cancelled"
    if isinstance(exc, TetraLimitError):
        return exc.limit or "limit"
    return "error"


def run_source(text: str, inputs: list[str] | None = None,
               backend: str | Backend = "thread",
               config: RuntimeConfig | None = None,
               name: str = "<string>", entry: str = "main",
               detect_races: bool = False,
               cache: bool = True, fast: bool = True,
               trace: bool = False, metrics: bool = False,
               profile: bool = False,
               time_limit: float = 0.0, memory_limit: int = 0,
               output_limit: int = 0,
               cancel: object = None, chaos_seed: int | None = None,
               record_schedule: bool = False, replay: object = None,
               native: str | None = None,
               io: CapturingIO | None = None,
               on_error: str = "raise") -> RunResult:
    """Compile and run Tetra source, capturing console output.

    ``backend`` is a name from :data:`BACKEND_FACTORIES` or a ready-made
    backend instance (e.g. a ``SimBackend(cores=8)`` whose trace you want).
    ``detect_races=True`` turns on the dynamic race detector; observed
    races land in :attr:`RunResult.races`.  ``cache=False`` bypasses the
    program cache; ``fast=False`` forces the tree-walking interpreter
    instead of the precompiled closure fast path.  ``trace``/``metrics``/
    ``profile`` enable the observability layer: the run then carries an
    :attr:`RunResult.obs` observer, ``metrics`` additionally aggregates it
    into :attr:`RunResult.metrics`, and :meth:`RunResult.chrome_trace`
    exports the timeline.

    Guardrails and chaos (DESIGN.md §6f): ``time_limit`` aborts the run
    after that much backend-clock time (host seconds on thread/sequential,
    virtual units on sim/coop), ``memory_limit`` caps live value-heap
    cells (and derives a captured-output cap so print loops are bounded
    too), ``output_limit`` caps printed characters explicitly, ``cancel``
    takes a :class:`~repro.resilience.CancelToken`
    observed at every statement, and ``chaos_seed`` runs the program under
    a seeded :class:`~repro.resilience.FaultPlan` (injected faults land in
    :attr:`RunResult.faults`).  ``on_error="return"`` reports a failed run
    through :attr:`RunResult.error`/:attr:`RunResult.aborted_by` — with
    whatever partial output, races, and metrics the run produced — instead
    of raising.

    ``native`` picks the native compiled tier's mode (``"auto"``,
    ``"off"``, ``"require"`` — see :mod:`repro.compiler.native`); None
    defers to ``config.native`` (default off).  Under ``"auto"``,
    type-checked numeric functions and merge-safe ``parallel for``
    bodies run as compiled C kernels, and everything ineligible falls
    back to the fast path with the reason in :attr:`RunResult.metrics`.

    Record/replay (DESIGN.md §6g): ``record_schedule=True`` attaches a
    :class:`~repro.runtime.schedule.ScheduleRecorder` and leaves the
    versioned artifact on :attr:`RunResult.schedule`; ``replay`` takes a
    recorded artifact (a :class:`~repro.runtime.schedule.Schedule`, a raw
    dict, or a file path), forces the coop backend with a
    :class:`~repro.runtime.coop.ReplayPolicy`, and attaches a fidelity
    :class:`~repro.runtime.schedule.ReplayReport` as
    :attr:`RunResult.replay`.  Most callers replay through
    :func:`repro.runtime.schedule.replay_schedule`, which also feeds the
    recorded source and inputs back in.
    """
    if on_error not in ("raise", "return"):
        raise ValueError('on_error must be "raise" or "return"')
    sched = None
    if replay is not None:
        from .runtime.schedule import load_schedule, parse_schedule

        sched = load_schedule(replay) if isinstance(replay, str) \
            else parse_schedule(replay)
        if isinstance(backend, str):
            backend = "coop"  # replays run on the coop scheduler
        if sched.detect_races:
            detect_races = True
        if chaos_seed is None:
            chaos_seed = sched.chaos_seed
    if native is not None and native not in ("auto", "off", "require"):
        raise ValueError("native must be 'auto', 'off', or 'require'")
    cfg_races = detect_races or (config is not None and config.detect_races)
    cfg_obs = (trace or metrics or profile
               or (config is not None and (config.trace or config.metrics
                                           or config.profile)))
    cfg_native = native if native is not None \
        else (config.native if config is not None else "off")
    program, source = cached_program(
        text, name, entry, cache=cache,
        flags=(bool(cfg_races), bool(cfg_obs), cfg_native != "off"),
    )
    overrides = {}
    if native is not None:
        overrides["native"] = native
    if detect_races:
        overrides["detect_races"] = True
    if trace:
        overrides["trace"] = True
    if metrics:
        overrides["metrics"] = True
    if profile:
        overrides["profile"] = True
    if time_limit:
        overrides["time_limit"] = time_limit
    if memory_limit:
        overrides["memory_limit"] = memory_limit
    if output_limit:
        overrides["output_limit"] = output_limit
    if cancel is not None:
        overrides["cancel"] = cancel
    if chaos_seed is not None:
        overrides["chaos_seed"] = chaos_seed
    recorder = None
    if record_schedule:
        from .runtime.schedule import ScheduleRecorder

        recorder = ScheduleRecorder()
        overrides["schedule_recorder"] = recorder
    if sched is not None:
        overrides["schedule_replay"] = sched
        overrides["chunking"] = sched.chunking
        if sched.num_workers is not None:
            overrides["num_workers"] = sched.num_workers
    if overrides:
        config = replace(config, **overrides) if config is not None \
            else RuntimeConfig(**overrides)
        if config.fault_plan is None and config.chaos_seed is not None:
            # dataclasses.replace re-runs __post_init__, but cover the
            # path where the caller's config already carried a seed.
            from .resilience import FaultPlan

            config.fault_plan = FaultPlan(config.chaos_seed)
    if sched is not None and config is not None:
        # Same seed AND same knobs as the recording — a plan built from
        # the bare seed would use default probabilities and inject a
        # different set of thread faults.
        config.fault_plan = sched.make_fault_plan()
    if isinstance(backend, str):
        try:
            factory = BACKEND_FACTORIES[backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {backend!r}; pick one of "
                f"{sorted(BACKEND_FACTORIES)}"
            ) from None
        backend_obj = factory() if config is None else _construct(factory, config)
    else:
        backend_obj = backend
    # An embedder (the serve worker, the IDE pane) may bring its own
    # channel — e.g. one that streams chunks as they are written; it then
    # owns the input lines too.
    if io is None:
        io = CapturingIO(inputs or [])
    interp = Interpreter(program, source, backend=backend_obj, io=io,
                         config=config, fast=fast)
    error = None
    try:
        interp.run(entry)
    except TetraError as exc:
        if on_error == "raise":
            raise
        error = exc
    result = RunResult(program, backend_obj, io, program.symbols,  # type: ignore[attr-defined]
                       races=interp.races, name=name)
    if error is not None:
        result.error = error
        result.aborted_by = _abort_kind(error)
    plan = interp.config.fault_plan
    if plan is not None:
        result.faults = list(plan.records)
        result.fault_counts = dict(plan.counts)
    if recorder is not None:
        from .runtime.schedule import build_artifact

        result.schedule = build_artifact(
            recorder, source_text=text, name=name, entry=entry,
            backend_name=backend_obj.name, config=interp.config,
            inputs=inputs, output=result.output,
            status=result.aborted_by or "ok", races=interp.races,
            fault_counts=result.fault_counts,
        )
    if sched is not None:
        from .runtime.schedule import ReplayReport

        policy = getattr(getattr(backend_obj, "scheduler", None),
                         "policy", None)
        result.replay = ReplayReport(sched, result, policy)
    obs = interp._obs
    if obs is not None:
        result.obs = obs
        if obs.metrics:
            from .obs import collect_metrics
            result.metrics = collect_metrics(obs, backend_obj)
    return result


def _construct(factory, config: RuntimeConfig):
    """Backends take ``config`` at different positions; pass by keyword."""
    return factory(config=config)


def run_file(path: str, inputs: list[str] | None = None,
             backend: str | Backend = "thread",
             config: RuntimeConfig | None = None,
             entry: str = "main",
             detect_races: bool = False,
             cache: bool = True, fast: bool = True,
             trace: bool = False, metrics: bool = False,
             profile: bool = False,
             time_limit: float = 0.0, memory_limit: int = 0,
             output_limit: int = 0,
             cancel: object = None, chaos_seed: int | None = None,
             record_schedule: bool = False, replay: object = None,
             native: str | None = None,
             io: CapturingIO | None = None,
             on_error: str = "raise") -> RunResult:
    """Compile and run a ``.ttr`` file.

    Takes every knob :func:`run_source` takes (``name`` excepted — the
    file path is the program's name): in particular ``entry=`` runs a
    function other than ``main`` and ``replay=`` re-runs the file under a
    recorded schedule artifact, which used to be reachable only through
    ``run_source``.
    """
    source = SourceFile.from_path(path)
    return run_source(source.text, inputs, backend, config, name=path,
                      entry=entry,
                      detect_races=detect_races, cache=cache, fast=fast,
                      trace=trace, metrics=metrics, profile=profile,
                      time_limit=time_limit, memory_limit=memory_limit,
                      output_limit=output_limit,
                      cancel=cancel, chaos_seed=chaos_seed,
                      record_schedule=record_schedule, replay=replay,
                      native=native, io=io, on_error=on_error)
