"""Aggregate an :class:`~repro.obs.observer.Observer` into run metrics.

``RunMetrics`` answers the questions the paper's evaluation asks of a
parallel run — how long, how busy was each thread, how contended were the
locks, how balanced was the ``parallel for`` — uniformly across backends.
Times are in the backend's clock units: seconds on the thread and
sequential backends, abstract cost units on sim, scheduler turns on coop.

On the sim backend the metrics additionally include the machine model's
verdict (makespan, speedup vs. a 1-core schedule, utilization), which is
the authoritative speedup number; the generic ``estimated_speedup`` is a
busy-time/elapsed ratio that works on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LockMetrics:
    """Aggregated behaviour of one named lock."""

    acquisitions: int = 0
    contended: int = 0
    wait_time: float = 0.0
    hold_time: float = 0.0


@dataclass
class ParallelForMetrics:
    """Load balance of the workers of one ``parallel for`` line."""

    line: int
    items: list[int] = field(default_factory=list)
    busy: list[float] = field(default_factory=list)

    @property
    def workers(self) -> int:
        return len(self.items)

    @property
    def skew(self) -> float:
        """max/mean worker busy time; 1.0 is a perfectly balanced split."""
        useful = [b for b in self.busy if b > 0]
        if not useful:
            return 1.0
        return max(useful) / (sum(useful) / len(useful))


@dataclass
class RunMetrics:
    """Everything :func:`collect_metrics` derives from one run."""

    backend: str
    #: Host seconds for the whole run (perf_counter), every backend.
    wall_time_s: float
    #: Elapsed time in the backend's own clock units (= wall seconds on the
    #: thread backend, virtual units on sim, turns on coop).
    elapsed: float
    #: True when ``elapsed`` and the per-thread numbers are deterministic
    #: virtual time rather than host seconds.
    virtual_clock: bool
    threads: int
    #: Thread label → busy time.  On wall-clock backends: lifetime minus
    #: join and lock waiting.  On virtual-clock backends the shared clock
    #: advances while siblings run, so busy is the work actually charged to
    #: the thread (cost units on sim, scheduler turns on coop).
    thread_busy: dict[str, float] = field(default_factory=dict)
    locks: dict[str, LockMetrics] = field(default_factory=dict)
    parallel_for: list[ParallelForMetrics] = field(default_factory=list)
    total_busy: float = 0.0
    #: Busy-time / elapsed — a rough "how parallel was this run" figure.
    estimated_speedup: float = 1.0
    #: Machine-model results (sim backend only): cores, makespan,
    #: serial_makespan, speedup, utilization, lock_wait.
    sim: dict | None = None
    #: Process-pool results (proc backend only): worker processes started
    #: (real cores — 0 if no loop was offloaded), machine cores available,
    #: and (line, reason) for every loop that fell back to threads.
    proc: dict | None = None
    #: Native-tier results (``--native`` runs only): mode, whether the
    #: tier came up (and the notice when it didn't), lowered function
    #: names, kernel call counts, artifact-cache hit, and (line, reason)
    #: for everything that stayed on the fast path.
    native: dict | None = None

    def to_dict(self) -> dict:
        """A JSON-friendly view (tests and ``RunResult`` consumers)."""
        return {
            "backend": self.backend,
            "wall_time_s": self.wall_time_s,
            "elapsed": self.elapsed,
            "virtual_clock": self.virtual_clock,
            "threads": self.threads,
            "thread_busy": dict(self.thread_busy),
            "locks": {
                name: {
                    "acquisitions": m.acquisitions,
                    "contended": m.contended,
                    "wait_time": m.wait_time,
                    "hold_time": m.hold_time,
                }
                for name, m in self.locks.items()
            },
            "parallel_for": [
                {
                    "line": p.line,
                    "workers": p.workers,
                    "items": list(p.items),
                    "busy": list(p.busy),
                    "skew": p.skew,
                }
                for p in self.parallel_for
            ],
            "total_busy": self.total_busy,
            "estimated_speedup": self.estimated_speedup,
            "sim": dict(self.sim) if self.sim is not None else None,
            "proc": dict(self.proc) if self.proc is not None else None,
            "native": (dict(self.native)
                       if self.native is not None else None),
        }

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The human panel ``tetra run --metrics`` prints."""
        unit = "units" if self.virtual_clock else "s"

        def t(value: float) -> str:
            if self.virtual_clock:
                return f"{value:.0f} {unit}"
            return f"{value * 1000:.2f} ms"

        lines = [f"run metrics ({self.backend} backend)"]
        lines.append(f"  wall time          {self.wall_time_s * 1000:.2f} ms")
        if self.virtual_clock:
            lines.append(f"  virtual elapsed    {t(self.elapsed)}")
        lines.append(f"  threads            {self.threads}")
        for label, busy in list(self.thread_busy.items())[:12]:
            lines.append(f"    {label:<38} busy {t(busy)}")
        if len(self.thread_busy) > 12:
            lines.append(f"    ... and {len(self.thread_busy) - 12} more")
        if self.locks:
            lines.append("  lock contention")
            for name, m in sorted(self.locks.items()):
                lines.append(
                    f"    lock {name:<12} {m.acquisitions} acquisitions "
                    f"({m.contended} contended), wait {t(m.wait_time)}, "
                    f"hold {t(m.hold_time)}"
                )
        else:
            lines.append("  lock contention    (no locks used)")
        if self.parallel_for:
            for p in self.parallel_for:
                lines.append(
                    f"  parallel for @{p.line}    {p.workers} workers, "
                    f"items {p.items}, load skew {p.skew:.2f}x"
                )
        else:
            lines.append("  load balance       (no parallel for)")
        lines.append(
            f"  est. speedup       {self.estimated_speedup:.2f}x "
            f"(busy {t(self.total_busy)} / elapsed {t(self.elapsed)})"
        )
        if self.sim is not None:
            s = self.sim
            lines.append(
                f"  sim schedule       {s['cores']} cores: makespan "
                f"{s['makespan']:.0f} units, {s['speedup']:.2f}x vs 1 core, "
                f"{s['utilization'] * 100:.1f}% utilization, lock wait "
                f"{s['lock_wait']:.0f} units"
            )
        if self.proc is not None:
            p = self.proc
            lines.append(
                f"  proc pool          {p['workers']} worker processes "
                f"({p['machine_cores']} cores on this machine)"
            )
            for line_no, reason in p["fallbacks"]:
                lines.append(
                    f"    line {line_no}: ran on threads — {reason}"
                )
        if self.native is not None:
            n = self.native
            if n["enabled"]:
                built = ("artifact cache hit" if n["cache_hit"]
                         else "cold build")
                lines.append(
                    f"  native tier        {len(n['functions'])} "
                    f"function(s), {n['parallel_loops']} parallel loop(s) "
                    f"compiled to C ({built}); {n['calls']} call(s), "
                    f"{n['parallel_calls']} kernel loop run(s)"
                )
            else:
                lines.append(
                    f"  native tier        unavailable — {n['notice']}"
                )
            for line_no, reason in n["fallbacks"]:
                lines.append(
                    f"    line {line_no}: stayed on the fast path — "
                    f"{reason}"
                )
        return "\n".join(lines)


def collect_metrics(obs, backend) -> RunMetrics:
    """Fold the observer's raw events into a :class:`RunMetrics`."""
    elapsed = max(0.0, obs.program_end - obs.program_start)
    wall = max(0.0, obs.wall_end - obs.wall_start)

    join_wait: dict[int, float] = {}
    for cid, _kind, start, end, _n, _line, join in obs.groups:
        if join:
            join_wait[cid] = join_wait.get(cid, 0.0) + (end - start)
    # Uncontended acquisitions pay pure bookkeeping overhead between
    # request and grant; only contended ones represent actual waiting.
    lock_wait: dict[int, float] = {}
    for cid, _name, t_req, t_acq, _t_rel, contended in obs.lock_events:
        if contended:
            lock_wait[cid] = lock_wait.get(cid, 0.0) + (t_acq - t_req)

    # Virtual-clock backends share one clock across threads (it advances
    # while siblings run), so a lifetime span overstates busy time; use the
    # work actually charged to each thread instead — cost units on sim,
    # scheduler turns on coop.
    charged: dict[int, float] | None = None
    if obs.virtual:
        charged = {cid: float(u) for cid, u in obs.units.items()}
        if not charged:
            scheduler = getattr(backend, "scheduler", None)
            if scheduler is not None:
                charged = {cid: float(n)
                           for cid, n in scheduler.statements_run.items()}

    def busy_of(cid: int, lifetime: float) -> float:
        if charged is not None:
            return charged.get(cid, 0.0)
        return max(
            0.0,
            lifetime - join_wait.get(cid, 0.0) - lock_wait.get(cid, 0.0),
        )

    thread_busy: dict[str, float] = {}
    for cid, label in obs.threads.items():
        if charged is None:
            if cid == obs.program_ctx_id:
                lifetime = elapsed
            else:
                span = obs.thread_spans.get(cid)
                if span is None:
                    continue
                lifetime = span[1] - span[0]
        else:
            lifetime = 0.0
        # Same-role labels (e.g. "worker 1" across loop iterations) merge.
        thread_busy[label] = thread_busy.get(label, 0.0) + busy_of(cid, lifetime)

    locks: dict[str, LockMetrics] = {}
    for _cid, name, t_req, t_acq, t_rel, contended in obs.lock_events:
        m = locks.setdefault(name, LockMetrics())
        m.acquisitions += 1
        m.contended += 1 if contended else 0
        if contended:
            m.wait_time += max(0.0, t_acq - t_req)
        m.hold_time += max(0.0, t_rel - t_acq)

    by_line: dict[int, ParallelForMetrics] = {}
    for cid, (line, n_items) in obs.chunks.items():
        p = by_line.setdefault(line, ParallelForMetrics(line))
        p.items.append(n_items)
        span = obs.thread_spans.get(cid)
        lifetime = (span[1] - span[0]) if span is not None else 0.0
        p.busy.append(busy_of(cid, lifetime))

    total_busy = sum(thread_busy.values())
    estimated = total_busy / elapsed if elapsed > 0 else 1.0

    sim = None
    if getattr(backend, "recorder", None) is not None and \
            hasattr(backend, "schedule"):
        try:
            from ..runtime.machine import Machine

            sched = backend.schedule()
            serial = Machine(1, backend.cost_model).run(backend.trace)
            sim = {
                "cores": sched.cores,
                "makespan": sched.makespan,
                "serial_makespan": serial.makespan,
                "speedup": (serial.makespan / sched.makespan
                            if sched.makespan > 0 else 1.0),
                "utilization": sched.utilization,
                "lock_wait": sched.lock_wait_time,
            }
        except Exception:
            # A run that died mid-fork leaves a partial trace the machine
            # model may reject; metrics should still report what they can.
            sim = None
    if sim is not None:
        # The machine model's numbers are authoritative on sim: elapsed is
        # the modelled makespan on N cores, speedup is vs. the 1-core
        # schedule of the same trace.  (The raw program span only covers
        # the root task's own work.)
        elapsed = float(sim["makespan"])
        estimated = sim["speedup"]

    proc = None
    if getattr(backend, "name", "") == "proc":
        import os

        proc = {
            "workers": getattr(backend, "pool_workers", 0),
            "machine_cores": os.cpu_count() or 1,
            "fallbacks": list(getattr(backend, "fallbacks", ())),
        }

    native = None
    native_state = getattr(backend, "native_state", None)
    if native_state is not None:
        native = native_state.as_dict()

    return RunMetrics(
        backend=obs.backend_name,
        wall_time_s=wall,
        elapsed=elapsed,
        virtual_clock=obs.virtual,
        threads=len(obs.threads),
        thread_busy=thread_busy,
        locks=locks,
        parallel_for=sorted(by_line.values(), key=lambda p: p.line),
        total_busy=total_busy,
        estimated_speedup=max(estimated, 0.0),
        sim=sim,
        proc=proc,
        native=native,
    )
