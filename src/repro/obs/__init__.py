"""Runtime observability: execution tracing, parallel metrics, profiling.

The paper's pitch is a system for *seeing* parallel execution; this package
is the runtime half of that promise.  An :class:`Observer` collects span
events (thread lifetimes, fork/join groups, lock acquire/wait/release,
function calls, per-line execution counts) from whichever backend runs the
program; :mod:`repro.obs.metrics` aggregates them into a
:class:`~repro.obs.metrics.RunMetrics`, :mod:`repro.obs.chrometrace`
exports Chrome trace-event JSON viewable in Perfetto, and
:mod:`repro.obs.profile` renders the hottest source lines.

The cost contract mirrors the race detector's: a disabled observer is
``None`` and every hook site pays exactly one ``None`` test.  Timestamps
come from :meth:`Backend.now`, so traces are wall-clock on the thread
backend and **virtual** (deterministic) on the sim and coop backends.
"""

from .observer import Observer
from .metrics import RunMetrics, collect_metrics
from .chrometrace import chrome_trace, write_chrome_trace
from .profile import line_profile, render_profile

__all__ = [
    "Observer",
    "RunMetrics",
    "collect_metrics",
    "chrome_trace",
    "write_chrome_trace",
    "line_profile",
    "render_profile",
]
