"""Export an :class:`~repro.obs.observer.Observer` as Chrome trace JSON.

The output follows the Trace Event Format (``ph: "X"`` complete events with
microsecond timestamps plus ``ph: "M"`` metadata naming threads), which
both ``chrome://tracing`` and https://ui.perfetto.dev load directly.

Two processes appear in the trace:

* **pid 1 — tetra threads**: one track per Tetra thread (main first, then
  spawn order), carrying thread-lifetime spans, fork/join group spans,
  function-call spans, and lock wait/hold spans.
* **pid 2 — sim schedule** (sim backend only): one track per model core,
  replaying the machine model's Gantt timeline, so the virtual schedule
  sits next to the recorded task structure.

On virtual-clock backends timestamps are the virtual units themselves
(1 unit = 1 µs in the viewer), which makes the export byte-for-byte
deterministic; on the thread backend they are microseconds since program
start.
"""

from __future__ import annotations

import json


def _event(name: str, cat: str, ts: float, dur: float, pid: int, tid: int,
           args: dict | None = None) -> dict:
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": round(ts, 3),
        "dur": round(max(dur, 0.0), 3),
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = args
    return event


def chrome_trace(obs, backend=None) -> dict:
    """Build the trace dict (``json.dump`` it to get a Perfetto file)."""
    backend = backend if backend is not None else obs.backend
    tids = obs.tid_map()
    origin = obs.program_start

    def ts(t: float) -> float:
        if obs.virtual:
            return max(t, 0.0)
        return max((t - origin) * 1e6, 0.0)

    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": f"tetra threads ({obs.backend_name} backend)"}},
    ]
    for cid, label in obs.threads.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tids[cid],
            "args": {"name": label},
        })

    if obs.program_ctx_id is not None:
        events.append(_event(
            "program", "program",
            ts(obs.program_start),
            ts(obs.program_end) - ts(obs.program_start),
            1, tids.get(obs.program_ctx_id, 0),
        ))

    for cid, (start, end) in obs.thread_spans.items():
        label = obs.threads.get(cid, f"thread {cid}")
        args = {}
        chunk = obs.chunks.get(cid)
        if chunk is not None:
            args = {"parallel_for_line": chunk[0], "items": chunk[1]}
        events.append(_event(label, "thread", ts(start), ts(end) - ts(start),
                             1, tids.get(cid, 0), args or None))

    for cid, kind, start, end, n, line, join in obs.groups:
        name = f"{kind} ({n} thread{'s' if n != 1 else ''}, line {line})"
        events.append(_event(name, "fork", ts(start), ts(end) - ts(start),
                             1, tids.get(cid, 0),
                             {"join": join, "children": n}))

    for cid, name, t_req, t_acq, t_rel, contended in obs.lock_events:
        tid = tids.get(cid, 0)
        if t_acq > t_req:
            events.append(_event(f"wait lock {name}", "lock-wait",
                                 ts(t_req), ts(t_acq) - ts(t_req), 1, tid,
                                 {"contended": contended}))
        events.append(_event(f"lock {name}", "lock",
                             ts(t_acq), ts(t_rel) - ts(t_acq), 1, tid,
                             {"contended": contended}))

    for cid, name, start, end in obs.calls:
        events.append(_event(name, "call", ts(start), ts(end) - ts(start),
                             1, tids.get(cid, 0)))

    if getattr(backend, "recorder", None) is not None and \
            hasattr(backend, "schedule"):
        try:
            sched = backend.schedule()
        except Exception:
            sched = None  # partial trace from an aborted run
        if sched is not None:
            events.append({
                "name": "process_name", "ph": "M", "pid": 2, "tid": 0,
                "args": {"name": f"sim schedule ({sched.cores} cores)"},
            })
            for core in range(sched.cores):
                events.append({
                    "name": "thread_name", "ph": "M", "pid": 2,
                    "tid": core + 1, "args": {"name": f"core {core}"},
                })
            for seg in sched.timeline:
                events.append(_event(seg.label, "schedule", seg.start,
                                     seg.end - seg.start, 2, seg.core + 1,
                                     {"task": seg.task_id}))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "backend": obs.backend_name,
            "virtual_clock": obs.virtual,
        },
    }


def write_chrome_trace(obs, path: str, backend=None) -> None:
    """Serialize :func:`chrome_trace` to ``path`` (stable key order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(obs, backend), handle, sort_keys=True)
        handle.write("\n")
