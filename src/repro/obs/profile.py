"""Line-level profile: the hottest Tetra source lines of a run.

The observer counts statement executions per source line on every backend;
on the sim backend it additionally attributes *charged cost units* to the
line being executed, which is the paper-faithful notion of "how expensive"
a line is (the machine model schedules exactly those units).  The report
ranks by units when available, by execution count otherwise.
"""

from __future__ import annotations


def line_profile(obs) -> list[tuple[int, int, int]]:
    """``(line, hits, units)`` rows, hottest first."""
    lines = set(obs.line_hits) | set(obs.line_units)
    rows = [
        (line, obs.line_hits.get(line, 0), obs.line_units.get(line, 0))
        for line in lines
    ]
    if obs.line_units:
        rows.sort(key=lambda r: (-r[2], -r[1], r[0]))
    else:
        rows.sort(key=lambda r: (-r[1], r[0]))
    return rows


def render_profile(obs, source=None, top: int = 15) -> str:
    """The panel ``tetra run --profile`` prints."""
    rows = line_profile(obs)
    if not rows:
        return "profile: no statements executed"
    has_units = bool(obs.line_units)
    metric = "cost units" if has_units else "statements"
    out = [f"hottest lines by {metric} ({obs.backend_name} backend)"]
    header = f"  {'line':>5}  {'stmts':>9}"
    if has_units:
        header += f"  {'units':>10}"
    out.append(header + "  source")
    for line, hits, units in rows[:top]:
        text = source.line_text(line).strip() if source is not None else ""
        row = f"  {line:>5}  {hits:>9}"
        if has_units:
            row += f"  {units:>10}"
        out.append(f"{row}  {text}")
    if len(rows) > top:
        out.append(f"  ... and {len(rows) - top} more lines")
    return "\n".join(out)
