"""The event collector the backends and interpreter report into.

One :class:`Observer` watches one program run.  It is created by the
interpreter when any of ``RuntimeConfig.trace`` / ``metrics`` / ``profile``
is set, bound to the backend (whose :meth:`~repro.runtime.backend.Backend.now`
supplies every timestamp), and stored on both the interpreter and the
backend so all hook sites share a single ``None``-check to skip it.

Determinism: on the coop backend every recording call happens while the
calling thread holds the scheduler turn (spans are opened by the *spawner*
and closed by the child before it yields), so event order and the virtual
timestamps are a pure function of the schedule — same policy seed, same
bytes out.  Thread-span starts are therefore taken at *wrap* time (in the
spawner), not inside the child thunk, where OS startup timing would leak in.
"""

from __future__ import annotations

import threading
from typing import Callable

from ..stdlib.builtin_time import monotonic_clock


class Observer:
    """Collects span events and counters for one program run."""

    def __init__(self, trace: bool = False, metrics: bool = False,
                 profile: bool = False):
        self.trace = trace
        self.metrics = metrics
        self.profile = profile
        self.clock: Callable[[], float] = monotonic_clock
        self.virtual = False
        self.backend = None
        self.backend_name = "?"
        self._mu = threading.Lock()
        #: ctx id → label, in registration order (this order *is* the
        #: exported thread-id mapping, so traces don't leak the
        #: process-global ThreadContext counter).
        self.threads: dict[int, str] = {}
        #: ctx id → (start, end) in backend clock units.
        self.thread_spans: dict[int, tuple[float, float]] = {}
        #: (spawner ctx id, kind, start, end, n_children, line, join).
        self.groups: list[tuple[int, str, float, float, int, int, bool]] = []
        #: (ctx id, lock name, t_request, t_acquired, t_released, contended).
        self.lock_events: list[tuple[int, str, float, float, float, bool]] = []
        #: parallel-for worker ctx id → (line, items in its chunk).
        self.chunks: dict[int, tuple[int, int]] = {}
        #: Function-call spans, recorded only while tracing:
        #: (ctx id, function name, start, end).
        self.calls: list[tuple[int, str, float, float]] = []
        #: Profile counters (line → count / charged units).
        self.line_hits: dict[int, int] = {}
        self.line_units: dict[int, int] = {}
        self._cur_line: dict[int, int] = {}
        #: ctx id → total cost units charged to that thread (accounting
        #: backends only).  On virtual-clock backends this — not the span
        #: on the shared clock — is a thread's true busy time.
        self.units: dict[int, int] = {}
        self.program_ctx_id: int | None = None
        self.program_start: float = 0.0
        self.program_end: float = 0.0
        self.wall_start: float = 0.0
        self.wall_end: float = 0.0

    # ------------------------------------------------------------------
    def bind(self, backend) -> None:
        """Point every future timestamp at ``backend``'s clock."""
        self.backend = backend
        self.backend_name = backend.name
        self.clock = backend.now
        self.virtual = backend.virtual_clock

    # -- program lifecycle ----------------------------------------------
    def program_begin(self, ctx) -> None:
        self.register_thread(ctx)
        self.program_ctx_id = ctx.id
        self.wall_start = monotonic_clock()
        self.program_start = self.clock()

    def program_end_mark(self, ctx) -> None:
        self.program_end = self.clock()
        self.wall_end = monotonic_clock()

    # -- threads ---------------------------------------------------------
    def register_thread(self, ctx) -> None:
        with self._mu:
            self.threads.setdefault(ctx.id, ctx.label)

    def wrap_job(self, ctx, thunk):
        """Bracket a spawned thunk with its thread's lifetime span.

        The start timestamp is taken here — in the spawner, which on the
        coop backend holds the scheduler turn — so it is deterministic; the
        end is taken by the child itself, before it yields its final turn.
        """
        clock = self.clock
        start = clock()

        def run():
            try:
                thunk()
            finally:
                end = clock()
                with self._mu:
                    self.thread_spans[ctx.id] = (start, end)

        return run

    def thread_span(self, ctx_id: int, start: float, end: float) -> None:
        """Record a thread's lifetime span directly — used by the proc
        backend, whose workers report their own monotonic stamps (same
        CLOCK_MONOTONIC domain as the parent on Linux) instead of running
        a wrapped thunk in this process."""
        with self._mu:
            self.thread_spans[ctx_id] = (start, end)

    def group_span(self, ctx_id: int, kind: str, start: float, end: float,
                   child_ids: list[int], line: int, join: bool) -> None:
        # Virtual clocks don't advance the spawner while children compute,
        # so stretch a joined group to cover its children's spans.
        if join:
            for cid in child_ids:
                span = self.thread_spans.get(cid)
                if span is not None and span[1] > end:
                    end = span[1]
        with self._mu:
            self.groups.append(
                (ctx_id, kind, start, end, len(child_ids), line, join)
            )

    # -- locks ------------------------------------------------------------
    def lock_span(self, ctx_id: int, name: str, t_req: float, t_acq: float,
                  t_rel: float, contended: bool) -> None:
        with self._mu:
            self.lock_events.append(
                (ctx_id, name, t_req, t_acq, t_rel, contended)
            )

    # -- parallel for ------------------------------------------------------
    def register_chunk(self, ctx_id: int, line: int, n_items: int) -> None:
        with self._mu:
            self.chunks[ctx_id] = (line, n_items)

    # -- calls (trace only: one event per Tetra function call) ------------
    def call_span(self, ctx_id: int, name: str, start: float,
                  end: float) -> None:
        with self._mu:
            self.calls.append((ctx_id, name, start, end))

    # -- profile -----------------------------------------------------------
    def line_hit(self, ctx_id: int, line: int) -> None:
        with self._mu:
            self._cur_line[ctx_id] = line
            self.line_hits[line] = self.line_hits.get(line, 0) + 1

    def charge_units(self, ctx_id: int, units: int) -> None:
        """Record charged cost units against the thread (always) and its
        current source line (profile runs)."""
        with self._mu:
            self.units[ctx_id] = self.units.get(ctx_id, 0) + units
            if self.profile:
                line = self._cur_line.get(ctx_id)
                if line is not None:
                    self.line_units[line] = self.line_units.get(line, 0) + units

    # -- exported ids ------------------------------------------------------
    def tid_map(self) -> dict[int, int]:
        """ctx id → small stable thread id (registration order, main = 1)."""
        return {cid: i for i, cid in enumerate(self.threads, start=1)}
