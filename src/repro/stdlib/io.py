"""I/O channels: where ``print`` goes and where ``read_*`` come from.

The paper's IDE directs "program input and output ... to a console pane";
headless tooling and tests need the same indirection.  An
:class:`IOChannel` is shared by every thread of a program, so writes are
serialized — one ``print`` call emits one atomic chunk even when eight
threads print at once (interleaving *between* calls is still real and
observable, which is the teachable part).

Every channel also meters what the program writes: ``output_limit`` caps
the run at that many characters of output and aborts it with an
*uncatchable* :class:`~repro.errors.TetraLimitError` (``limit="output"``)
when exceeded.  Without the cap a ``while``-loop of ``print`` grows a
:class:`CapturingIO`'s chunk buffer without bound — invisible to the
value-heap :class:`~repro.resilience.guard.HeapMeter`, which only counts
container cells — an OOM vector for any hosted run.  When only
``memory_limit`` is configured the interpreter derives a proportional
output cap, so a memory-limited run is bounded on both fronts.
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from typing import Iterable

from ..errors import TetraIOError, TetraLimitError
from ..source import NO_SPAN, Span


class IOChannel:
    """Abstract console: a byte sink and a line source."""

    #: Abort the run after this many characters of output (0 = unlimited).
    output_limit: int = 0
    #: Characters the program has written so far (all channels meter).
    chars_written: int = 0

    def write(self, text: str) -> None:
        raise NotImplementedError

    def read_line(self, span: Span = NO_SPAN) -> str:
        raise NotImplementedError

    def set_output_limit(self, limit: int) -> None:
        """Arm (or tighten — never loosen) the output cap."""
        limit = int(limit)
        if limit and (not self.output_limit or limit < self.output_limit):
            self.output_limit = limit

    def _meter(self, text: str) -> bool:
        """Account one write; True when the cap is now exceeded.

        Call with the channel's write lock held — the chunk is recorded
        *before* the overflow raises so partial output survives the abort
        (``on_error="return"`` reports it).
        """
        self.chars_written += len(text)
        return bool(self.output_limit) \
            and self.chars_written > self.output_limit

    def _overflow(self) -> None:
        raise TetraLimitError(
            f"the program produced more than {self.output_limit} "
            "characters of output (an unbounded print loop?) — raise the "
            "cap with --output-limit or RuntimeConfig(output_limit=...)",
            limit="output",
        )


class StandardIO(IOChannel):
    """Real stdin/stdout (the ``tetra run`` command-line driver)."""

    def __init__(self, output_limit: int = 0) -> None:
        self._write_lock = threading.Lock()
        self.output_limit = int(output_limit)
        self.chars_written = 0

    def write(self, text: str) -> None:
        with self._write_lock:
            sys.stdout.write(text)
            sys.stdout.flush()
            over = self._meter(text)
        if over:
            self._overflow()

    def read_line(self, span: Span = NO_SPAN) -> str:
        line = sys.stdin.readline()
        if line == "":
            raise TetraIOError("end of input while reading", span)
        return line.rstrip("\n")


class CapturingIO(IOChannel):
    """In-memory console for tests, the IDE pane, and embedded use.

    ``inputs`` pre-loads the lines ``read_*`` builtins will consume;
    :attr:`output` accumulates everything printed, and :meth:`lines` splits
    it for assertions.
    """

    def __init__(self, inputs: Iterable[str] = (), output_limit: int = 0):
        self._write_lock = threading.Lock()
        self._chunks: list[str] = []
        self._inputs: deque[str] = deque(inputs)
        self.output_limit = int(output_limit)
        self.chars_written = 0

    def write(self, text: str) -> None:
        with self._write_lock:
            self._chunks.append(text)
            over = self._meter(text)
        if over:
            self._overflow()

    def read_line(self, span: Span = NO_SPAN) -> str:
        try:
            return self._inputs.popleft()
        except IndexError:
            raise TetraIOError(
                "the program asked for input but none was provided", span
            ) from None

    def push_input(self, line: str) -> None:
        self._inputs.append(line)

    @property
    def output(self) -> str:
        with self._write_lock:
            return "".join(self._chunks)

    def lines(self) -> list[str]:
        text = self.output
        if text.endswith("\n"):
            text = text[:-1]
        return text.split("\n") if text else []

    def clear(self) -> None:
        with self._write_lock:
            self._chunks.clear()


class TeeIO(CapturingIO):
    """A :class:`CapturingIO` that stays interactive.

    Writes echo to real stdout as they happen and ``read_line`` falls back
    to real stdin when no pre-loaded input remains, remembering every line
    the program consumed.  ``tetra run --record-schedule`` uses this so
    the schedule artifact can embed the run's exact output and inputs
    while the program still talks to the console.
    """

    def __init__(self, inputs: Iterable[str] = ()):
        super().__init__(inputs)
        #: Every line ``read_line`` handed to the program, in order —
        #: the artifact's ``inputs`` field, so a replay re-feeds them.
        self.consumed: list[str] = []

    def write(self, text: str) -> None:
        with self._write_lock:
            self._chunks.append(text)
            sys.stdout.write(text)
            sys.stdout.flush()
            over = self._meter(text)
        if over:
            self._overflow()

    def read_line(self, span: Span = NO_SPAN) -> str:
        try:
            line = self._inputs.popleft()
        except IndexError:
            raw = sys.stdin.readline()
            if raw == "":
                raise TetraIOError("end of input while reading",
                                   span) from None
            line = raw.rstrip("\n")
        self.consumed.append(line)
        return line
