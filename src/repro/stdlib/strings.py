"""String builtins — the paper's future-work "string handling functions".

Indexes are 0-based; ``substring`` uses a half-open ``[start, end)`` range
and bounds-checks both ends (an educational language should fail loudly, not
silently clamp the way Python slicing does).
"""

from __future__ import annotations

from ..errors import TetraIndexError, TetraRuntimeError
from ..types.types import BOOL, INT, STRING, ArrayType
from ..runtime.values import TetraArray
from .registry import builtin

_STRING_ARRAY = ArrayType(STRING)


@builtin("substring", [STRING, INT, INT], STRING,
         doc="substring(s, start, end) — characters start..end-1",
         category="string")
def _substring(args, io, span):
    s, start, end = args
    if not (0 <= start <= end <= len(s)):
        raise TetraIndexError(
            f"substring({start}, {end}) is out of range for a string of "
            f"length {len(s)}",
            span,
        )
    return s[start:end]


@builtin("find", [STRING, STRING], INT,
         doc="find(s, needle) — index of the first occurrence, or -1",
         category="string")
def _find(args, io, span):
    return args[0].find(args[1])


@builtin("contains", [STRING, STRING], BOOL,
         doc="contains(s, needle) — whether needle occurs in s",
         category="string")
def _contains(args, io, span):
    return args[1] in args[0]


@builtin("upper", [STRING], STRING, doc="upper(s) — uppercased copy",
         category="string")
def _upper(args, io, span):
    return args[0].upper()


@builtin("lower", [STRING], STRING, doc="lower(s) — lowercased copy",
         category="string")
def _lower(args, io, span):
    return args[0].lower()


@builtin("trim", [STRING], STRING,
         doc="trim(s) — copy without leading/trailing whitespace",
         category="string")
def _trim(args, io, span):
    return args[0].strip()


@builtin("replace", [STRING, STRING, STRING], STRING,
         doc="replace(s, old, new) — copy with every old replaced by new",
         category="string")
def _replace(args, io, span):
    s, old, new = args
    if old == "":
        raise TetraRuntimeError("replace() cannot replace the empty string", span)
    return s.replace(old, new)


@builtin("split", [STRING, STRING], _STRING_ARRAY,
         doc="split(s, sep) — pieces of s between occurrences of sep",
         category="string")
def _split(args, io, span):
    s, sep = args
    if sep == "":
        raise TetraRuntimeError("split() separator must not be empty", span)
    return TetraArray(s.split(sep), STRING)


@builtin("join", [_STRING_ARRAY, STRING], STRING,
         doc="join(parts, sep) — parts glued together with sep",
         category="string")
def _join(args, io, span):
    parts, sep = args
    return sep.join(parts.items)


@builtin("starts_with", [STRING, STRING], BOOL,
         doc="starts_with(s, prefix)", category="string")
def _starts_with(args, io, span):
    return args[0].startswith(args[1])


@builtin("ends_with", [STRING, STRING], BOOL,
         doc="ends_with(s, suffix)", category="string")
def _ends_with(args, io, span):
    return args[0].endswith(args[1])


@builtin("char_code", [STRING], INT,
         doc="char_code(c) — code point of a 1-character string",
         category="string")
def _char_code(args, io, span):
    s = args[0]
    if len(s) != 1:
        raise TetraRuntimeError(
            f"char_code() needs exactly one character, got {len(s)}", span
        )
    return ord(s)


@builtin("char_from_code", [INT], STRING,
         doc="char_from_code(n) — 1-character string for code point n",
         category="string")
def _char_from_code(args, io, span):
    n = args[0]
    if not 0 <= n <= 0x10FFFF:
        raise TetraRuntimeError(f"{n} is not a valid character code", span)
    return chr(n)
