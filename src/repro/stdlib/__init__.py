"""Tetra standard library: builtins registry plus I/O channels.

The paper ships I/O and ``len``; everything else here implements the
future-work library (math, strings, arrays, assertions, timing).
"""

from .io import CapturingIO, IOChannel, StandardIO
from .registry import BUILTINS, Builtin, catalog

__all__ = ["CapturingIO", "IOChannel", "StandardIO", "BUILTINS", "Builtin", "catalog"]
