"""The builtin-function registry: the bridge between checker and runtime.

A :class:`Builtin` owns both halves of a standard-library function: the
static half (``check_types``: argument types → result type, raising
:class:`~repro.errors.TetraTypeError` on misuse) and the dynamic half
(``invoke``: values → value).  The type checker consults the registry by
name; the interpreter and the compiled-code runtime call ``invoke``.

The paper ships only "basic I/O functions and functions for finding the
lengths of strings and arrays"; the richer math/string/array library listed
under future work is implemented here too (see the sibling modules), each
function registering itself through :func:`builtin` / :func:`register`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import TetraTypeError
from ..source import NO_SPAN, Span
from ..types.types import (
    BOOL,
    INT,
    REAL,
    STRING,
    VOID,
    ArrayType,
    Type,
    is_assignable,
)
from ..runtime.values import Value
from .io import IOChannel

#: Signature of a builtin's implementation.  ``io`` is the program console,
#: ``span`` the call site (for runtime error locations).
Impl = Callable[[list[Value], IOChannel, Span], Value]
TypeRule = Callable[[tuple[Type, ...]], Type]


@dataclass(frozen=True)
class Builtin:
    name: str
    check_types: TypeRule
    invoke: Impl
    doc: str = ""
    category: str = "core"


#: The global registry, keyed by function name.
BUILTINS: dict[str, Builtin] = {}


def register(b: Builtin) -> Builtin:
    if b.name in BUILTINS:
        raise ValueError(f"builtin {b.name!r} registered twice")
    BUILTINS[b.name] = b
    return b


def fixed_signature(name: str, params: Sequence[Type], ret: Type) -> TypeRule:
    """A conventional fixed-arity rule with int→real widening on arguments."""

    def rule(arg_types: tuple[Type, ...]) -> Type:
        if len(arg_types) != len(params):
            raise TetraTypeError(
                f"{name}() takes {len(params)} argument(s), "
                f"not {len(arg_types)}"
            )
        for i, (want, got) in enumerate(zip(params, arg_types)):
            if not is_assignable(want, got):
                raise TetraTypeError(
                    f"argument {i + 1} of {name}() must be a {want}, "
                    f"not a {got}"
                )
        return ret

    return rule


def builtin(name: str, params: Sequence[Type], ret: Type, doc: str = "",
            category: str = "core") -> Callable[[Impl], Builtin]:
    """Decorator for the common fixed-signature case::

        @builtin("sqrt", [REAL], REAL, doc="square root")
        def _sqrt(args, io, span):
            return math.sqrt(args[0])
    """

    def wrap(impl: Impl) -> Builtin:
        return register(
            Builtin(name, fixed_signature(name, params, ret), impl, doc, category)
        )

    return wrap


def polymorphic(name: str, rule: TypeRule, doc: str = "",
                category: str = "core") -> Callable[[Impl], Builtin]:
    """Decorator for builtins with bespoke type rules (len, print, sum...)."""

    def wrap(impl: Impl) -> Builtin:
        return register(Builtin(name, rule, impl, doc, category))

    return wrap


def catalog() -> list[Builtin]:
    """All builtins sorted by category then name (docs and ``tetra help``)."""
    return sorted(BUILTINS.values(), key=lambda b: (b.category, b.name))


# Importing the implementation modules populates the registry.  They live in
# separate files purely for organization; the registry is the public face.
from . import arrays as _arrays  # noqa: E402,F401
from . import corelib as _corelib  # noqa: E402,F401
from . import dicts as _dicts  # noqa: E402,F401
from . import iofuncs as _iofuncs  # noqa: E402,F401
from . import mathlib as _mathlib  # noqa: E402,F401
from . import strings as _strings  # noqa: E402,F401
