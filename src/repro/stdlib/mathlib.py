"""Mathematical builtins — the paper's future-work "more robust library
with mathematical functions", implemented.

Transcendentals take and return ``real`` (pass ints freely thanks to the
registry's int→real widening).  ``abs`` / ``min`` / ``max`` are polymorphic
over numeric types and preserve int-ness when every argument is an int,
matching the promotion rule of the arithmetic operators.
"""

from __future__ import annotations

import math

from ..errors import TetraRuntimeError, TetraTypeError
from ..types.types import INT, REAL, IntType, RealType, Type
from .registry import builtin, polymorphic


def _checked(func, name):
    def impl(args, io, span):
        try:
            result = func(*args)
        except ValueError:
            raise TetraRuntimeError(
                f"{name}() is not defined for {', '.join(map(str, args))}", span
            ) from None
        except OverflowError:
            raise TetraRuntimeError(f"{name}() overflowed", span) from None
        return result

    return impl


for _name, _func in [
    ("sqrt", math.sqrt), ("sin", math.sin), ("cos", math.cos),
    ("tan", math.tan), ("asin", math.asin), ("acos", math.acos),
    ("atan", math.atan), ("exp", math.exp), ("log", math.log),
    ("log2", math.log2), ("log10", math.log10),
]:
    builtin(_name, [REAL], REAL, doc=f"{_name}(x) — {_name} of x",
            category="math")(_checked(_func, _name))

builtin("atan2", [REAL, REAL], REAL,
        doc="atan2(y, x) — angle of the point (x, y)",
        category="math")(_checked(math.atan2, "atan2"))


@builtin("floor", [REAL], INT, doc="floor(x) — largest int <= x", category="math")
def _floor(args, io, span):
    return math.floor(args[0])


@builtin("ceil", [REAL], INT, doc="ceil(x) — smallest int >= x", category="math")
def _ceil(args, io, span):
    return math.ceil(args[0])


@builtin("round", [REAL], INT,
         doc="round(x) — nearest int (ties away from zero)", category="math")
def _round(args, io, span):
    x = args[0]
    return math.floor(x + 0.5) if x >= 0 else math.ceil(x - 0.5)


def _numeric_unary(name: str):
    def rule(arg_types: tuple[Type, ...]) -> Type:
        if len(arg_types) != 1 or not arg_types[0].is_numeric:
            raise TetraTypeError(f"{name}() takes one number")
        return arg_types[0]

    return rule


@polymorphic("abs", _numeric_unary("abs"),
             doc="abs(x) — absolute value (keeps int-ness)", category="math")
def _abs(args, io, span):
    return abs(args[0])


def _numeric_binary(name: str):
    def rule(arg_types: tuple[Type, ...]) -> Type:
        if len(arg_types) != 2 or not all(t.is_numeric for t in arg_types):
            raise TetraTypeError(f"{name}() takes two numbers")
        if any(isinstance(t, RealType) for t in arg_types):
            return REAL
        return INT

    return rule


@polymorphic("min", _numeric_binary("min"),
             doc="min(a, b) — the smaller of two numbers", category="math")
def _min(args, io, span):
    result = min(args[0], args[1])
    if any(isinstance(a, float) for a in args):
        return float(result)
    return result


@polymorphic("max", _numeric_binary("max"),
             doc="max(a, b) — the larger of two numbers", category="math")
def _max(args, io, span):
    result = max(args[0], args[1])
    if any(isinstance(a, float) for a in args):
        return float(result)
    return result


@builtin("pi", [], REAL, doc="pi() — the constant π", category="math")
def _pi(args, io, span):
    return math.pi
