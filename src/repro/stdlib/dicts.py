"""Dict builtins — companions to the associative-array type.

``keys`` returns the keys **sorted**, matching dict iteration order, so
programs that enumerate a dict behave identically on every backend and run.
"""

from __future__ import annotations

from ..errors import TetraTypeError
from ..types.types import BOOL, VOID, ArrayType, DictType, Type, is_assignable
from ..runtime.values import TetraArray, TetraDict
from .registry import polymorphic


def _dict_only(name: str, arity: int, result):
    """Type rule for builtins whose first argument must be a dict.

    ``result`` is a callable from the DictType (and remaining arg types) to
    the result type, or raises TetraTypeError.
    """

    def rule(arg_types: tuple[Type, ...]) -> Type:
        if len(arg_types) != arity or not isinstance(arg_types[0], DictType):
            raise TetraTypeError(
                f"{name}() takes ({arity}) argument(s), the first a dict"
            )
        return result(arg_types)

    return rule


def _key_arg_rule(name: str, ret):
    def result(arg_types: tuple[Type, ...]) -> Type:
        d = arg_types[0]
        assert isinstance(d, DictType)
        if arg_types[1] != d.key:
            raise TetraTypeError(
                f"{name}(): this dict is keyed by {d.key}, "
                f"not {arg_types[1]}"
            )
        return ret(d)

    return result


@polymorphic(
    "keys",
    _dict_only("keys", 1, lambda ts: ArrayType(ts[0].key)),
    doc="keys(d) — the dict's keys as a sorted array",
    category="dict",
)
def _keys(args, io, span):
    d: TetraDict = args[0]
    return TetraArray(d.sorted_keys(), d.key_type)


@polymorphic(
    "values",
    _dict_only("values", 1, lambda ts: ArrayType(ts[0].value)),
    doc="values(d) — the dict's values, in sorted-key order",
    category="dict",
)
def _values(args, io, span):
    d: TetraDict = args[0]
    return TetraArray([d.items[k] for k in d.sorted_keys()], d.value_type)


@polymorphic(
    "has_key",
    _dict_only("has_key", 2, _key_arg_rule("has_key", lambda d: BOOL)),
    doc="has_key(d, k) — whether k is present in the dict",
    category="dict",
)
def _has_key(args, io, span):
    return args[1] in args[0].items


@polymorphic(
    "remove_key",
    _dict_only("remove_key", 2, _key_arg_rule("remove_key", lambda d: VOID)),
    doc="remove_key(d, k) — delete an entry (error if k is absent)",
    category="dict",
)
def _remove_key(args, io, span):
    args[0].remove(args[1], span)
    return None


def _get_or_rule(arg_types: tuple[Type, ...]) -> Type:
    if len(arg_types) != 3 or not isinstance(arg_types[0], DictType):
        raise TetraTypeError("get_or() takes (dict, key, default)")
    d = arg_types[0]
    if arg_types[1] != d.key:
        raise TetraTypeError(
            f"get_or(): this dict is keyed by {d.key}, not {arg_types[1]}"
        )
    if not is_assignable(d.value, arg_types[2]):
        raise TetraTypeError(
            f"get_or(): the default must be a {d.value}, not {arg_types[2]}"
        )
    return d.value


@polymorphic(
    "get_or", _get_or_rule,
    doc="get_or(d, k, default) — d[k] if present, otherwise default",
    category="dict",
)
def _get_or(args, io, span):
    d: TetraDict = args[0]
    from ..runtime.values import coerce_to

    if args[1] in d.items:
        return d.items[args[1]]
    return coerce_to(args[2], d.value_type)
