"""Array builtins: aggregation and manipulation helpers.

These are deliberately *functions over arrays* rather than methods — Tetra
has no classes (yet; the paper lists them as future work), so the library
mirrors the style of ``len``.

``sort``/``reversed`` return new arrays; ``fill`` mutates in place.  The
polymorphic rules ensure element types line up statically, so the runtime
bodies can stay unchecked and fast.
"""

from __future__ import annotations

from ..errors import TetraRuntimeError, TetraTypeError
from ..types.types import (
    BOOL,
    INT,
    REAL,
    VOID,
    ArrayType,
    IntType,
    RealType,
    StringType,
    Type,
    is_assignable,
)
from ..runtime.values import TetraArray, deep_copy
from .registry import polymorphic


def _numeric_array_rule(name: str):
    def rule(arg_types: tuple[Type, ...]) -> Type:
        if (len(arg_types) != 1 or not isinstance(arg_types[0], ArrayType)
                or not arg_types[0].element.is_numeric):
            raise TetraTypeError(f"{name}() takes one array of numbers")
        return arg_types[0].element

    return rule


@polymorphic("sum", _numeric_array_rule("sum"),
             doc="sum(arr) — total of a numeric array (0 for empty [int])",
             category="array")
def _sum(args, io, span):
    arr = args[0]
    if isinstance(arr.element_type, RealType):
        return float(sum(arr.items))
    return sum(arr.items)


def _ordered_array_rule(name: str, result: str):
    def rule(arg_types: tuple[Type, ...]) -> Type:
        if (len(arg_types) != 1 or not isinstance(arg_types[0], ArrayType)
                or not isinstance(arg_types[0].element,
                                  (IntType, RealType, StringType))):
            raise TetraTypeError(
                f"{name}() takes one array of ints, reals, or strings"
            )
        if result == "element":
            return arg_types[0].element
        return arg_types[0]

    return rule


@polymorphic("smallest", _ordered_array_rule("smallest", "element"),
             doc="smallest(arr) — minimum element of a non-empty array",
             category="array")
def _smallest(args, io, span):
    arr = args[0]
    if not len(arr):
        raise TetraRuntimeError("smallest() of an empty array", span)
    return min(arr.items)


@polymorphic("largest", _ordered_array_rule("largest", "element"),
             doc="largest(arr) — maximum element of a non-empty array",
             category="array")
def _largest(args, io, span):
    arr = args[0]
    if not len(arr):
        raise TetraRuntimeError("largest() of an empty array", span)
    return max(arr.items)


@polymorphic("sort", _ordered_array_rule("sort", "array"),
             doc="sort(arr) — a new array with the elements in ascending order",
             category="array")
def _sort(args, io, span):
    arr = args[0]
    return TetraArray(sorted(arr.items), arr.element_type)


def _any_array_rule(name: str, result: str):
    def rule(arg_types: tuple[Type, ...]) -> Type:
        if len(arg_types) != 1 or not isinstance(arg_types[0], ArrayType):
            raise TetraTypeError(f"{name}() takes one array")
        return arg_types[0] if result == "array" else arg_types[0].element

    return rule


@polymorphic("reversed", _any_array_rule("reversed", "array"),
             doc="reversed(arr) — a new array with the elements backwards",
             category="array")
def _reversed(args, io, span):
    arr = args[0]
    return TetraArray(list(reversed(arr.items)), arr.element_type)


def _fill_rule(arg_types: tuple[Type, ...]) -> Type:
    if (len(arg_types) != 2 or not isinstance(arg_types[0], ArrayType)
            or not is_assignable(arg_types[0].element, arg_types[1])):
        raise TetraTypeError(
            "fill() takes an array and a value of its element type"
        )
    return VOID


@polymorphic("fill", _fill_rule,
             doc="fill(arr, value) — set every element to value (in place)",
             category="array")
def _fill(args, io, span):
    arr, value = args
    widen = isinstance(arr.element_type, RealType) and isinstance(value, int)
    fill_value = float(value) if widen else value
    for i in range(len(arr.items)):
        arr.items[i] = deep_copy(fill_value)
    return None


def _index_of_rule(arg_types: tuple[Type, ...]) -> Type:
    if (len(arg_types) != 2 or not isinstance(arg_types[0], ArrayType)
            or not is_assignable(arg_types[0].element, arg_types[1])):
        raise TetraTypeError(
            "index_of() takes an array and a value of its element type"
        )
    return INT


@polymorphic("index_of", _index_of_rule,
             doc="index_of(arr, value) — index of the first match, or -1",
             category="array")
def _index_of(args, io, span):
    arr, value = args
    for i, item in enumerate(arr.items):
        if item == value:
            return i
    return -1


def _concat_rule(arg_types: tuple[Type, ...]) -> Type:
    if (len(arg_types) != 2
            or not isinstance(arg_types[0], ArrayType)
            or arg_types[0] != arg_types[1]):
        raise TetraTypeError("concat() takes two arrays of the same type")
    return arg_types[0]


@polymorphic("concat", _concat_rule,
             doc="concat(a, b) — a new array holding a's elements then b's",
             category="array")
def _concat(args, io, span):
    a, b = args
    return TetraArray(a.items + b.items, a.element_type)
