"""Monotonic time source, isolated so tests can patch one symbol."""

from __future__ import annotations

import time


def monotonic_clock() -> float:
    """Seconds from an arbitrary origin; only differences are meaningful."""
    return time.perf_counter()
