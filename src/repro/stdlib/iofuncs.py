"""I/O builtins — the part of the standard library the paper ships.

``print`` is variadic over any types and appends a newline; ``read_int`` /
``read_real`` / ``read_string`` / ``read_bool`` consume one line of input
each (Figure I: ``n = read_int()``).
"""

from __future__ import annotations

from ..errors import TetraIOError, TetraTypeError
from ..types.types import BOOL, INT, REAL, STRING, VOID, Type
from ..runtime.values import display
from .registry import polymorphic


def _any_args(name: str):
    def rule(arg_types: tuple[Type, ...]) -> Type:
        return VOID

    return rule


def _no_args(name: str, ret: Type):
    def rule(arg_types: tuple[Type, ...]) -> Type:
        if arg_types:
            raise TetraTypeError(f"{name}() takes no arguments")
        return ret

    return rule


@polymorphic("print", _any_args("print"),
             doc="print(values...) — write values followed by a newline",
             category="io")
def _print(args, io, span):
    io.write("".join(display(a) for a in args) + "\n")
    return None


@polymorphic("read_int", _no_args("read_int", INT),
             doc="read_int() — read one line as an int", category="io")
def _read_int(args, io, span):
    line = io.read_line(span).strip()
    try:
        return int(line, 10)
    except ValueError:
        raise TetraIOError(f"expected an int but got {line!r}", span) from None


@polymorphic("read_real", _no_args("read_real", REAL),
             doc="read_real() — read one line as a real", category="io")
def _read_real(args, io, span):
    line = io.read_line(span).strip()
    try:
        return float(line)
    except ValueError:
        raise TetraIOError(f"expected a real but got {line!r}", span) from None


@polymorphic("read_string", _no_args("read_string", STRING),
             doc="read_string() — read one line as a string", category="io")
def _read_string(args, io, span):
    return io.read_line(span)


@polymorphic("read_bool", _no_args("read_bool", BOOL),
             doc="read_bool() — read one line as true/false", category="io")
def _read_bool(args, io, span):
    line = io.read_line(span).strip().lower()
    if line == "true":
        return True
    if line == "false":
        return False
    raise TetraIOError(f"expected true or false but got {line!r}", span)
