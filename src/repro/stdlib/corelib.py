"""Core builtins: lengths, conversions, construction, assertions, time.

``len`` is the paper's own (strings and arrays); the rest are the small,
unavoidable core any static language needs once conversions are explicit
(``int()`` / ``real()`` / ``str()``), plus ``array`` / ``copy`` for building
arrays whose size is not a literal, ``assert`` for teaching, and ``clock`` /
``sleep`` so Tetra programs can time themselves and stage concurrency demos.
"""

from __future__ import annotations

import time

from ..errors import (
    TetraAssertionError,
    TetraRuntimeError,
    TetraTypeError,
    TetraUserError,
)
from ..types.types import (
    BOOL,
    INT,
    REAL,
    STRING,
    VOID,
    ArrayType,
    BoolType,
    IntType,
    RealType,
    StringType,
    Type,
)
from ..runtime.values import TetraArray, deep_copy, display, make_array
from .builtin_time import monotonic_clock
from .registry import builtin, polymorphic


# ----------------------------------------------------------------------
# len / str / conversions
# ----------------------------------------------------------------------
def _len_rule(arg_types: tuple[Type, ...]) -> Type:
    from ..types.types import DictType

    if len(arg_types) != 1 or not isinstance(
        arg_types[0], (ArrayType, StringType, DictType)
    ):
        raise TetraTypeError("len() takes one array, string, or dict")
    return INT


@polymorphic("len", _len_rule,
             doc="len(x) — elements in an array or dict, characters in a string")
def _len(args, io, span):
    return len(args[0])


def _str_rule(arg_types: tuple[Type, ...]) -> Type:
    if len(arg_types) != 1:
        raise TetraTypeError("str() takes exactly one argument")
    return STRING


@polymorphic("str", _str_rule, doc="str(x) — the printed form of any value")
def _str(args, io, span):
    return display(args[0])


@polymorphic("string", _str_rule,
             doc="string(x) — same as str(x); the type name as a conversion")
def _string(args, io, span):
    return display(args[0])


def _int_rule(arg_types: tuple[Type, ...]) -> Type:
    if len(arg_types) != 1 or not isinstance(
        arg_types[0], (IntType, RealType, StringType, BoolType)
    ):
        raise TetraTypeError("int() takes one int, real, string, or bool")
    return INT


@polymorphic("int", _int_rule,
             doc="int(x) — convert to int (reals truncate toward zero)")
def _int(args, io, span):
    value = args[0]
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, float):
        return int(value)  # Python truncates toward zero, matching int_div
    if isinstance(value, str):
        try:
            return int(value.strip(), 10)
        except ValueError:
            raise TetraRuntimeError(
                f"int() cannot parse {value!r}", span
            ) from None
    return value


def _real_rule(arg_types: tuple[Type, ...]) -> Type:
    if len(arg_types) != 1 or not isinstance(
        arg_types[0], (IntType, RealType, StringType)
    ):
        raise TetraTypeError("real() takes one int, real, or string")
    return REAL


@polymorphic("real", _real_rule, doc="real(x) — convert to real")
def _real(args, io, span):
    value = args[0]
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            raise TetraRuntimeError(
                f"real() cannot parse {value!r}", span
            ) from None
    return float(value)


# ----------------------------------------------------------------------
# Array construction
# ----------------------------------------------------------------------
def _array_rule(arg_types: tuple[Type, ...]) -> Type:
    if len(arg_types) != 2 or not isinstance(arg_types[0], IntType):
        raise TetraTypeError(
            "array() takes (length int, initial_value) and returns an array "
            "of that value's type"
        )
    return ArrayType(arg_types[1])


@polymorphic("array", _array_rule,
             doc="array(n, value) — a new array of n copies of value")
def _array(args, io, span):
    n, value = args
    if n < 0:
        raise TetraRuntimeError(f"array() length must be >= 0, not {n}", span)
    from ..runtime.values import type_of_value

    return TetraArray([deep_copy(value) for _ in range(n)], type_of_value(value))


def _copy_rule(arg_types: tuple[Type, ...]) -> Type:
    from ..types.types import ClassType, DictType

    if len(arg_types) != 1 or not isinstance(
        arg_types[0], (ArrayType, DictType, ClassType)
    ):
        raise TetraTypeError("copy() takes one array, dict, or class instance")
    return arg_types[0]


@polymorphic("copy", _copy_rule,
             doc="copy(x) — a deep copy of an array, dict, or object")
def _copy(args, io, span):
    return deep_copy(args[0])


# ----------------------------------------------------------------------
# Assertions and timing
# ----------------------------------------------------------------------
def _assert_rule(arg_types: tuple[Type, ...]) -> Type:
    ok = (
        len(arg_types) in (1, 2)
        and isinstance(arg_types[0], BoolType)
        and (len(arg_types) == 1 or isinstance(arg_types[1], StringType))
    )
    if not ok:
        raise TetraTypeError("assert() takes a bool and an optional message string")
    return VOID


@polymorphic("assert", _assert_rule,
             doc="assert(cond, message?) — stop the program if cond is false")
def _assert(args, io, span):
    if not args[0]:
        message = args[1] if len(args) > 1 else "assertion failed"
        raise TetraAssertionError(message, span)
    return None


@builtin("error", [STRING], VOID,
         doc="error(message) — raise an error the program can catch with try")
def _error(args, io, span):
    raise TetraUserError(args[0], span)


@builtin("clock", [], REAL,
         doc="clock() — this backend's clock: monotonic seconds on the "
             "thread backend, virtual time on sim/coop (for timing programs)")
def _clock(args, io, span):
    # Both interpreters special-case clock() to ``backend.now()`` — the
    # registry cannot see the backend, so this body only runs for direct
    # ``Builtin.invoke`` callers (which get the host clock).
    return monotonic_clock()


@builtin("sleep", [REAL], VOID,
         doc="sleep(seconds) — pause this thread (for concurrency demos)")
def _sleep(args, io, span):
    seconds = args[0]
    if seconds < 0:
        raise TetraRuntimeError("sleep() needs a non-negative duration", span)
    time.sleep(min(seconds, 10.0))  # cap: educational demos, not servers
    return None
