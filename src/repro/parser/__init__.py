"""Parsing for Tetra (recursive descent; see DESIGN.md §4)."""

from .parser import Parser, parse_expression, parse_source

__all__ = ["Parser", "parse_expression", "parse_source"]
