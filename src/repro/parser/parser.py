"""Recursive-descent parser for Tetra.

The original system used a Bison-generated LALR parser; this reproduction
uses recursive descent over the scanner's token stream (see DESIGN.md §4 for
why the substitution is behaviour-preserving).  The grammar is exactly the
language of the paper: function definitions, Python-style suites, the four
parallel constructs, and a conventional expression grammar.

Every parse error carries the offending span and a message phrased for a
beginner — Tetra is an educational language, and its original motivation
includes friendlier tooling than C/C++.
"""

from __future__ import annotations

from ..errors import TetraSyntaxError
from ..lexer import Scanner, Token, TokenType
from ..source import SourceFile, Span
from ..tetra_ast import (
    ArrayLiteral,
    ArrayTypeExpr,
    Attribute,
    Assign,
    AugAssign,
    BackgroundBlock,
    BinaryOp,
    BinOp,
    Block,
    BoolLiteral,
    Break,
    Call,
    ClassDef,
    ClassTypeExpr,
    Continue,
    Declare,
    DictLiteral,
    DictTypeExpr,
    ElifClause,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    If,
    Index,
    FieldDecl,
    IntLiteral,
    LockStmt,
    MethodCall,
    Name,
    ParallelBlock,
    ParallelFor,
    Param,
    Pass,
    PrimitiveTypeExpr,
    Program,
    RangeLiteral,
    RealLiteral,
    Return,
    Stmt,
    StringLiteral,
    TryStmt,
    TupleLiteral,
    TupleTypeExpr,
    TypeExpr,
    Unary,
    UnaryOp,
    Unpack,
    While,
)

_TT = TokenType

_AUG_OPS: dict[TokenType, BinaryOp] = {
    _TT.PLUS_ASSIGN: BinaryOp.ADD,
    _TT.MINUS_ASSIGN: BinaryOp.SUB,
    _TT.STAR_ASSIGN: BinaryOp.MUL,
    _TT.SLASH_ASSIGN: BinaryOp.DIV,
    _TT.PERCENT_ASSIGN: BinaryOp.MOD,
}

_COMPARISON_OPS: dict[TokenType, BinaryOp] = {
    _TT.EQ: BinaryOp.EQ,
    _TT.NE: BinaryOp.NE,
    _TT.LT: BinaryOp.LT,
    _TT.LE: BinaryOp.LE,
    _TT.GT: BinaryOp.GT,
    _TT.GE: BinaryOp.GE,
}

_ADDITIVE_OPS: dict[TokenType, BinaryOp] = {
    _TT.PLUS: BinaryOp.ADD,
    _TT.MINUS: BinaryOp.SUB,
}

_MULTIPLICATIVE_OPS: dict[TokenType, BinaryOp] = {
    _TT.STAR: BinaryOp.MUL,
    _TT.SLASH: BinaryOp.DIV,
    _TT.PERCENT: BinaryOp.MOD,
}

_TYPE_KEYWORD_NAMES = {
    _TT.KW_INT: "int",
    _TT.KW_REAL: "real",
    _TT.KW_STRING: "string",
    _TT.KW_BOOL: "bool",
}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.tokens = Scanner(source).scan()
        self.pos = 0

    # ------------------------------------------------------------------
    # Token stream helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def at(self, *types: TokenType) -> bool:
        return self.current.type in types

    def advance(self) -> Token:
        tok = self.current
        if tok.type is not _TT.EOF:
            self.pos += 1
        return tok

    def accept(self, type_: TokenType) -> Token | None:
        if self.current.type is type_:
            return self.advance()
        return None

    def expect(self, type_: TokenType, what: str | None = None) -> Token:
        if self.current.type is type_:
            return self.advance()
        raise self.error(what or f"expected {type_.value!r}")

    def error(self, message: str, span: Span | None = None) -> TetraSyntaxError:
        tok = self.current
        got = {
            _TT.NEWLINE: "end of line",
            _TT.INDENT: "indent",
            _TT.DEDENT: "end of block",
            _TT.EOF: "end of file",
        }.get(tok.type, f"{tok.text!r}")
        return TetraSyntaxError(
            f"{message}, but found {got}", span or tok.span
        ).attach_source(self.source)

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        functions: list[FunctionDef] = []
        classes: list[ClassDef] = []
        while not self.at(_TT.EOF):
            if self.accept(_TT.NEWLINE):
                continue
            if self.at(_TT.KW_DEF):
                functions.append(self.parse_function())
            elif self.at(_TT.KW_CLASS):
                classes.append(self.parse_class())
            else:
                raise self.error(
                    "expected a function or class definition at the top "
                    "level (Tetra programs are lists of 'def' and 'class' "
                    "blocks)"
                )
        first = functions[0].span if functions else self.current.span
        if classes and (not functions or classes[0].span.start < first.start):
            first = classes[0].span
        return Program(functions=functions, classes=classes, span=first)

    def parse_class(self) -> ClassDef:
        start = self.expect(_TT.KW_CLASS)
        name_tok = self.expect(_TT.IDENT, "expected a class name after 'class'")
        self.expect(_TT.COLON, "expected ':' after the class name")
        self.expect(_TT.NEWLINE, "expected a new line after ':'")
        self.expect(_TT.INDENT, "expected an indented class body")
        fields: list[FieldDecl] = []
        methods: list[FunctionDef] = []
        while not self.at(_TT.DEDENT, _TT.EOF):
            if self.accept(_TT.NEWLINE):
                continue
            if self.at(_TT.KW_PASS):
                self.advance()
                self.expect(_TT.NEWLINE, "expected end of line after 'pass'")
                continue
            if self.at(_TT.KW_DEF):
                methods.append(self.parse_function())
                continue
            field_name = self.expect(
                _TT.IDENT,
                "expected a field declaration (name type) or a method "
                "(def ...) in the class body",
            )
            field_type = self.parse_type()
            self.expect(_TT.NEWLINE, "expected end of line after the field")
            fields.append(FieldDecl(
                name=str(field_name.value), type=field_type,
                span=field_name.span,
            ))
        self.expect(_TT.DEDENT)
        return ClassDef(
            name=str(name_tok.value), fields=fields, methods=methods,
            span=start.span.merge(name_tok.span),
        )

    def parse_function(self) -> FunctionDef:
        start = self.expect(_TT.KW_DEF)
        name_tok = self.expect(_TT.IDENT, "expected a function name after 'def'")
        self.expect(_TT.LPAREN, "expected '(' after the function name")
        params: list[Param] = []
        if not self.at(_TT.RPAREN):
            params.append(self.parse_param())
            while self.accept(_TT.COMMA):
                params.append(self.parse_param())
        self.expect(_TT.RPAREN, "expected ')' to close the parameter list")
        return_type: TypeExpr | None = None
        if not self.at(_TT.COLON):
            starts_type = (self.current.type in _TYPE_KEYWORD_NAMES
                           or self.at(_TT.LBRACKET, _TT.LBRACE, _TT.LPAREN,
                                      _TT.IDENT))
            if not starts_type:
                raise self.error(
                    "expected ':' or a return type after the parameter list"
                )
            return_type = self.parse_type()
        body = self.parse_suite("function body")
        return FunctionDef(
            name=str(name_tok.value),
            params=params,
            return_type=return_type,
            body=body,
            span=start.span.merge(name_tok.span),
        )

    def parse_param(self) -> Param:
        name_tok = self.expect(_TT.IDENT, "expected a parameter name")
        ty = self.parse_type()
        return Param(name=str(name_tok.value), type=ty, span=name_tok.span.merge(ty.span))

    def parse_type(self) -> TypeExpr:
        tok = self.current
        if tok.type in _TYPE_KEYWORD_NAMES:
            self.advance()
            return PrimitiveTypeExpr(name=_TYPE_KEYWORD_NAMES[tok.type], span=tok.span)
        if tok.type is _TT.LBRACKET:
            self.advance()
            element = self.parse_type()
            close = self.expect(_TT.RBRACKET, "expected ']' to close the array type")
            return ArrayTypeExpr(element=element, span=tok.span.merge(close.span))
        if tok.type is _TT.LBRACE:
            self.advance()
            key = self.parse_type()
            self.expect(_TT.COLON, "expected ':' between the key and value types")
            value = self.parse_type()
            close = self.expect(_TT.RBRACE, "expected '}' to close the dict type")
            return DictTypeExpr(key=key, value=value,
                                span=tok.span.merge(close.span))
        if tok.type is _TT.IDENT:
            self.advance()
            return ClassTypeExpr(name=str(tok.value), span=tok.span)
        if tok.type is _TT.LPAREN:
            self.advance()
            elements = [self.parse_type()]
            while self.accept(_TT.COMMA):
                elements.append(self.parse_type())
            close = self.expect(_TT.RPAREN, "expected ')' to close the tuple type")
            if len(elements) < 2:
                raise self.error(
                    "a tuple type needs at least two element types", tok.span
                )
            return TupleTypeExpr(elements=elements,
                                 span=tok.span.merge(close.span))
        raise self.error(
            "expected a type (one of: int, real, string, bool, [T] for "
            "arrays, {K: V} for dicts, or (T1, T2) for tuples)"
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_suite(self, what: str) -> Block:
        """``: NEWLINE INDENT stmt+ DEDENT``"""
        colon = self.expect(_TT.COLON, f"expected ':' to begin the {what}")
        self.expect(_TT.NEWLINE, "expected a new line after ':'")
        self.expect(
            _TT.INDENT,
            f"expected an indented block for the {what} "
            "(indent the lines under the ':')",
        )
        statements: list[Stmt] = []
        while not self.at(_TT.DEDENT, _TT.EOF):
            statements.append(self.parse_statement())
        self.expect(_TT.DEDENT)
        return Block(statements=statements, span=colon.span)

    def parse_statement(self) -> Stmt:
        t = self.current.type
        if t is _TT.KW_IF:
            return self.parse_if()
        if t is _TT.KW_WHILE:
            return self.parse_while()
        if t is _TT.KW_FOR:
            return self.parse_for()
        if t is _TT.KW_PARALLEL:
            return self.parse_parallel()
        if t is _TT.KW_BACKGROUND:
            return self.parse_background()
        if t is _TT.KW_LOCK:
            return self.parse_lock()
        if t is _TT.KW_TRY:
            return self.parse_try()
        return self.parse_simple_statement()

    def parse_try(self) -> TryStmt:
        start = self.expect(_TT.KW_TRY)
        body = self.parse_suite("'try' body")
        self.expect(
            _TT.KW_CATCH,
            "expected 'catch' after the 'try' block (every try needs a "
            "handler)",
        )
        name_tok = self.expect(
            _TT.IDENT,
            "expected a name after 'catch' to hold the error message",
        )
        handler = self.parse_suite("'catch' body")
        return TryStmt(body=body, error_name=str(name_tok.value),
                       handler=handler, span=start.span)

    def parse_if(self) -> If:
        start = self.expect(_TT.KW_IF)
        cond = self.parse_expression()
        then = self.parse_suite("'if' body")
        elifs: list[ElifClause] = []
        while self.at(_TT.KW_ELIF):
            elif_tok = self.advance()
            elif_cond = self.parse_expression()
            elif_body = self.parse_suite("'elif' body")
            elifs.append(ElifClause(cond=elif_cond, body=elif_body, span=elif_tok.span))
        orelse: Block | None = None
        if self.accept(_TT.KW_ELSE):
            orelse = self.parse_suite("'else' body")
        return If(cond=cond, then=then, elifs=elifs, orelse=orelse, span=start.span)

    def parse_while(self) -> While:
        start = self.expect(_TT.KW_WHILE)
        cond = self.parse_expression()
        body = self.parse_suite("'while' body")
        return While(cond=cond, body=body, span=start.span)

    def parse_for(self) -> For:
        start = self.expect(_TT.KW_FOR)
        var_tok = self.expect(_TT.IDENT, "expected a loop variable after 'for'")
        self.expect(_TT.KW_IN, "expected 'in' after the loop variable")
        iterable = self.parse_expression()
        body = self.parse_suite("'for' body")
        return For(var=str(var_tok.value), iterable=iterable, body=body, span=start.span)

    def parse_parallel(self) -> Stmt:
        start = self.expect(_TT.KW_PARALLEL)
        if self.at(_TT.KW_FOR):
            self.advance()
            var_tok = self.expect(_TT.IDENT, "expected a loop variable after 'parallel for'")
            self.expect(_TT.KW_IN, "expected 'in' after the loop variable")
            iterable = self.parse_expression()
            body = self.parse_suite("'parallel for' body")
            return ParallelFor(
                var=str(var_tok.value), iterable=iterable, body=body, span=start.span
            )
        body = self.parse_suite("'parallel' block")
        return ParallelBlock(body=body, span=start.span)

    def parse_background(self) -> BackgroundBlock:
        start = self.expect(_TT.KW_BACKGROUND)
        body = self.parse_suite("'background' block")
        return BackgroundBlock(body=body, span=start.span)

    def parse_lock(self) -> LockStmt:
        start = self.expect(_TT.KW_LOCK)
        name_tok = self.expect(
            _TT.IDENT,
            "expected a lock name after 'lock' (lock names live in their own "
            "namespace; any identifier works)",
        )
        body = self.parse_suite("'lock' block")
        return LockStmt(name=str(name_tok.value), body=body, span=start.span)

    def parse_simple_statement(self) -> Stmt:
        t = self.current.type
        if t is _TT.KW_RETURN:
            start = self.advance()
            value: Expr | None = None
            if not self.at(_TT.NEWLINE):
                value = self.parse_expression()
            self.expect(_TT.NEWLINE, "expected end of line after 'return'")
            return Return(value=value, span=start.span)
        if t is _TT.KW_BREAK:
            start = self.advance()
            self.expect(_TT.NEWLINE, "expected end of line after 'break'")
            return Break(span=start.span)
        if t is _TT.KW_CONTINUE:
            start = self.advance()
            self.expect(_TT.NEWLINE, "expected end of line after 'continue'")
            return Continue(span=start.span)
        if t is _TT.KW_PASS:
            start = self.advance()
            self.expect(_TT.NEWLINE, "expected end of line after 'pass'")
            return Pass(span=start.span)

        declaration = self._try_parse_declaration()
        if declaration is not None:
            return declaration

        expr = self.parse_expression()
        if self.at(_TT.COMMA):
            # ``a, b = expr`` — tuple destructuring.
            targets = [expr]
            while self.accept(_TT.COMMA):
                targets.append(self.parse_expression())
            self.expect(
                _TT.ASSIGN,
                "expected '=' after the unpacking targets",
            )
            for target in targets:
                self._check_assign_target(target)
            value = self.parse_expression()
            self.expect(_TT.NEWLINE, "expected end of line after the assignment")
            return Unpack(targets=targets, value=value, span=expr.span)
        if self.at(_TT.ASSIGN):
            self.advance()
            self._check_assign_target(expr)
            value = self.parse_expression()
            self.expect(_TT.NEWLINE, "expected end of line after the assignment")
            return Assign(target=expr, value=value, span=expr.span)
        if self.current.type in _AUG_OPS:
            op_tok = self.advance()
            self._check_assign_target(expr)
            value = self.parse_expression()
            self.expect(_TT.NEWLINE, "expected end of line after the assignment")
            return AugAssign(
                target=expr, op=_AUG_OPS[op_tok.type], value=value, span=expr.span
            )
        self.expect(_TT.NEWLINE, "expected end of line after the expression")
        return ExprStmt(expr=expr, span=expr.span)

    #: Tokens that can open a type annotation.
    _TYPE_START = frozenset({
        _TT.KW_INT, _TT.KW_REAL, _TT.KW_STRING, _TT.KW_BOOL,
        _TT.LBRACKET, _TT.LBRACE, _TT.LPAREN, _TT.IDENT,
    })

    def _try_parse_declaration(self) -> Declare | None:
        """``name type = value`` — attempted with backtracking.

        The lookahead ``IDENT <type-start>`` is almost unambiguous; the one
        collision (``x[[1, 2][0]] = ...``) fails the type parse and falls
        back to the expression route.
        """
        if self.current.type is not _TT.IDENT:
            return None
        nxt = self.peek()
        if nxt.type not in self._TYPE_START:
            return None
        # ``xs[i] = v`` (indexing) vs ``xs [int] = []`` (declaration) and
        # ``f(x)`` (call) vs ``p (int, int) = ...`` (declaration): a bracket
        # or paren glued directly to the name is always indexing/calling.
        if (nxt.type in (_TT.LBRACKET, _TT.LPAREN)
                and nxt.span.start == self.current.span.end):
            return None
        saved = self.pos
        name_tok = self.advance()
        try:
            declared = self.parse_type()
            self.expect(_TT.ASSIGN,
                        "expected '=' after the declared type")
        except TetraSyntaxError:
            self.pos = saved
            return None
        value = self.parse_expression()
        self.expect(_TT.NEWLINE, "expected end of line after the declaration")
        return Declare(name=str(name_tok.value), declared_type=declared,
                       value=value, span=name_tok.span)

    def _check_assign_target(self, target: Expr) -> None:
        if isinstance(target, Name):
            return
        if isinstance(target, Index):
            self._check_assign_target(target.base)
            return
        if isinstance(target, Attribute):
            self._check_assign_target(target.base)
            return
        raise self.error(
            "this is not something that can be assigned to "
            "(assign to a variable, element, or field)",
            target.span,
        )

    # ------------------------------------------------------------------
    # Expressions (precedence climbing, one level per method)
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at(_TT.KW_OR):
            self.advance()
            right = self.parse_and()
            left = BinOp(op=BinaryOp.OR, left=left, right=right,
                         span=left.span.merge(right.span))
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.at(_TT.KW_AND):
            self.advance()
            right = self.parse_not()
            left = BinOp(op=BinaryOp.AND, left=left, right=right,
                         span=left.span.merge(right.span))
        return left

    def parse_not(self) -> Expr:
        if self.at(_TT.KW_NOT):
            tok = self.advance()
            operand = self.parse_not()
            return Unary(op=UnaryOp.NOT, operand=operand,
                         span=tok.span.merge(operand.span))
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        while self.current.type in _COMPARISON_OPS:
            op = _COMPARISON_OPS[self.advance().type]
            right = self.parse_additive()
            left = BinOp(op=op, left=left, right=right,
                         span=left.span.merge(right.span))
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.current.type in _ADDITIVE_OPS:
            op = _ADDITIVE_OPS[self.advance().type]
            right = self.parse_multiplicative()
            left = BinOp(op=op, left=left, right=right,
                         span=left.span.merge(right.span))
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.current.type in _MULTIPLICATIVE_OPS:
            op = _MULTIPLICATIVE_OPS[self.advance().type]
            right = self.parse_unary()
            left = BinOp(op=op, left=left, right=right,
                         span=left.span.merge(right.span))
        return left

    def parse_unary(self) -> Expr:
        if self.at(_TT.MINUS):
            tok = self.advance()
            operand = self.parse_unary()
            return Unary(op=UnaryOp.NEG, operand=operand,
                         span=tok.span.merge(operand.span))
        if self.at(_TT.PLUS):
            tok = self.advance()
            operand = self.parse_unary()
            return Unary(op=UnaryOp.POS, operand=operand,
                         span=tok.span.merge(operand.span))
        return self.parse_power()

    def parse_power(self) -> Expr:
        base = self.parse_postfix()
        if self.at(_TT.STARSTAR):
            self.advance()
            # Right-associative: the exponent re-enters at unary level so
            # ``2 ** -3`` and ``2 ** 3 ** 2`` parse the way Python users expect.
            exponent = self.parse_unary()
            return BinOp(op=BinaryOp.POW, left=base, right=exponent,
                         span=base.span.merge(exponent.span))
        return base

    def parse_postfix(self) -> Expr:
        expr = self.parse_atom()
        while True:
            if self.at(_TT.LBRACKET):
                self.advance()
                index = self.parse_expression()
                close = self.expect(_TT.RBRACKET, "expected ']' to close the index")
                expr = Index(base=expr, index=index,
                             span=expr.span.merge(close.span))
                continue
            if self.at(_TT.DOT):
                self.advance()
                attr_tok = self.expect(
                    _TT.IDENT, "expected a field or method name after '.'"
                )
                if self.at(_TT.LPAREN):
                    self.advance()
                    args: list[Expr] = []
                    if not self.at(_TT.RPAREN):
                        args.append(self.parse_expression())
                        while self.accept(_TT.COMMA):
                            args.append(self.parse_expression())
                    close = self.expect(
                        _TT.RPAREN, "expected ')' to close the call"
                    )
                    expr = MethodCall(
                        base=expr, method=str(attr_tok.value), args=args,
                        span=expr.span.merge(close.span),
                    )
                else:
                    expr = Attribute(
                        base=expr, attr=str(attr_tok.value),
                        span=expr.span.merge(attr_tok.span),
                    )
                continue
            return expr

    def parse_atom(self) -> Expr:
        tok = self.current
        if tok.type is _TT.INT:
            self.advance()
            return IntLiteral(value=int(tok.value), span=tok.span)  # type: ignore[arg-type]
        if tok.type is _TT.REAL:
            self.advance()
            return RealLiteral(value=float(tok.value), span=tok.span)  # type: ignore[arg-type]
        if tok.type is _TT.STRING:
            self.advance()
            return StringLiteral(value=str(tok.value), span=tok.span)
        if tok.type is _TT.KW_TRUE:
            self.advance()
            return BoolLiteral(value=True, span=tok.span)
        if tok.type is _TT.KW_FALSE:
            self.advance()
            return BoolLiteral(value=False, span=tok.span)
        if tok.type is _TT.IDENT:
            self.advance()
            if self.at(_TT.LPAREN):
                self.advance()
                args: list[Expr] = []
                if not self.at(_TT.RPAREN):
                    args.append(self.parse_expression())
                    while self.accept(_TT.COMMA):
                        args.append(self.parse_expression())
                close = self.expect(_TT.RPAREN, "expected ')' to close the call")
                return Call(func=str(tok.value), args=args, span=tok.span.merge(close.span))
            return Name(id=str(tok.value), span=tok.span)
        if tok.type in _TYPE_KEYWORD_NAMES:
            # Conversion calls: the type names double as functions
            # (``int("42")``, ``real(n)``), mirroring Python.
            self.advance()
            self.expect(
                _TT.LPAREN,
                f"'{tok.text}' is a type name; to convert a value call it "
                f"like a function: {tok.text}(value)",
            )
            args: list[Expr] = []
            if not self.at(_TT.RPAREN):
                args.append(self.parse_expression())
                while self.accept(_TT.COMMA):
                    args.append(self.parse_expression())
            close = self.expect(_TT.RPAREN, "expected ')' to close the call")
            return Call(func=_TYPE_KEYWORD_NAMES[tok.type], args=args,
                        span=tok.span.merge(close.span))
        if tok.type is _TT.LPAREN:
            self.advance()
            inner = self.parse_expression()
            if self.at(_TT.COMMA):
                elements = [inner]
                while self.accept(_TT.COMMA):
                    if self.at(_TT.RPAREN):
                        break  # tolerate a trailing comma
                    elements.append(self.parse_expression())
                close = self.expect(
                    _TT.RPAREN, "expected ')' to close the tuple"
                )
                if len(elements) < 2:
                    raise self.error(
                        "a tuple needs at least two elements "
                        "(parentheses alone just group)",
                        tok.span,
                    )
                return TupleLiteral(elements=elements,
                                    span=tok.span.merge(close.span))
            self.expect(_TT.RPAREN, "expected ')' to close the parenthesis")
            return inner
        if tok.type is _TT.LBRACKET:
            return self.parse_bracketed()
        if tok.type is _TT.LBRACE:
            return self.parse_dict_literal()
        raise self.error("expected an expression")

    def parse_dict_literal(self) -> DictLiteral:
        """``{k: v, ...}`` — possibly empty (requires a typed declaration)."""
        open_tok = self.expect(_TT.LBRACE)
        entries: list[tuple[Expr, Expr]] = []
        if not self.at(_TT.RBRACE):
            while True:
                key = self.parse_expression()
                self.expect(_TT.COLON, "expected ':' between a dict key and value")
                value = self.parse_expression()
                entries.append((key, value))
                if not self.accept(_TT.COMMA):
                    break
                if self.at(_TT.RBRACE):
                    break  # tolerate a trailing comma
        close = self.expect(_TT.RBRACE, "expected '}' to close the dict literal")
        return DictLiteral(entries=entries, span=open_tok.span.merge(close.span))

    def parse_bracketed(self) -> Expr:
        """Array literal ``[a, b, c]`` or range literal ``[a ... b]``."""
        open_tok = self.expect(_TT.LBRACKET)
        if self.at(_TT.RBRACKET):
            close = self.advance()
            return ArrayLiteral(elements=[], span=open_tok.span.merge(close.span))
        first = self.parse_expression()
        if self.at(_TT.ELLIPSIS):
            self.advance()
            stop = self.parse_expression()
            close = self.expect(_TT.RBRACKET, "expected ']' to close the range")
            return RangeLiteral(start=first, stop=stop,
                                span=open_tok.span.merge(close.span))
        elements = [first]
        while self.accept(_TT.COMMA):
            if self.at(_TT.RBRACKET):
                break  # tolerate a trailing comma
            elements.append(self.parse_expression())
        close = self.expect(_TT.RBRACKET, "expected ']' to close the array literal")
        return ArrayLiteral(elements=elements, span=open_tok.span.merge(close.span))


def parse_source(source: SourceFile | str, name: str = "<string>") -> Program:
    """Parse Tetra source text into a :class:`Program`."""
    if isinstance(source, str):
        source = SourceFile.from_string(source, name)
    return Parser(source).parse_program()


def parse_expression(text: str) -> Expr:
    """Parse a single expression (used by the debugger's ``print`` command)."""
    source = SourceFile.from_string(text, "<expr>")
    parser = Parser(source)
    expr = parser.parse_expression()
    parser.accept(_TT.NEWLINE)
    if not parser.at(_TT.EOF):
        raise parser.error("unexpected trailing input after the expression")
    return expr
