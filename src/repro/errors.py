"""Diagnostics for every phase of the Tetra system.

All user-facing failures derive from :class:`TetraError` and know how to
render themselves with the source line and a caret.  The hierarchy mirrors
the pipeline: lex → parse → typecheck → run, plus the runtime conditions an
educational parallel language must explain well (deadlock in particular).
"""

from __future__ import annotations

from .source import NO_SPAN, SourceFile, Span


class TetraError(Exception):
    """Base class for all diagnostics raised by the Tetra system."""

    #: Human-readable phase name used in rendered messages.
    phase = "error"

    def __init__(self, message: str, span: Span = NO_SPAN, source: SourceFile | None = None):
        super().__init__(message)
        self.message = message
        self.span = span
        self.source = source

    def attach_source(self, source: SourceFile) -> "TetraError":
        """Late-bind the source file (phases that only see spans use this)."""
        if self.source is None:
            self.source = source
        return self

    def render(self) -> str:
        """Full compiler-style diagnostic with file, location and caret."""
        where = ""
        if self.source is not None:
            where = f"{self.source.name}:"
        if self.span is not NO_SPAN and self.span.line > 0:
            where += f"{self.span.line}:{self.span.column}: "
        elif where:
            where += " "
        lines = [f"{where}{self.phase}: {self.message}"]
        if self.source is not None and self.span.line > 0:
            lines.append(self.source.caret_snippet(self.span))
        return "\n".join(lines)

    def __str__(self) -> str:
        if self.span is not NO_SPAN and self.span.line > 0:
            return f"{self.message} (at {self.span})"
        return self.message


class TetraSyntaxError(TetraError):
    """Raised by the lexer and parser for malformed source text."""

    phase = "syntax error"


class TetraIndentationError(TetraSyntaxError):
    """Inconsistent or unexpected indentation (Tetra is whitespace-delimited)."""

    phase = "indentation error"


class TetraTypeError(TetraError):
    """Raised by the static type checker."""

    phase = "type error"


class TetraNameError(TetraTypeError):
    """Use of an undefined variable, function, or type name."""

    phase = "name error"


class TetraRuntimeError(TetraError):
    """Raised while interpreting a program (index errors, bad reads, ...)."""

    phase = "runtime error"


class TetraIndexError(TetraRuntimeError):
    phase = "index error"


class TetraZeroDivisionError(TetraRuntimeError):
    phase = "division by zero"


class TetraIOError(TetraRuntimeError):
    phase = "i/o error"


class TetraNativeError(TetraRuntimeError):
    """``--native=require`` asked for the native compiled tier, but it
    cannot be set up on this run (no C toolchain, a failed build, or a
    configuration the tier cannot honor)."""

    phase = "native tier unavailable"


class TetraAssertionError(TetraRuntimeError):
    """Failure of the ``assert`` builtin (part of the extended stdlib)."""

    phase = "assertion failure"


class TetraDeadlockError(TetraRuntimeError):
    """A detected deadlock: self re-entry of a non-reentrant named lock, or a
    cycle in the lock wait-for graph.

    The message names the threads and locks involved — the whole point of
    Tetra is teaching students *why* their program froze.  ``blocked_spans``
    carries the source location of *every* blocked ``lock`` statement in the
    cycle (the primary ``span`` is one of them), so the diagnostic can point
    a caret at each of the statements that are waiting on each other.
    """

    phase = "deadlock"

    def __init__(self, message: str, span: Span = NO_SPAN,
                 source: SourceFile | None = None,
                 cycle: tuple[str, ...] = (),
                 blocked_spans: tuple[Span, ...] = ()):
        super().__init__(message, span, source)
        self.cycle = cycle
        self.blocked_spans = blocked_spans

    def render(self) -> str:
        text = super().render()
        if self.source is None:
            return text
        extra = [
            s for s in self.blocked_spans
            if s is not NO_SPAN and s.line > 0
            and (s.line, s.column) != (self.span.line, self.span.column)
        ]
        for s in extra:
            text += (
                f"\nalso blocked at {self.source.name}:{s.line}:{s.column}:\n"
                f"{self.source.caret_snippet(s)}"
            )
        return text


class TetraThreadError(TetraRuntimeError):
    """An error propagated out of a Tetra thread into the statement that
    spawned it (``parallel`` blocks re-raise the first child failure)."""

    phase = "thread error"


class TetraInternalError(TetraError):
    """A bug in the Tetra implementation itself, never the user's program."""

    phase = "internal error"


class TetraLimitError(TetraRuntimeError):
    """A configured resource limit was exceeded (recursion depth, step
    budget, wall/virtual time, or the value-heap memory budget).

    Limits let tests, the debugger, and ``tetra run`` bound runaway
    programs.  ``limit`` names which guardrail tripped (``"steps"``,
    ``"recursion"``, ``"time"``, ``"memory"``) so callers — the CLI exit
    codes, :attr:`repro.api.RunResult.aborted_by`, the stress harness —
    can react without parsing the message.
    """

    phase = "limit exceeded"

    def __init__(self, message: str, span: Span = NO_SPAN,
                 source: SourceFile | None = None, limit: str = ""):
        super().__init__(message, span, source)
        self.limit = limit


class TetraCancelledError(TetraRuntimeError):
    """The run was cancelled from outside the program: Ctrl-C, an IDE stop
    button, or a :class:`repro.resilience.CancelToken` being cancelled.

    Cancellation is cooperative — every thread observes the token at its
    next statement boundary, unwinds through the normal error path (so
    ``parallel`` joins its children and partial traces/metrics survive),
    and the program exits with a uniform diagnostic instead of a traceback.
    """

    phase = "cancelled"


class TetraUserError(TetraRuntimeError):
    """An error raised by the Tetra program itself via the ``error`` builtin."""

    phase = "error"


def is_catchable(exc: BaseException) -> bool:
    """Can a Tetra ``try``/``catch`` handle this error?

    Ordinary runtime failures (bad index, division by zero, I/O problems,
    assertion/``error()`` calls) are catchable.  Deadlocks, thread failures,
    resource-limit aborts, and cancellation are not — they describe a broken
    (or externally stopped) *program run*, not a recoverable condition, and
    letting a student swallow a deadlock would defeat the diagnostic.
    """
    if not isinstance(exc, TetraRuntimeError):
        return False
    return not isinstance(
        exc, (TetraDeadlockError, TetraThreadError, TetraLimitError,
              TetraCancelledError)
    )


# ----------------------------------------------------------------------
# Uniform CLI exit codes (documented in README "Guardrails & chaos testing")
# ----------------------------------------------------------------------
EXIT_OK = 0          #: clean run
EXIT_ERROR = 1       #: any other Tetra diagnostic (syntax, type, runtime)
EXIT_USAGE = 2       #: bad command-line usage (argparse's convention)
EXIT_RACES = 3       #: --detect-races found data races (run itself clean)
EXIT_LIMIT = 4       #: a guardrail tripped (step/time/memory/recursion)
EXIT_DEADLOCK = 5    #: a deadlock was detected and aborted
EXIT_CANCELLED = 130  #: cancelled (SIGINT / stop button), 128 + SIGINT


def exit_code_for(exc: BaseException) -> int:
    """The uniform exit code ``tetra run`` (and ``tetra stress`` workers)
    report for a failed run."""
    if isinstance(exc, TetraCancelledError):
        return EXIT_CANCELLED
    if isinstance(exc, TetraDeadlockError):
        return EXIT_DEADLOCK
    if isinstance(exc, TetraLimitError):
        return EXIT_LIMIT
    return EXIT_ERROR
