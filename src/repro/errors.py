"""Diagnostics for every phase of the Tetra system.

All user-facing failures derive from :class:`TetraError` and know how to
render themselves with the source line and a caret.  The hierarchy mirrors
the pipeline: lex → parse → typecheck → run, plus the runtime conditions an
educational parallel language must explain well (deadlock in particular).
"""

from __future__ import annotations

from .source import NO_SPAN, SourceFile, Span


class TetraError(Exception):
    """Base class for all diagnostics raised by the Tetra system."""

    #: Human-readable phase name used in rendered messages.
    phase = "error"

    def __init__(self, message: str, span: Span = NO_SPAN, source: SourceFile | None = None):
        super().__init__(message)
        self.message = message
        self.span = span
        self.source = source

    def attach_source(self, source: SourceFile) -> "TetraError":
        """Late-bind the source file (phases that only see spans use this)."""
        if self.source is None:
            self.source = source
        return self

    def render(self) -> str:
        """Full compiler-style diagnostic with file, location and caret."""
        where = ""
        if self.source is not None:
            where = f"{self.source.name}:"
        if self.span is not NO_SPAN and self.span.line > 0:
            where += f"{self.span.line}:{self.span.column}: "
        elif where:
            where += " "
        lines = [f"{where}{self.phase}: {self.message}"]
        if self.source is not None and self.span.line > 0:
            lines.append(self.source.caret_snippet(self.span))
        return "\n".join(lines)

    def __str__(self) -> str:
        if self.span is not NO_SPAN and self.span.line > 0:
            return f"{self.message} (at {self.span})"
        return self.message


class TetraSyntaxError(TetraError):
    """Raised by the lexer and parser for malformed source text."""

    phase = "syntax error"


class TetraIndentationError(TetraSyntaxError):
    """Inconsistent or unexpected indentation (Tetra is whitespace-delimited)."""

    phase = "indentation error"


class TetraTypeError(TetraError):
    """Raised by the static type checker."""

    phase = "type error"


class TetraNameError(TetraTypeError):
    """Use of an undefined variable, function, or type name."""

    phase = "name error"


class TetraRuntimeError(TetraError):
    """Raised while interpreting a program (index errors, bad reads, ...)."""

    phase = "runtime error"


class TetraIndexError(TetraRuntimeError):
    phase = "index error"


class TetraZeroDivisionError(TetraRuntimeError):
    phase = "division by zero"


class TetraIOError(TetraRuntimeError):
    phase = "i/o error"


class TetraAssertionError(TetraRuntimeError):
    """Failure of the ``assert`` builtin (part of the extended stdlib)."""

    phase = "assertion failure"


class TetraDeadlockError(TetraRuntimeError):
    """A detected deadlock: self re-entry of a non-reentrant named lock, or a
    cycle in the lock wait-for graph.

    The message names the threads and locks involved — the whole point of
    Tetra is teaching students *why* their program froze.
    """

    phase = "deadlock"

    def __init__(self, message: str, span: Span = NO_SPAN,
                 source: SourceFile | None = None,
                 cycle: tuple[str, ...] = ()):
        super().__init__(message, span, source)
        self.cycle = cycle


class TetraThreadError(TetraRuntimeError):
    """An error propagated out of a Tetra thread into the statement that
    spawned it (``parallel`` blocks re-raise the first child failure)."""

    phase = "thread error"


class TetraInternalError(TetraError):
    """A bug in the Tetra implementation itself, never the user's program."""

    phase = "internal error"


class TetraLimitError(TetraRuntimeError):
    """A configured resource limit was exceeded (recursion depth, step budget).

    Step budgets let tests and the debugger bound runaway programs.
    """

    phase = "limit exceeded"


class TetraUserError(TetraRuntimeError):
    """An error raised by the Tetra program itself via the ``error`` builtin."""

    phase = "error"


def is_catchable(exc: BaseException) -> bool:
    """Can a Tetra ``try``/``catch`` handle this error?

    Ordinary runtime failures (bad index, division by zero, I/O problems,
    assertion/``error()`` calls) are catchable.  Deadlocks, thread failures,
    and resource-limit aborts are not — they describe a broken *program
    run*, not a recoverable condition, and letting a student swallow a
    deadlock would defeat the diagnostic.
    """
    if not isinstance(exc, TetraRuntimeError):
        return False
    return not isinstance(
        exc, (TetraDeadlockError, TetraThreadError, TetraLimitError)
    )
