"""AST→closure precompilation: the interpreter's fast path.

The tree walker in :mod:`repro.interp.interpreter` pays a ``type(node)``
dict dispatch and several attribute lookups for *every* node on *every*
execution.  This module walks each type-checked function body **once** and
emits a tree of Python closures — one per statement and expression — with
everything that is knowable at compile time bound into the closure:

* **Operator specialization.**  ``a / b`` on two ``int`` operands becomes a
  closure that calls :func:`int_div` directly; on reals it calls
  :func:`real_div`.  The checker's ``ty`` annotations drive the choice, so
  execution never re-discovers operand types.
* **Callee resolution.**  A call site binds the target function's
  *invoker* (or the builtin's ``invoke`` method, or the class constructor)
  at compile time instead of probing three dictionaries per call.
* **Local variable slots.**  The only thread-private bindings a Tetra
  environment can ever hold are ``parallel for`` induction variables
  (see :mod:`repro.runtime.env`).  Every other function-local name is
  proven to live in the shared frame, so its reads and writes go straight
  to ``frame.vars`` and skip the private-table probe.
* **Backend specialization.**  Backends that neither schedule per
  statement (``checkpoint``) nor account costs (``charge``) get a *lean*
  statement prologue: a stop-flag test and the span bookkeeping that keeps
  backtraces and error carets exact.  The coop scheduler and the
  virtual-time simulator get the full prologue, with the same checkpoint
  and charge sequence the walker performs — stepping, step budgets, and
  simulated makespans are unchanged.

Observable semantics are identical to the walker on all four backends:
spans ride along in every closure that can raise, so diagnostics render
the same caret; per-statement checkpoints keep the debugger's independent
stepping working.  Race detection is the one deliberate exception: when
``detect_races`` is on the interpreter skips precompilation entirely and
uses the instrumented walker (the fallback the tests pin down), so the
detector sees every shared access exactly as before.
"""

from __future__ import annotations

import operator
from typing import Callable

from ..errors import (
    TetraInternalError,
    TetraLimitError,
    TetraRuntimeError,
    TetraThreadError,
    is_catchable,
)
from ..tetra_ast import (
    ArrayLiteral,
    Assign,
    Attribute,
    AugAssign,
    BackgroundBlock,
    BinaryOp,
    BinOp,
    Block,
    BoolLiteral,
    Break,
    Call,
    Continue,
    Declare,
    DictLiteral,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    IntLiteral,
    LockStmt,
    MethodCall,
    Name,
    ParallelBlock,
    ParallelFor,
    Pass,
    RangeLiteral,
    RealLiteral,
    Return,
    Stmt,
    StringLiteral,
    TryStmt,
    TupleLiteral,
    Unary,
    UnaryOp,
    Unpack,
    While,
    walk,
)
from ..types import (
    INT,
    VOID,
    ArrayType,
    ClassType,
    DictType,
    IntType,
    RealType,
    StringType,
    TupleType,
    from_type_expr,
)
from ..runtime import (
    Environment,
    Frame,
    coerce_to,
    int_div,
    int_mod,
    make_array,
    real_div,
    real_mod,
    tetra_pow,
)
from ..runtime.values import TetraArray, TetraDict, TetraObject, TetraTuple
from ..stdlib.registry import BUILTINS
from .context import CallRecord
from .control import BreakSignal, ContinueSignal, ReturnSignal

#: A compiled statement: runs for effect.  A compiled expression takes the
#: same shape but returns the value.
StmtRun = Callable[[object], None]
ExprRun = Callable[[object], object]

#: Invoker signature: (evaluated args, caller ctx, call-site span) -> value.
Invoker = Callable[[list, object, object], object]


class CompiledProgram:
    """The closure trees for one program, bound to one interpreter.

    ``functions`` maps a function name to its invoker; ``methods`` maps
    ``(class_name, method_name)``.  Invokers own the whole calling
    convention — recursion limit, frame/environment setup, parameter and
    return coercion — so call sites just evaluate arguments and jump.
    """

    __slots__ = ("functions", "methods")

    def __init__(self, functions: dict[str, Invoker],
                 methods: dict[tuple[str, str], Invoker]):
        self.functions = functions
        self.methods = methods


def compile_program(interp) -> CompiledProgram:
    """Precompile every function and method of ``interp.program``."""
    return _Compiler(interp).compile()


def _missing(node, what: str) -> TetraInternalError:
    """The checker failed to annotate a node the fast path depends on."""
    return TetraInternalError(
        f"the checker left {what} untyped at {node.span} — "
        "was this program type-checked?",
        node.span,
    )


def _unbound_error(ctx, exc: KeyError) -> TetraInternalError:
    """Map a frame-dict KeyError from an inlined variable read onto the
    same diagnostic :meth:`Environment.get` raises."""
    return TetraInternalError(
        f"variable '{exc.args[0]}' read before any assignment in "
        f"{ctx.env.frame.function_name}"
    )


#: Leaf literal nodes whose value can be bound into the parent's closure.
_LITERAL_NODES = (IntLiteral, RealLiteral, StringLiteral, BoolLiteral)

#: Operators whose Python spelling is total on checked operands (no span
#: needed at runtime), as C-level functions — calling one adds no Python
#: frame, which is what makes operand inlining pay off.
_OPERATOR_FUNCS = {
    BinaryOp.ADD: operator.add,
    BinaryOp.SUB: operator.sub,
    BinaryOp.MUL: operator.mul,
    BinaryOp.EQ: operator.eq,
    BinaryOp.NE: operator.ne,
    BinaryOp.LT: operator.lt,
    BinaryOp.LE: operator.le,
    BinaryOp.GT: operator.gt,
    BinaryOp.GE: operator.ge,
}


class _Compiler:
    """Compiles one program for one :class:`Interpreter` instance.

    The closures bind the interpreter's backend, io channel, and cost
    model, which is what makes them fast — and what ties a compiled
    program to its interpreter.  Compilation itself is a single O(nodes)
    walk, so rebinding per run is cheap; the expensive lex/parse/check
    work is what the :mod:`repro.api` program cache memoizes.
    """

    def __init__(self, interp):
        self.interp = interp
        self.backend = interp.backend
        self.acc = interp._acc
        self.cost = interp.cost_model
        self.io = interp.io
        self.source = interp.source
        self.symbols = interp.symbols
        self.limit = interp.config.step_limit
        # Backends that don't observe checkpoint() never see it skipped;
        # dropping the call saves a method call per statement on the thread
        # and sequential backends.  Asked of the *instance* (not the class)
        # because those backends only observe checkpoints while a schedule
        # recorder is attached.
        self.need_checkpoint = self.backend.wants_checkpoints()
        obs = interp._obs
        self._obs = obs
        #: Per-line profile hook; bound once so run_full pays a None test.
        self._line_hit = (obs.line_hit
                          if obs is not None and obs.profile else None)
        #: Guardrail check (cancel token / time limit / chaos preemption),
        #: bound once; None in the common unguarded case.  The heap meter
        #: is checked at allocation sites, so it does not force the full
        #: statement prologue.
        guard = interp._guard
        self._guard_check = guard.check if guard is not None else None
        self._heap = interp._heap
        self.lean = not (self.acc or self.limit or self.need_checkpoint
                         or self._line_hit is not None
                         or self._guard_check is not None)
        self._invokers: dict[str, Invoker] = {}
        self._method_invokers: dict[tuple[str, str], Invoker] = {}
        #: Names that *can* be thread-private in the function currently
        #: being compiled: the induction variables of its parallel fors.
        self._induction: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    # Program / function level
    # ------------------------------------------------------------------
    def compile(self) -> CompiledProgram:
        program = self.interp.program
        pending = []
        # Phase 1: create every invoker (bodies still empty) so call sites
        # can bind their callee directly, recursion included.
        for fn in program.functions:
            sig = self.symbols.functions[fn.name]
            cell: list = [None]
            self._invokers[fn.name] = self._make_invoker(sig, cell)
            pending.append((fn, cell))
        for cls in program.classes:
            info = self.symbols.classes[cls.name]
            for method in cls.methods:
                sig = info.methods[method.name]
                cell = [None]
                self._method_invokers[(cls.name, method.name)] = \
                    self._make_invoker(sig, cell)
                pending.append((method, cell))
        # Between the phases: substitute native (C) invokers for lowered
        # functions.  Call sites bind their callee from `_invokers` while
        # bodies compile in phase 2, so the swap must happen first; the
        # phase-1 Python invoker survives as the fallback each native
        # invoker delegates to when arguments exceed the C ABI (ints
        # beyond 64 bits).
        native = getattr(self.interp, "_native", None)
        if native is not None:
            for fn in program.functions:
                replacement = native.function_invoker(
                    fn.name, self._invokers[fn.name]
                )
                if replacement is not None:
                    self._invokers[fn.name] = replacement
        # Phase 2: compile the bodies.
        for fn, cell in pending:
            self._induction = frozenset(
                node.var for node in walk(fn.body)
                if isinstance(node, ParallelFor)
            )
            cell[0] = self.block(fn.body)
        return CompiledProgram(self._invokers, self._method_invokers)

    def _make_invoker(self, sig, cell: list) -> Invoker:
        interp = self.interp
        name = sig.name
        recursion_limit = interp.config.recursion_limit
        param_names = sig.param_names
        # coerce_to only acts on real and tuple targets; every other
        # parameter binds without the call.
        param_coerce = tuple(
            ty if isinstance(ty, (RealType, TupleType)) else None
            for ty in sig.param_types
        )
        simple_params = not any(param_coerce)
        return_type = sig.return_type
        is_void = return_type is VOID
        ret_coerce = (not is_void
                      and isinstance(return_type, (RealType, TupleType)))
        acc = self.acc
        charge = self.backend.charge
        call_units = self.cost.call_overhead

        def invoke(args, ctx, span):
            call_stack = ctx.call_stack
            if len(call_stack) >= recursion_limit:
                exc = TetraLimitError(
                    f"recursion depth exceeded {recursion_limit} "
                    f"calls (last call: '{name}') — raise it with "
                    "RuntimeConfig(recursion_limit=...) if the recursion "
                    "is intentional",
                    span,
                    limit="recursion",
                )
                if interp.source is not None:
                    exc.attach_source(interp.source)
                raise exc
            frame = Frame(name, depth=len(call_stack))
            fvars = frame.vars
            if simple_params:
                for pname, value in zip(param_names, args):
                    fvars[pname] = value
            else:
                for pname, want, value in zip(param_names, param_coerce, args):
                    fvars[pname] = (coerce_to(value, want)
                                    if want is not None else value)
            env = Environment(frame)
            saved_env = ctx.env
            ctx.env = env
            call_stack.append(CallRecord(name, env, call_span=span))
            if acc:
                charge(ctx, call_units)
            try:
                cell[0](ctx)
            except ReturnSignal as signal:
                if is_void:
                    return None
                if ret_coerce:
                    return coerce_to(signal.value, return_type)
                return signal.value
            finally:
                call_stack.pop()
                ctx.env = saved_env
            return None

        obs = self._obs
        if obs is not None and obs.trace:
            clock = obs.clock
            call_span = obs.call_span

            def invoke_traced(args, ctx, span):
                t0 = clock()
                try:
                    return invoke(args, ctx, span)
                finally:
                    call_span(ctx.id, name, t0, clock())

            return invoke_traced
        return invoke

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def block(self, body: Block) -> StmtRun:
        runs = tuple(self.stmt(s) for s in body.statements)
        if len(runs) == 1:
            return runs[0]

        def run_block(ctx):
            for run in runs:
                run(ctx)

        return run_block

    def stmt(self, s: Stmt) -> StmtRun:
        if self.lean:
            fused = _LEAN_STMT_BUILDERS.get(type(s))
            if fused is not None:
                return fused(self, s)
        try:
            builder = _STMT_BUILDERS[type(s)]
        except KeyError:  # pragma: no cover - parser emits no other kinds
            raise TetraInternalError(
                f"fast path has no compiler for {type(s).__name__}", s.span
            ) from None
        return self._wrap(s, builder(self, s))

    def _wrap(self, s: Stmt, core: StmtRun) -> StmtRun:
        """Attach the per-statement prologue exec_stmt() performs."""
        interp = self.interp
        span = s.span
        if self.lean:
            def run(ctx):
                if interp._stopped:
                    raise TetraThreadError("the program was stopped")
                stack = ctx.call_stack
                if stack:
                    stack[-1].current_span = span
                core(ctx)

            return run

        checkpoint = self.backend.checkpoint if self.need_checkpoint else None
        charge = self.backend.charge
        acc = self.acc
        units = self.cost.statement
        limit = self.limit
        steps = interp._steps
        line_hit = self._line_hit
        guard_check = self._guard_check
        line = span.line

        def run_full(ctx):
            if interp._stopped:
                raise TetraThreadError("the program was stopped")
            if limit and next(steps) > limit:
                exc = TetraLimitError(
                    f"the program exceeded its budget of {limit} statements "
                    "— raise it with --step-limit or "
                    "RuntimeConfig(step_limit=...)",
                    span,
                    limit="steps",
                )
                if interp.source is not None:
                    exc.attach_source(interp.source)
                raise exc
            if guard_check is not None:
                guard_check(ctx, span)
            stack = ctx.call_stack
            if stack:
                stack[-1].current_span = span
            if checkpoint is not None:
                checkpoint(ctx, s)
            if line_hit is not None:
                line_hit(ctx.id, line)
            if acc:
                charge(ctx, units)
            core(ctx)

        return run_full

    # -- lean fused statements ---------------------------------------------
    # On lean backends the prologue is two lines of bookkeeping; fusing it
    # into the hottest statement closures (instead of wrapping them) saves
    # one Python frame per statement executed.  Python 3.11's frame stack
    # grows in 16 KiB chunks that are freed as soon as recursion pops back
    # across them, so deep Tetra recursion pays an allocation for *every*
    # call whose frames straddle a chunk edge — the fewer frames per Tetra
    # statement, the fewer calls land on one.

    def _lean_stmt_expr(self, s: ExprStmt) -> StmtRun:
        interp = self.interp
        span = s.span
        value_fn = self.expr(s.expr)

        def run(ctx):
            if interp._stopped:
                raise TetraThreadError("the program was stopped")
            stack = ctx.call_stack
            if stack:
                stack[-1].current_span = span
            value_fn(ctx)  # result discarded

        return run

    def _lean_stmt_assign(self, s: Assign) -> StmtRun:
        interp = self.interp
        span = s.span
        value_fn = self.expr(s.value)
        store = self._store(s.target)

        def run(ctx):
            if interp._stopped:
                raise TetraThreadError("the program was stopped")
            stack = ctx.call_stack
            if stack:
                stack[-1].current_span = span
            store(ctx, value_fn(ctx))

        return run

    def _lean_stmt_return(self, s: Return) -> StmtRun:
        interp = self.interp
        span = s.span
        value_fn = self.expr(s.value) if s.value is not None else None

        def run(ctx):
            if interp._stopped:
                raise TetraThreadError("the program was stopped")
            stack = ctx.call_stack
            if stack:
                stack[-1].current_span = span
            raise ReturnSignal(
                value_fn(ctx) if value_fn is not None else None
            )

        return run

    def _lean_stmt_if(self, s: If) -> StmtRun:
        interp = self.interp
        span = s.span
        cond = self.expr(s.cond)
        then = self.block(s.then)
        elifs = tuple(
            (self.expr(c.cond), self.block(c.body)) for c in s.elifs
        )
        orelse = self.block(s.orelse) if s.orelse is not None else None
        if not elifs:
            def run(ctx):
                if interp._stopped:
                    raise TetraThreadError("the program was stopped")
                stack = ctx.call_stack
                if stack:
                    stack[-1].current_span = span
                if cond(ctx):
                    then(ctx)
                elif orelse is not None:
                    orelse(ctx)

            return run

        def run_elifs(ctx):
            if interp._stopped:
                raise TetraThreadError("the program was stopped")
            stack = ctx.call_stack
            if stack:
                stack[-1].current_span = span
            if cond(ctx):
                then(ctx)
                return
            for clause_cond, clause_body in elifs:
                if clause_cond(ctx):
                    clause_body(ctx)
                    return
            if orelse is not None:
                orelse(ctx)

        return run_elifs

    # -- simple statements -------------------------------------------------
    def _stmt_expr(self, s: ExprStmt) -> StmtRun:
        return self.expr(s.expr)  # result discarded by the wrapper

    def _stmt_assign(self, s: Assign) -> StmtRun:
        value_fn = self.expr(s.value)
        store = self._store(s.target)

        def run(ctx):
            store(ctx, value_fn(ctx))

        return run

    def _stmt_aug_assign(self, s: AugAssign) -> StmtRun:
        target_fn = self.expr(s.target)
        value_fn = self.expr(s.value)
        apply = self._binop_apply(s.op, s.target.ty, s.value.ty, s.span, s)
        store = self._store(s.target)

        def run(ctx):
            current = target_fn(ctx)
            operand = value_fn(ctx)
            store(ctx, apply(current, operand))

        return run

    def _stmt_unpack(self, s: Unpack) -> StmtRun:
        value_fn = self.expr(s.value)
        stores = tuple(self._store(t) for t in s.targets)

        def run(ctx):
            value = value_fn(ctx)
            if not isinstance(value, TetraTuple):
                raise TetraInternalError("unpacking a non-tuple at runtime")
            for store, item in zip(stores, value.items):
                store(ctx, item)

        return run

    def _stmt_declare(self, s: Declare) -> StmtRun:
        value_fn = self.expr(s.value)
        var_type = from_type_expr(s.declared_type)  # resolved once, not per run
        name = s.name
        if name in self._induction:
            def run(ctx):
                ctx.env.set(name, coerce_to(value_fn(ctx), var_type))
        else:
            def run(ctx):
                ctx.env.frame.vars[name] = coerce_to(value_fn(ctx), var_type)

        return run

    def _stmt_return(self, s: Return) -> StmtRun:
        if s.value is None:
            def run(ctx):
                raise ReturnSignal(None)
        else:
            value_fn = self.expr(s.value)

            def run(ctx):
                raise ReturnSignal(value_fn(ctx))

        return run

    def _stmt_break(self, s: Break) -> StmtRun:
        def run(ctx):
            raise BreakSignal()

        return run

    def _stmt_continue(self, s: Continue) -> StmtRun:
        def run(ctx):
            raise ContinueSignal()

        return run

    def _stmt_pass(self, s: Pass) -> StmtRun:
        def run(ctx):
            pass

        return run

    def _stmt_try(self, s: TryStmt) -> StmtRun:
        body = self.block(s.body)
        handler = self.block(s.handler)
        error_name = s.error_name

        def run(ctx):
            try:
                body(ctx)
            except TetraRuntimeError as exc:
                if not is_catchable(exc):
                    raise
                ctx.env.set(error_name, exc.message)
                handler(ctx)

        return run

    # -- control flow ------------------------------------------------------
    def _stmt_if(self, s: If) -> StmtRun:
        cond = self.expr(s.cond)
        then = self.block(s.then)
        elifs = tuple(
            (self.expr(c.cond), self.block(c.body)) for c in s.elifs
        )
        orelse = self.block(s.orelse) if s.orelse is not None else None
        acc = self.acc
        charge = self.backend.charge
        units = self.cost.branch

        def run_general(ctx):
            if acc:
                charge(ctx, units)
            if cond(ctx):
                then(ctx)
                return
            for clause_cond, clause_body in elifs:
                if clause_cond(ctx):
                    clause_body(ctx)
                    return
            if orelse is not None:
                orelse(ctx)

        return run_general

    def _stmt_while(self, s: While) -> StmtRun:
        cond = self.expr(s.cond)
        body = self.block(s.body)
        if self.lean:
            def run(ctx):
                while True:
                    if not cond(ctx):
                        break
                    try:
                        body(ctx)
                    except BreakSignal:
                        break
                    except ContinueSignal:
                        continue

            return run

        acc = self.acc
        charge = self.backend.charge
        units = self.cost.loop_iteration

        def run_acc(ctx):
            while True:
                if acc:
                    charge(ctx, units)
                if not cond(ctx):
                    break
                try:
                    body(ctx)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue

        return run_acc

    def _stmt_for(self, s: For) -> StmtRun:
        iterable_fn = self.expr(s.iterable)
        body = self.block(s.body)
        var = s.var
        span = s.span
        iterate = self.interp._iterate
        private = var in self._induction
        acc = self.acc
        charge = self.backend.charge
        units = self.cost.loop_iteration

        if not acc and not private:
            def run(ctx):
                items = iterate(iterable_fn(ctx), span)
                fvars = ctx.env.frame.vars
                for item in items:
                    fvars[var] = item
                    try:
                        body(ctx)
                    except BreakSignal:
                        break
                    except ContinueSignal:
                        continue

            return run

        def run_general(ctx):
            items = iterate(iterable_fn(ctx), span)
            env = ctx.env
            for item in items:
                if acc:
                    charge(ctx, units)
                env.set(var, item)
                try:
                    body(ctx)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue

        return run_general

    # -- parallel constructs -----------------------------------------------
    def _spawn_block(self, s, join: bool, kind: str) -> StmtRun:
        children = tuple(
            (self.stmt(child), child.span.line)
            for child in s.body.statements
        )
        spawn = self.interp._spawn_with_race_edges
        unique_label = self.interp._unique_label
        span = s.span

        def run(ctx):
            jobs = []
            env = ctx.env
            for i, (child_run, line) in enumerate(children):
                label = unique_label(f"{kind} thread {i + 1} (line {line})")
                child_ctx = ctx.spawn_child(label, env)

                def thunk(run_child=child_run, c=child_ctx):
                    run_child(c)

                jobs.append((child_ctx, thunk))
            spawn(ctx, jobs, join, span, kind)

        return run

    def _stmt_parallel_block(self, s: ParallelBlock) -> StmtRun:
        return self._spawn_block(s, join=True, kind="parallel")

    def _stmt_background_block(self, s: BackgroundBlock) -> StmtRun:
        return self._spawn_block(s, join=False, kind="background")

    def _stmt_parallel_for(self, s: ParallelFor) -> StmtRun:
        interp = self.interp
        iterable_fn = self.expr(s.iterable)
        body = self.block(s.body)
        var = s.var
        span = s.span
        line = span.line
        backend = self.backend
        acc = self.acc
        charge = backend.charge
        units = self.cost.loop_iteration
        spawn = interp._spawn_with_race_edges
        obs = self._obs
        try_offload = backend.try_parallel_for
        sched_rec = interp.config.schedule_recorder
        native = getattr(interp, "_native", None)

        def run(ctx):
            items = interp._iterate(iterable_fn(ctx), span)
            if not items:
                return
            if native is not None and native.try_parallel_for(interp, s,
                                                              items, ctx):
                return
            if try_offload is not None and try_offload(interp, s, items,
                                                       ctx):
                return
            workers = backend.parallel_for_workers(len(items))
            if sched_rec is not None:
                sched_rec.pfor(line, len(items), workers)
            chunks = interp._partition(items, workers)
            jobs = []
            for w, chunk in enumerate(chunks):
                if not chunk:
                    continue
                label = interp._unique_label(
                    f"worker {w + 1} (parallel for, line {line})"
                )
                worker_env = ctx.env.child_with_private({var: chunk[0]})
                child_ctx = ctx.spawn_child(label, worker_env)

                def thunk(chunk=chunk, env=worker_env, c=child_ctx):
                    private = env.private
                    for item in chunk:
                        if acc:
                            charge(c, units)
                        private[var] = item
                        body(c)

                jobs.append((child_ctx, thunk))
                if obs is not None:
                    obs.register_chunk(child_ctx.id, line, len(chunk))
            spawn(ctx, jobs, True, span, "parallel for")

        return run

    def _stmt_lock(self, s: LockStmt) -> StmtRun:
        body = self.block(s.body)
        lock = self.backend.lock
        name = s.name
        span = s.span

        def run(ctx):
            lock(ctx, name, lambda: body(ctx), span)

        return run

    # ------------------------------------------------------------------
    # Assignment targets
    # ------------------------------------------------------------------
    def _store(self, target: Expr) -> Callable[[object, object], None]:
        interp = self.interp
        acc = self.acc
        charge = self.backend.charge
        if isinstance(target, Name):
            name = target.id
            ty = target.ty
            if ty is None:
                raise _missing(target, f"assignment target '{name}'")
            widen = ty if isinstance(ty, (RealType, TupleType)) else None
            units = self.cost.name_store
            if name in self._induction:
                def store(ctx, value):
                    if acc:
                        charge(ctx, units)
                    ctx.env.set(
                        name, coerce_to(value, widen) if widen else value
                    )
            elif widen is not None:
                def store(ctx, value):
                    if acc:
                        charge(ctx, units)
                    ctx.env.frame.vars[name] = coerce_to(value, widen)
            elif acc:
                def store(ctx, value):
                    charge(ctx, units)
                    ctx.env.frame.vars[name] = value
            else:
                def store(ctx, value):
                    ctx.env.frame.vars[name] = value
            return store

        if isinstance(target, Attribute):
            base_fn = self.expr(target.base)
            attr = target.attr
            span = target.span
            units = self.cost.index_store

            def store_attr(ctx, value):
                base = base_fn(ctx)
                if acc:
                    charge(ctx, units)
                if not isinstance(base, TetraObject):
                    raise interp._err(
                        TetraRuntimeError,
                        "only class instances have fields", span,
                    )
                base.set(attr, value, span)

            return store_attr

        if isinstance(target, Index):
            base_fn = self.expr(target.base)
            index_fn = self.expr(target.index)
            span = target.span
            units = self.cost.index_store

            def store_index(ctx, value):
                base = base_fn(ctx)
                index = index_fn(ctx)
                if acc:
                    charge(ctx, units)
                if isinstance(base, TetraDict):
                    base.set(index, coerce_to(value, base.value_type))
                    return
                if not isinstance(base, TetraArray):
                    raise interp._err(
                        TetraRuntimeError,
                        "only array and dict elements can be assigned "
                        "through an index (strings are immutable)",
                        span,
                    )
                base.set(index, coerce_to(value, base.element_type), span)

            return store_index

        raise TetraInternalError(
            f"bad assignment target {type(target).__name__}"
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def expr(self, e: Expr) -> ExprRun:
        try:
            builder = _EXPR_BUILDERS[type(e)]
        except KeyError:  # pragma: no cover - parser emits no other kinds
            raise TetraInternalError(
                f"fast path has no compiler for {type(e).__name__}", e.span
            ) from None
        return builder(self, e)

    def _expr_literal(self, e) -> ExprRun:
        value = e.value
        if not self.acc:
            return lambda ctx: value
        charge = self.backend.charge
        units = self.cost.literal

        def run(ctx):
            charge(ctx, units)
            return value

        return run

    def _expr_name(self, e: Name) -> ExprRun:
        name = e.id
        if name in self._induction:
            if not self.acc:
                return lambda ctx: ctx.env.get(name)
            charge = self.backend.charge
            units = self.cost.name_load

            def run_private(ctx):
                charge(ctx, units)
                return ctx.env.get(name)

            return run_private

        if not self.acc:
            def run(ctx):
                try:
                    return ctx.env.frame.vars[name]
                except KeyError:
                    raise TetraInternalError(
                        f"variable '{name}' read before any assignment in "
                        f"{ctx.env.frame.function_name}"
                    ) from None

            return run

        charge = self.backend.charge
        units = self.cost.name_load

        def run_acc(ctx):
            charge(ctx, units)
            try:
                return ctx.env.frame.vars[name]
            except KeyError:
                raise TetraInternalError(
                    f"variable '{name}' read before any assignment in "
                    f"{ctx.env.frame.function_name}"
                ) from None

        return run_acc

    def _with_heap(self, run: ExprRun, span) -> ExprRun:
        """Wrap an allocation site with the memory-limit meter (no-op —
        the closure is returned untouched — unless memory_limit is set)."""
        heap = self._heap
        if heap is None:
            return run
        track_value = heap.track_value

        def run_tracked(ctx):
            result = run(ctx)
            track_value(result, span)
            return result

        return run_tracked

    def _expr_array_literal(self, e: ArrayLiteral) -> ExprRun:
        ty = e.ty
        if not isinstance(ty, ArrayType):
            raise _missing(e, "an array literal")
        element_ty = ty.element
        elem_fns = tuple(self.expr(x) for x in e.elements)
        if not self.acc:
            def run(ctx):
                return make_array([f(ctx) for f in elem_fns], element_ty)

            return self._with_heap(run, e.span)

        charge = self.backend.charge
        units = self.cost.array_element * max(1, len(elem_fns))

        def run_acc(ctx):
            values = [f(ctx) for f in elem_fns]
            charge(ctx, units)
            return make_array(values, element_ty)

        return self._with_heap(run_acc, e.span)

    def _expr_tuple_literal(self, e: TupleLiteral) -> ExprRun:
        ty = e.ty
        if not isinstance(ty, TupleType):
            raise _missing(e, "a tuple literal")
        elem_fns = tuple(self.expr(x) for x in e.elements)
        widen = tuple(
            t if isinstance(t, (RealType, TupleType)) else None
            for t in ty.elements
        )
        simple = not any(widen)
        acc = self.acc
        charge = self.backend.charge
        units = self.cost.array_element * len(elem_fns)

        def run(ctx):
            if simple:
                values = [f(ctx) for f in elem_fns]
            else:
                values = [
                    coerce_to(f(ctx), w) if w is not None else f(ctx)
                    for f, w in zip(elem_fns, widen)
                ]
            if acc:
                charge(ctx, units)
            return TetraTuple(values)

        return self._with_heap(run, e.span)

    def _expr_dict_literal(self, e: DictLiteral) -> ExprRun:
        ty = e.ty
        if not isinstance(ty, DictType):
            raise TetraInternalError(
                "dict literal was not typed by the checker", e.span
            )
        entry_fns = tuple(
            (self.expr(k), self.expr(v)) for k, v in e.entries
        )
        key_ty, value_ty = ty.key, ty.value
        acc = self.acc
        charge = self.backend.charge
        per_element = self.cost.array_element

        def run(ctx):
            items = {}
            for key_fn, value_fn in entry_fns:
                key = key_fn(ctx)
                items[key] = coerce_to(value_fn(ctx), value_ty)
            if acc:
                charge(ctx, per_element * max(1, len(items)))
            return TetraDict(items, key_ty, value_ty)

        return self._with_heap(run, e.span)

    def _expr_range_literal(self, e: RangeLiteral) -> ExprRun:
        start_fn = self.expr(e.start)
        stop_fn = self.expr(e.stop)
        acc = self.acc
        charge = self.backend.charge
        per_element = self.cost.array_element

        def run(ctx):
            items = list(range(start_fn(ctx), stop_fn(ctx) + 1))
            if acc:
                charge(ctx, per_element * max(1, len(items)))
            return TetraArray(items, INT)

        return self._with_heap(run, e.span)

    def _expr_index(self, e: Index) -> ExprRun:
        interp = self.interp
        base_fn = self.expr(e.base)
        index_fn = self.expr(e.index)
        span = e.span
        base_ty = e.base.ty
        acc = self.acc
        charge = self.backend.charge
        units = self.cost.index_load

        if isinstance(base_ty, (ArrayType, DictType, TupleType)):
            # Arrays, dicts, and tuples share the get(index, span) protocol;
            # the static type tells us no other value can appear here.
            if not acc:
                def run(ctx):
                    return base_fn(ctx).get(index_fn(ctx), span)

                return run

            def run_acc(ctx):
                base = base_fn(ctx)
                index = index_fn(ctx)
                charge(ctx, units)
                return base.get(index, span)

            return run_acc

        if isinstance(base_ty, StringType):
            def run_str(ctx):
                base = base_fn(ctx)
                index = index_fn(ctx)
                if acc:
                    charge(ctx, units)
                if not 0 <= index < len(base):
                    raise interp._err(
                        TetraRuntimeError,
                        f"index {index} is out of range for a string of "
                        f"length {len(base)}",
                        span,
                    )
                return base[index]

            return run_str

        raise _missing(e.base, "an indexed expression")

    def _expr_attribute(self, e: Attribute) -> ExprRun:
        interp = self.interp
        base_fn = self.expr(e.base)
        attr = e.attr
        span = e.span
        acc = self.acc
        charge = self.backend.charge
        units = self.cost.index_load

        def run(ctx):
            base = base_fn(ctx)
            if acc:
                charge(ctx, units)
            if not isinstance(base, TetraObject):
                raise interp._err(
                    TetraRuntimeError, "only class instances have fields",
                    span,
                )
            return base.get(attr, span)

        return run

    def _expr_method_call(self, e: MethodCall) -> ExprRun:
        interp = self.interp
        base_ty = e.base.ty
        if not isinstance(base_ty, ClassType):
            raise _missing(e.base, "a method-call receiver")
        invoke = self._method_invokers.get((base_ty.name, e.method))
        if invoke is None:
            raise TetraInternalError(
                f"call to unknown method '{base_ty.name}.{e.method}'"
            )
        base_fn = self.expr(e.base)
        arg_fns = tuple(self.expr(a) for a in e.args)
        span = e.span

        def run(ctx):
            base = base_fn(ctx)
            args = [f(ctx) for f in arg_fns]
            if not isinstance(base, TetraObject):
                raise interp._err(
                    TetraRuntimeError, "only class instances have methods",
                    span,
                )
            return invoke([base, *args], ctx, span)

        return run

    def _expr_call(self, e: Call) -> ExprRun:
        arg_fns = tuple(self.expr(a) for a in e.args)
        span = e.span

        invoke = self._invokers.get(e.func)
        if invoke is not None:
            if len(arg_fns) == 1:
                arg0 = arg_fns[0]

                def run1(ctx):
                    return invoke([arg0(ctx)], ctx, span)

                return run1

            def run(ctx):
                return invoke([f(ctx) for f in arg_fns], ctx, span)

            return run

        info = self.symbols.classes.get(e.func)
        if info is not None:
            return self._constructor(e, info, arg_fns)

        builtin = BUILTINS.get(e.func)
        if builtin is None:
            raise TetraInternalError(
                f"unknown function '{e.func}' at runtime", e.span
            )
        invoke_builtin = builtin.invoke
        io = self.io
        source = self.source
        acc = self.acc
        charge = self.backend.charge
        units = self.cost.builtin_overhead

        if e.func == "clock":
            # clock() reports the backend's clock (virtual under sim/coop);
            # the builtin table cannot see the backend, so bind it here.
            now = self.backend.now

            def run_clock(ctx):
                if acc:
                    charge(ctx, units)
                return now()

            return run_clock

        def run_builtin(ctx):
            args = [f(ctx) for f in arg_fns]
            if acc:
                charge(ctx, units)
            try:
                return invoke_builtin(args, io, span)
            except TetraRuntimeError as exc:
                if exc.source is None and source is not None:
                    exc.attach_source(source)
                raise

        return self._with_heap(run_builtin, span)

    def _constructor(self, e: Call, info, arg_fns) -> ExprRun:
        class_name = info.name
        field_names = info.field_names
        # The type/order tables are immutable; every instance can share them
        # (the walker rebuilds both on each construction).
        field_types = dict(zip(info.field_names, info.field_types))
        field_order = list(info.field_names)
        widen = tuple(
            ty if isinstance(ty, (RealType, TupleType)) else None
            for ty in info.field_types
        )
        acc = self.acc
        charge = self.backend.charge
        units = (self.cost.call_overhead
                 + self.cost.array_element * max(1, len(arg_fns)))

        def run(ctx):
            if acc:
                args = [f(ctx) for f in arg_fns]
                charge(ctx, units)
            else:
                args = [f(ctx) for f in arg_fns]
            fields = {
                name: coerce_to(value, w) if w is not None else value
                for name, w, value in zip(field_names, widen, args)
            }
            return TetraObject(class_name, fields, field_types, field_order)

        return self._with_heap(run, e.span)

    def _expr_unary(self, e: Unary) -> ExprRun:
        op = e.op
        if not self.acc and isinstance(e.operand, _LITERAL_NODES):
            raw = e.operand.value  # fold: -1 and not true are constants
            if op is UnaryOp.NEG:
                value = -raw
            elif op is UnaryOp.POS:
                value = raw
            else:
                value = not raw
            return lambda ctx: value
        operand = self.expr(e.operand)
        if not self.acc:
            if op is UnaryOp.NEG:
                return lambda ctx: -operand(ctx)
            if op is UnaryOp.POS:
                return operand
            return lambda ctx: not operand(ctx)

        charge = self.backend.charge
        units = self.cost.unary

        def run(ctx):
            value = operand(ctx)
            charge(ctx, units)
            if op is UnaryOp.NEG:
                return -value
            if op is UnaryOp.POS:
                return value
            return not value

        return run

    def _operand(self, e: Expr):
        """Classify an operand for inlining: ``("const", value)`` for a
        literal, ``("name", id)`` for a provably-shared local, or
        ``(None, closure)`` when it must stay a compiled sub-expression.
        Inlined operands cost zero Python frames at runtime (cost
        accounting needs the per-node closures, so only lean/thread
        backends inline)."""
        if isinstance(e, _LITERAL_NODES):
            return "const", e.value
        if type(e) is Name and e.id not in self._induction:
            return "name", e.id
        return None, self.expr(e)

    def _expr_binop(self, e: BinOp) -> ExprRun:
        op = e.op
        acc = self.acc
        charge = self.backend.charge
        units = self.cost.binop

        if op is BinaryOp.AND or op is BinaryOp.OR:
            left = self.expr(e.left)
            right = self.expr(e.right)
            if op is BinaryOp.AND:
                if not acc:
                    return lambda ctx: bool(left(ctx)) and bool(right(ctx))

                def run_and(ctx):
                    lv = left(ctx)
                    charge(ctx, units)
                    return bool(lv) and bool(right(ctx))

                return run_and
            if not acc:
                return lambda ctx: bool(left(ctx)) or bool(right(ctx))

            def run_or(ctx):
                lv = left(ctx)
                charge(ctx, units)
                return bool(lv) or bool(right(ctx))

            return run_or

        if not acc:
            lk, lv = self._operand(e.left)
            rk, rv = self._operand(e.right)
            if lk is not None or rk is not None:
                return self._binop_inlined(e, lk, lv, rk, rv)
            left, right = lv, rv
            # Both operands are real sub-expressions: one closure call per
            # operand and the native operator, nothing else.
            if op is BinaryOp.ADD:
                return lambda ctx: left(ctx) + right(ctx)
            if op is BinaryOp.SUB:
                return lambda ctx: left(ctx) - right(ctx)
            if op is BinaryOp.MUL:
                return lambda ctx: left(ctx) * right(ctx)
            if op is BinaryOp.EQ:
                return lambda ctx: left(ctx) == right(ctx)
            if op is BinaryOp.NE:
                return lambda ctx: left(ctx) != right(ctx)
            if op is BinaryOp.LT:
                return lambda ctx: left(ctx) < right(ctx)
            if op is BinaryOp.LE:
                return lambda ctx: left(ctx) <= right(ctx)
            if op is BinaryOp.GT:
                return lambda ctx: left(ctx) > right(ctx)
            if op is BinaryOp.GE:
                return lambda ctx: left(ctx) >= right(ctx)
            apply = self._binop_apply(op, e.left.ty, e.right.ty, e.span, e)
            return lambda ctx: apply(left(ctx), right(ctx))

        left = self.expr(e.left)
        right = self.expr(e.right)
        apply = self._binop_apply(op, e.left.ty, e.right.ty, e.span, e)

        def run_acc(ctx):
            lv = left(ctx)
            rv = right(ctx)
            charge(ctx, units)
            return apply(lv, rv)

        return run_acc

    def _binop_inlined(self, e: BinOp, lk, lv, rk, rv) -> ExprRun:
        """A binop closure with at least one literal/local operand bound in.

        ``n - 1`` compiles to a single closure that reads the frame dict and
        subtracts — no operand frames at all.  Frame-dict KeyErrors map onto
        the unbound-variable internal error with the walker's wording;
        evaluation stays left-to-right so a program with *two* unbound
        operands reports the same one the walker would.
        """
        op = e.op
        opfunc = _OPERATOR_FUNCS.get(op)
        total = opfunc is not None  # total ⇒ cannot raise ⇒ foldable
        if opfunc is None:
            opfunc = self._binop_apply(op, e.left.ty, e.right.ty, e.span, e)

        if lk == "const" and rk == "const":
            if total:
                value = opfunc(lv, rv)  # fold: 1 + 2 is 3 at compile time
                return lambda ctx: value
            return lambda ctx: opfunc(lv, rv)  # 1 / 0 must raise at runtime

        if lk == "name":
            if rk == "name":
                def run_nn(ctx):
                    v = ctx.env.frame.vars
                    try:
                        return opfunc(v[lv], v[rv])
                    except KeyError as exc:
                        raise _unbound_error(ctx, exc) from None

                return run_nn
            if rk == "const":
                def run_nc(ctx):
                    try:
                        return opfunc(ctx.env.frame.vars[lv], rv)
                    except KeyError as exc:
                        raise _unbound_error(ctx, exc) from None

                return run_nc

            def run_nf(ctx):
                try:
                    left = ctx.env.frame.vars[lv]
                except KeyError as exc:
                    raise _unbound_error(ctx, exc) from None
                return opfunc(left, rv(ctx))

            return run_nf

        if rk == "name":
            if lk == "const":
                def run_cn(ctx):
                    try:
                        return opfunc(lv, ctx.env.frame.vars[rv])
                    except KeyError as exc:
                        raise _unbound_error(ctx, exc) from None

                return run_cn

            def run_fn(ctx):
                left = lv(ctx)
                try:
                    right = ctx.env.frame.vars[rv]
                except KeyError as exc:
                    raise _unbound_error(ctx, exc) from None
                return opfunc(left, right)

            return run_fn

        if lk == "const":
            return lambda ctx: opfunc(lv, rv(ctx))
        return lambda ctx: opfunc(lv(ctx), rv)

    def _binop_apply(self, op: BinaryOp, left_ty, right_ty, span, node):
        """A two-argument applier with the operator (and, for division and
        modulo, the int/real variant) chosen from the static types."""
        if op is BinaryOp.ADD:
            return lambda a, b: a + b
        if op is BinaryOp.SUB:
            return lambda a, b: a - b
        if op is BinaryOp.MUL:
            return lambda a, b: a * b
        if op is BinaryOp.EQ:
            return lambda a, b: a == b
        if op is BinaryOp.NE:
            return lambda a, b: a != b
        if op is BinaryOp.LT:
            return lambda a, b: a < b
        if op is BinaryOp.LE:
            return lambda a, b: a <= b
        if op is BinaryOp.GT:
            return lambda a, b: a > b
        if op is BinaryOp.GE:
            return lambda a, b: a >= b
        if op is BinaryOp.POW:
            return lambda a, b: tetra_pow(a, b, span)
        if op in (BinaryOp.DIV, BinaryOp.MOD):
            if left_ty is None or right_ty is None:
                raise _missing(node, f"an operand of '{op.value}'")
            both_int = (isinstance(left_ty, IntType)
                        and isinstance(right_ty, IntType))
            if op is BinaryOp.DIV:
                if both_int:
                    return lambda a, b: int_div(a, b, span)
                return lambda a, b: real_div(float(a), float(b), span)
            if both_int:
                return lambda a, b: int_mod(a, b, span)
            return lambda a, b: real_mod(float(a), float(b), span)
        raise TetraInternalError(
            f"unhandled operator {op}"
        )  # pragma: no cover


_STMT_BUILDERS = {
    ExprStmt: _Compiler._stmt_expr,
    Assign: _Compiler._stmt_assign,
    AugAssign: _Compiler._stmt_aug_assign,
    Unpack: _Compiler._stmt_unpack,
    Declare: _Compiler._stmt_declare,
    If: _Compiler._stmt_if,
    While: _Compiler._stmt_while,
    For: _Compiler._stmt_for,
    ParallelFor: _Compiler._stmt_parallel_for,
    ParallelBlock: _Compiler._stmt_parallel_block,
    BackgroundBlock: _Compiler._stmt_background_block,
    LockStmt: _Compiler._stmt_lock,
    TryStmt: _Compiler._stmt_try,
    Return: _Compiler._stmt_return,
    Break: _Compiler._stmt_break,
    Continue: _Compiler._stmt_continue,
    Pass: _Compiler._stmt_pass,
}

#: Statements with a prologue-fused variant for lean backends; every other
#: statement kind goes through the generic ``_wrap`` prologue.
_LEAN_STMT_BUILDERS = {
    ExprStmt: _Compiler._lean_stmt_expr,
    Assign: _Compiler._lean_stmt_assign,
    Return: _Compiler._lean_stmt_return,
    If: _Compiler._lean_stmt_if,
}

_EXPR_BUILDERS = {
    IntLiteral: _Compiler._expr_literal,
    RealLiteral: _Compiler._expr_literal,
    StringLiteral: _Compiler._expr_literal,
    BoolLiteral: _Compiler._expr_literal,
    Name: _Compiler._expr_name,
    ArrayLiteral: _Compiler._expr_array_literal,
    TupleLiteral: _Compiler._expr_tuple_literal,
    DictLiteral: _Compiler._expr_dict_literal,
    RangeLiteral: _Compiler._expr_range_literal,
    Index: _Compiler._expr_index,
    Attribute: _Compiler._expr_attribute,
    MethodCall: _Compiler._expr_method_call,
    Call: _Compiler._expr_call,
    BinOp: _Compiler._expr_binop,
    Unary: _Compiler._expr_unary,
}
