"""Tree-walking interpreter for Tetra programs, plus its closure-compiled
fast path (:mod:`repro.interp.compile`)."""

from .compile import CompiledProgram, compile_program
from .context import CallRecord, ThreadContext
from .control import BreakSignal, ContinueSignal, ControlSignal, ReturnSignal
from .interpreter import Interpreter

__all__ = [
    "CallRecord", "ThreadContext",
    "BreakSignal", "ContinueSignal", "ControlSignal", "ReturnSignal",
    "CompiledProgram", "compile_program", "Interpreter",
]
