"""Tree-walking interpreter for Tetra programs."""

from .context import CallRecord, ThreadContext
from .control import BreakSignal, ContinueSignal, ControlSignal, ReturnSignal
from .interpreter import Interpreter

__all__ = [
    "CallRecord", "ThreadContext",
    "BreakSignal", "ContinueSignal", "ControlSignal", "ReturnSignal",
    "Interpreter",
]
