"""Per-thread interpreter state.

Each Tetra thread — the main thread, every ``parallel`` child, every
``parallel for`` worker — owns one :class:`ThreadContext`: its identity (the
key in lock wait-for graphs), its current environment, and its Tetra-level
call stack (what the debugger shows as a backtrace).

Context ids are process-global and monotonically increasing, so the
deterministic coop scheduler's "pick the lowest ready id" tie-break follows
spawn order.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from ..source import NO_SPAN, Span
from ..runtime.env import Environment

_ids = itertools.count(1)


@dataclass
class CallRecord:
    """One Tetra-level stack frame (for backtraces and recursion limits)."""

    function_name: str
    env: Environment
    call_span: Span = NO_SPAN
    current_span: Span = NO_SPAN


class ThreadContext:
    """Everything the interpreter knows about one Tetra thread."""

    __slots__ = ("id", "label", "env", "call_stack", "os_thread_ident")

    def __init__(self, label: str, env: Environment | None = None,
                 call_stack: list[CallRecord] | None = None):
        self.id = next(_ids)
        self.label = label
        self.env = env
        self.call_stack: list[CallRecord] = call_stack if call_stack is not None else []
        self.os_thread_ident: int | None = None

    def spawn_child(self, label: str, env: Environment) -> "ThreadContext":
        """Context for a thread spawned by a parallel construct.

        The child starts with a *copy* of the spawner's call stack — its
        backtrace reads "inside sum(), thread 2 of the parallel block" — but
        the copy is private so the threads' subsequent calls do not fight
        over one list.
        """
        child = ThreadContext(label, env, list(self.call_stack))
        return child

    @property
    def depth(self) -> int:
        return len(self.call_stack)

    @property
    def current_function(self) -> str:
        if self.call_stack:
            return self.call_stack[-1].function_name
        return "<toplevel>"

    def __repr__(self) -> str:
        return f"ThreadContext(#{self.id} {self.label!r} in {self.current_function})"
