"""The Tetra tree-walking interpreter.

Faithful to the paper's §IV: the program is parsed to an AST, type-checked,
then interpreted "by traversing the AST recursively"; at a ``parallel``
block the interpreter "launches one thread for each child node ... and
executes them in parallel", background blocks skip the join, ``parallel
for`` workers get "a copy of the induction variable inserted into their
private symbol table", and lock statements map onto mutexes.

The one generalization over the paper is the pluggable
:class:`~repro.runtime.backend.Backend`: the same interpreter runs on real
threads, under the deterministic cooperative scheduler, or inside the
virtual-time recorder — which is what lets a Python reproduction both keep
the real-threads semantics and regenerate the speedup evaluation
(DESIGN.md §2).
"""

from __future__ import annotations

import itertools
import threading

from ..errors import (
    TetraInternalError,
    TetraLimitError,
    TetraRuntimeError,
    TetraThreadError,
    TetraTypeError,
    is_catchable,
)
from ..source import NO_SPAN, SourceFile, Span
from ..tetra_ast import (
    ArrayLiteral,
    Assign,
    Attribute,
    AugAssign,
    BackgroundBlock,
    BinaryOp,
    BinOp,
    Block,
    BoolLiteral,
    Break,
    Call,
    Continue,
    Declare,
    DictLiteral,
    FunctionDef,
    Expr,
    ExprStmt,
    For,
    If,
    Index,
    IntLiteral,
    LockStmt,
    MethodCall,
    Name,
    ParallelBlock,
    ParallelFor,
    Pass,
    Program,
    RangeLiteral,
    RealLiteral,
    Return,
    Stmt,
    StringLiteral,
    TryStmt,
    TupleLiteral,
    Unary,
    UnaryOp,
    Unpack,
    While,
)
from ..types import (
    VOID,
    ArrayType,
    DictType,
    TupleType,
    check_program,
    from_type_expr,
)
from ..runtime import (
    Backend,
    Environment,
    Frame,
    RuntimeConfig,
    TetraArray,
    ThreadBackend,
    Value,
    coerce_to,
    int_div,
    int_mod,
    make_array,
    real_div,
    real_mod,
    tetra_pow,
)
from ..runtime.values import TetraDict, TetraObject, TetraTuple
from ..runtime.cost import DEFAULT_COST_MODEL, CostModel
from ..stdlib.io import IOChannel, StandardIO
from ..stdlib.registry import BUILTINS
from .context import CallRecord, ThreadContext
from .control import BreakSignal, ContinueSignal, ReturnSignal


class Interpreter:
    """Executes one type-checked :class:`Program`.

    One interpreter instance runs one program (it owns the program's lock
    table via its backend and the program's console via ``io``); it is safe
    for the program's *threads* to share, not for unrelated programs.
    """

    def __init__(self, program: Program, source: SourceFile | None = None,
                 backend: Backend | None = None, io: IOChannel | None = None,
                 config: RuntimeConfig | None = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 fast: bool = True):
        self.program = program
        self.source = source
        self.backend = backend or ThreadBackend(config)
        if config is not None and backend is not None:
            self.backend.config = config
        self.config = self.backend.config
        self.io = io or StandardIO()
        self.cost_model = cost_model
        self._acc = self.backend.accounting
        if not hasattr(program, "symbols"):
            check_program(program, source)
        self.symbols = program.symbols  # type: ignore[attr-defined]
        self._functions = {fn.name: fn for fn in program.functions}
        self._classes = {cls.name: cls for cls in program.classes}
        self._methods = {
            (cls.name, m.name): m
            for cls in program.classes
            for m in cls.methods
        }
        self._steps = itertools.count(1)
        self._stopped = False
        # Thread labels are the identity a schedule artifact (and the race
        # detector's reports) refers to; the counter disambiguates re-spawns
        # from the same source site (a loop around a parallel block) with a
        # " #N" suffix, and the issued set turns any remaining collision
        # into a loud internal error instead of a silently wrong replay.
        self._labels_mu = threading.Lock()
        self._label_counts: dict[str, int] = {}
        self._labels_issued: set[str] = set()
        # Race detection: None (the common case) costs one attribute test
        # per shared-memory operation; a detector records happens-before
        # and lockset evidence for every shared access.
        self._race = None
        if self.config.detect_races:
            from ..analysis.races import RaceDetector

            self._race = RaceDetector()
        # Observability follows the same None-check contract: one attribute
        # test at each emission site when disabled, an Observer collecting
        # span events and counters when tracing/metrics/profiling is on.
        self._obs = None
        if self.config.trace or self.config.metrics or self.config.profile:
            from ..obs import Observer

            self._obs = Observer(trace=self.config.trace,
                                 metrics=self.config.metrics,
                                 profile=self.config.profile)
            self._obs.bind(self.backend)
            self.backend.obs = self._obs
        # Guardrails keep the contract too: `_guard` is bound only when the
        # statement-boundary check would do something (cancel token, time
        # limit, or thread-backend chaos), `_heap` only under memory_limit.
        self._guard = None
        if (self.config.time_limit or self.config.cancel is not None
                or self.config.fault_plan is not None):
            from ..resilience.guard import ExecutionGuard

            guard = ExecutionGuard(self.backend, self.config)
            if guard.active:
                self._guard = guard
        self._heap = None
        if self.config.memory_limit:
            from ..resilience.guard import HeapMeter

            self._heap = HeapMeter(self.config.memory_limit)
        # Captured output is invisible to the HeapMeter (it counts value
        # cells, not console chunks), so the memory guardrail alone used to
        # leave `while: print(...)` unbounded.  The cap lives in the IO
        # channel itself — every write is metered — armed here from the
        # explicit output_limit or derived from memory_limit.
        out_cap = self.config.output_limit
        if not out_cap and self.config.memory_limit:
            from ..resilience.guard import OUTPUT_CHARS_PER_CELL

            out_cap = self.config.memory_limit * OUTPUT_CHARS_PER_CELL
        if out_cap:
            self.io.set_output_limit(out_cap)
        self._stmt_dispatch = {
            ExprStmt: self._exec_expr_stmt,
            Assign: self._exec_assign,
            AugAssign: self._exec_aug_assign,
            Unpack: self._exec_unpack,
            Declare: self._exec_declare,
            If: self._exec_if,
            While: self._exec_while,
            For: self._exec_for,
            ParallelFor: self._exec_parallel_for,
            ParallelBlock: self._exec_parallel_block,
            BackgroundBlock: self._exec_background_block,
            LockStmt: self._exec_lock,
            TryStmt: self._exec_try,
            Return: self._exec_return,
            Break: self._exec_break,
            Continue: self._exec_continue,
            Pass: self._exec_pass,
        }
        self._expr_dispatch = {
            IntLiteral: self._eval_literal,
            RealLiteral: self._eval_literal,
            StringLiteral: self._eval_literal,
            BoolLiteral: self._eval_literal,
            Name: self._eval_name,
            ArrayLiteral: self._eval_array_literal,
            TupleLiteral: self._eval_tuple_literal,
            DictLiteral: self._eval_dict_literal,
            RangeLiteral: self._eval_range_literal,
            Index: self._eval_index,
            Attribute: self._eval_attribute,
            MethodCall: self._eval_method_call,
            Call: self._eval_call,
            BinOp: self._eval_binop,
            Unary: self._eval_unary,
        }
        # The fast path: each function body precompiled to a closure tree
        # (see repro.interp.compile).  Race detection keeps the walker — the
        # detector's read/write instrumentation lives in the dispatch
        # methods above, and the walker's per-node cost is noise next to
        # vector-clock bookkeeping.
        # The native compiled tier (repro.compiler.native): set up before
        # the fast-path compile so lowered functions can substitute their
        # C invokers while call sites are being bound.  `_native` is a
        # NativeRun (possibly disabled, carrying the reason) or None when
        # native="off"; its state is exported on the backend for
        # --metrics, mirroring the proc backend's fallback reporting.
        self._native = None
        if self.config.native != "off":
            from ..compiler.native import setup_native

            self._native = setup_native(self)
            if self._native is not None:
                self.backend.native_state = self._native.state
        self._compiled = None
        #: True when calls run through precompiled closures; tests assert
        #: this to pin down the detect_races fallback choice.
        self.fast = False
        if fast and self._race is None:
            from .compile import compile_program

            self._compiled = compile_program(self)
            self.fast = True

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, entry: str = "main") -> None:
        """Run the program from its entry function (``main`` by default)."""
        fn = self._functions.get(entry)
        if fn is None:
            raise TetraRuntimeError(
                f"the program has no '{entry}' function to start from"
            )
        if fn.params:
            raise TetraRuntimeError(f"'{entry}' must not take parameters")
        # Each Tetra call consumes a dozen-odd Python frames; make sure the
        # Tetra recursion limit fires before CPython's.
        import sys

        needed = self.config.recursion_limit * 40 + 1000
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        ctx = ThreadContext(self._unique_label("main thread"))
        if self._race is not None:
            self._race.register(ctx.id, ctx.label)
        if self._guard is not None:
            self._guard.start()
        self.backend.start_program(ctx)
        if self._obs is not None:
            self._obs.program_begin(ctx)
        try:
            self.call_function(fn.name, [], ctx, NO_SPAN)
        except TetraRuntimeError as exc:
            if exc.source is None and self.source is not None:
                exc.attach_source(self.source)
            raise
        finally:
            try:
                self.backend.finish_program(ctx)
            finally:
                if self._obs is not None:
                    self._obs.program_end_mark(ctx)

    def call_function(self, name: str, args: list[Value], ctx: ThreadContext,
                      span: Span) -> Value | None:
        """Call a user-defined function with already-evaluated arguments."""
        if self._compiled is not None:
            invoke = self._compiled.functions.get(name)
            if invoke is None:
                raise TetraInternalError(f"call to unknown function '{name}'")
            return invoke(args, ctx, span)
        fn = self._functions.get(name)
        if fn is None:
            raise TetraInternalError(f"call to unknown function '{name}'")
        return self._call_def(fn, self.symbols.functions[name], args, ctx, span)

    def call_method(self, obj: TetraObject, method: str, args: list[Value],
                    ctx: ThreadContext, span: Span) -> Value | None:
        """Invoke a class method with ``obj`` bound as the implicit self."""
        if self._compiled is not None:
            invoke = self._compiled.methods.get((obj.class_name, method))
            if invoke is None:
                raise TetraInternalError(
                    f"call to unknown method '{obj.class_name}.{method}'"
                )
            return invoke([obj, *args], ctx, span)
        fn = self._methods.get((obj.class_name, method))
        if fn is None:
            raise TetraInternalError(
                f"call to unknown method '{obj.class_name}.{method}'"
            )
        sig = self.symbols.classes[obj.class_name].methods[method]
        return self._call_def(fn, sig, [obj, *args], ctx, span)

    def _call_def(self, fn, sig, args: list[Value], ctx: ThreadContext,
                  span: Span) -> Value | None:
        name = sig.name
        if len(ctx.call_stack) >= self.config.recursion_limit:
            exc = TetraLimitError(
                f"recursion depth exceeded {self.config.recursion_limit} "
                f"calls (last call: '{name}') — raise it with "
                "RuntimeConfig(recursion_limit=...) if the recursion is "
                "intentional",
                span,
                limit="recursion",
            )
            if self.source is not None:
                exc.attach_source(self.source)
            raise exc
        frame = Frame(name, depth=len(ctx.call_stack))
        env = Environment(frame)
        for pname, ptype, value in zip(sig.param_names, sig.param_types, args):
            frame.vars[pname] = coerce_to(value, ptype)
        record = CallRecord(name, env, call_span=span)
        saved_env = ctx.env
        ctx.env = env
        ctx.call_stack.append(record)
        if self._acc:
            self.backend.charge(ctx, self.cost_model.call_overhead)
        obs = self._obs
        t0 = obs.clock() if obs is not None and obs.trace else None
        try:
            self.exec_block(fn.body, ctx)
        except ReturnSignal as signal:
            if sig.return_type is not VOID:
                return coerce_to(signal.value, sig.return_type)
            return None
        finally:
            if t0 is not None:
                obs.call_span(ctx.id, name, t0, obs.clock())
            ctx.call_stack.pop()
            ctx.env = saved_env
        return None

    def stop(self) -> None:
        """Ask every thread to abandon the program at its next statement."""
        self._stopped = True
        token = self.config.cancel
        if token is not None:
            # Route through the CancelToken too, so threads parked on locks
            # (which never reach the _stopped check) unwind as well.
            token.cancel("the program was stopped")

    @property
    def races(self):
        """Race reports gathered so far (empty unless ``detect_races``)."""
        return self._race.reports if self._race is not None else []

    # ------------------------------------------------------------------
    # Race-detection events
    # ------------------------------------------------------------------
    def _race_access(self, ctx: ThreadContext, key, display: str, span: Span,
                     is_write: bool, pin) -> None:
        """Feed one shared access to the detector (and the sim trace)."""
        if is_write:
            self._race.write(ctx.id, key, display, span, pin)
        else:
            self._race.read(ctx.id, key, display, span, pin)
        self.backend.record_access(ctx, display, is_write, span)

    def _race_name_access(self, ctx: ThreadContext, name: str, span: Span,
                          is_write: bool) -> None:
        env = ctx.env
        if env.is_shared(name):
            self._race_access(ctx, (id(env.frame), name), name, span,
                              is_write, env.frame)

    def _race_element_access(self, ctx: ThreadContext, base, index,
                             base_expr: Expr, span: Span,
                             is_write: bool) -> None:
        if isinstance(base, (TetraArray, TetraDict)):
            from ..tetra_ast import unparse

            display = f"{unparse(base_expr)}[{index!r}]"
            self._race_access(ctx, (id(base), index), display, span,
                              is_write, base)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_block(self, block: Block, ctx: ThreadContext) -> None:
        for stmt in block.statements:
            self.exec_stmt(stmt, ctx)

    def exec_stmt(self, stmt: Stmt, ctx: ThreadContext) -> None:
        if self._stopped:
            raise TetraThreadError("the program was stopped")
        limit = self.config.step_limit
        if limit and next(self._steps) > limit:
            exc = TetraLimitError(
                f"the program exceeded its budget of {limit} statements — "
                "raise it with --step-limit or RuntimeConfig(step_limit=...)",
                stmt.span,
                limit="steps",
            )
            if self.source is not None:
                exc.attach_source(self.source)
            raise exc
        guard = self._guard
        if guard is not None:
            guard.check(ctx, stmt.span)
        if ctx.call_stack:
            ctx.call_stack[-1].current_span = stmt.span
        self.backend.checkpoint(ctx, stmt)
        if self._obs is not None and self._obs.profile:
            self._obs.line_hit(ctx.id, stmt.span.line)
        if self._acc:
            self.backend.charge(ctx, self.cost_model.statement)
        self._stmt_dispatch[type(stmt)](stmt, ctx)

    def _exec_expr_stmt(self, stmt: ExprStmt, ctx: ThreadContext) -> None:
        self.eval_expr(stmt.expr, ctx)

    def _exec_assign(self, stmt: Assign, ctx: ThreadContext) -> None:
        value = self.eval_expr(stmt.value, ctx)
        self._store(stmt.target, value, ctx)

    def _exec_aug_assign(self, stmt: AugAssign, ctx: ThreadContext) -> None:
        current = self.eval_expr(stmt.target, ctx)
        operand = self.eval_expr(stmt.value, ctx)
        result = self._apply_binop(stmt.op, current, operand, stmt.span)
        self._store(stmt.target, result, ctx)

    def _store(self, target: Expr, value: Value, ctx: ThreadContext) -> None:
        if isinstance(target, Name):
            if self._acc:
                self.backend.charge(ctx, self.cost_model.name_store)
            if self._race is not None:
                self._race_name_access(ctx, target.id, target.span, True)
            target_ty = target.ty
            if target_ty is None:
                raise TetraInternalError(
                    f"assignment target '{target.id}' was not annotated by "
                    "the checker — was this program type-checked?",
                    target.span,
                )
            ctx.env.set(target.id, coerce_to(value, target_ty))
            return
        if isinstance(target, Attribute):
            base = self.eval_expr(target.base, ctx)
            if self._acc:
                self.backend.charge(ctx, self.cost_model.index_store)
            if not isinstance(base, TetraObject):
                raise self._err(
                    TetraRuntimeError, "only class instances have fields",
                    target.span,
                )
            if self._race is not None:
                self._race_access(
                    ctx, (id(base), target.attr),
                    f"{base.class_name}.{target.attr}", target.span, True,
                    base,
                )
            base.set(target.attr, value, target.span)
            return
        if isinstance(target, Index):
            base = self.eval_expr(target.base, ctx)
            index = self.eval_expr(target.index, ctx)
            if self._acc:
                self.backend.charge(ctx, self.cost_model.index_store)
            if self._race is not None:
                self._race_element_access(ctx, base, index, target.base,
                                          target.span, True)
            if isinstance(base, TetraDict):
                base.set(index, coerce_to(value, base.value_type))
                return
            if not isinstance(base, TetraArray):
                raise self._err(
                    TetraRuntimeError,
                    "only array and dict elements can be assigned through "
                    "an index (strings are immutable)",
                    target.span,
                )
            base.set(index, coerce_to(value, base.element_type), target.span)
            return
        raise TetraInternalError(f"bad assignment target {type(target).__name__}")

    def _exec_unpack(self, stmt: Unpack, ctx: ThreadContext) -> None:
        value = self.eval_expr(stmt.value, ctx)
        if not isinstance(value, TetraTuple):
            raise TetraInternalError("unpacking a non-tuple at runtime")
        for target, item in zip(stmt.targets, value.items):
            self._store(target, item, ctx)

    def _exec_declare(self, stmt: Declare, ctx: ThreadContext) -> None:
        value = self.eval_expr(stmt.value, ctx)
        var_type = from_type_expr(stmt.declared_type)
        ctx.env.set(stmt.name, coerce_to(value, var_type))

    def _exec_try(self, stmt: TryStmt, ctx: ThreadContext) -> None:
        try:
            self.exec_block(stmt.body, ctx)
        except TetraRuntimeError as exc:
            if not is_catchable(exc):
                raise
            ctx.env.set(stmt.error_name, exc.message)
            self.exec_block(stmt.handler, ctx)

    def _exec_if(self, stmt: If, ctx: ThreadContext) -> None:
        if self._acc:
            self.backend.charge(ctx, self.cost_model.branch)
        if self.eval_expr(stmt.cond, ctx):
            self.exec_block(stmt.then, ctx)
            return
        for clause in stmt.elifs:
            if self.eval_expr(clause.cond, ctx):
                self.exec_block(clause.body, ctx)
                return
        if stmt.orelse is not None:
            self.exec_block(stmt.orelse, ctx)

    def _exec_while(self, stmt: While, ctx: ThreadContext) -> None:
        cm = self.cost_model
        while True:
            if self._acc:
                self.backend.charge(ctx, cm.loop_iteration)
            if not self.eval_expr(stmt.cond, ctx):
                break
            try:
                self.exec_block(stmt.body, ctx)
            except BreakSignal:
                break
            except ContinueSignal:
                continue

    def _iterate(self, iterable_value: Value, span: Span) -> list[Value]:
        """Materialize the items a for-loop visits."""
        if isinstance(iterable_value, TetraArray):
            return list(iterable_value.items)
        if isinstance(iterable_value, str):
            return list(iterable_value)
        if isinstance(iterable_value, TetraDict):
            return iterable_value.sorted_keys()
        raise self._err(
            TetraRuntimeError,
            "for loops need an array, a string, or a dict", span
        )

    def _exec_for(self, stmt: For, ctx: ThreadContext) -> None:
        items = self._iterate(self.eval_expr(stmt.iterable, ctx), stmt.span)
        cm = self.cost_model
        for item in items:
            if self._acc:
                self.backend.charge(ctx, cm.loop_iteration)
            ctx.env.set(stmt.var, item)
            try:
                self.exec_block(stmt.body, ctx)
            except BreakSignal:
                break
            except ContinueSignal:
                continue

    def _unique_label(self, base: str) -> str:
        """Issue a run-unique thread label: the first use of a base keeps
        it verbatim, re-spawns from the same site get a " #N" suffix."""
        with self._labels_mu:
            n = self._label_counts.get(base, 0)
            self._label_counts[base] = n + 1
            label = base if n == 0 else f"{base} #{n + 1}"
            if label in self._labels_issued:
                raise TetraInternalError(
                    f"duplicate thread label {label!r} — labels must be "
                    "unique for schedule recording to be replayable"
                )
            self._labels_issued.add(label)
        return label

    # -- parallel constructs ------------------------------------------------
    def _exec_parallel_block(self, stmt: ParallelBlock, ctx: ThreadContext) -> None:
        self._spawn_statements(stmt, ctx, join=True, kind="parallel")

    def _exec_background_block(self, stmt: BackgroundBlock,
                               ctx: ThreadContext) -> None:
        self._spawn_statements(stmt, ctx, join=False, kind="background")

    def _spawn_statements(self, stmt, ctx: ThreadContext, join: bool,
                          kind: str) -> None:
        """One thread per child statement, sharing the spawner's environment."""
        jobs = []
        for i, child_stmt in enumerate(stmt.body.statements):
            label = self._unique_label(
                f"{kind} thread {i + 1} (line {child_stmt.span.line})"
            )
            child_ctx = ctx.spawn_child(label, ctx.env)

            def thunk(s=child_stmt, c=child_ctx):
                self.exec_stmt(s, c)

            jobs.append((child_ctx, thunk))
        self._spawn_with_race_edges(ctx, jobs, join, stmt.span, kind)

    def _spawn_with_race_edges(self, ctx: ThreadContext, jobs, join: bool,
                               span: Span, kind: str = "parallel") -> None:
        """Run a spawn group, bracketing it with fork/join happens-before
        edges when race detection is on and with observability spans when
        tracing/metrics is on.  Both the walker and the fast path spawn
        through here, so instrumentation lives in exactly one place."""
        plan = self.config.fault_plan
        if plan is not None and jobs:
            # Chaos: optionally replace child thunks with injected crashes
            # (drawn in the spawner, so deterministic on virtual backends).
            jobs = plan.wrap_jobs(jobs)
        det = self._race
        if det is not None and jobs:
            det.mark_shared(ctx.env.frame)
            for child_ctx, _thunk in jobs:
                det.fork(ctx.id, child_ctx.id, child_ctx.label)
        obs = self._obs
        group_start = 0.0
        if obs is not None and jobs:
            # Register (and take thread-span starts) in the spawner, which
            # on the coop backend holds the scheduler turn — that keeps the
            # exported thread ids and timestamps deterministic.
            for child_ctx, _thunk in jobs:
                obs.register_thread(child_ctx)
            jobs = [(c, obs.wrap_job(c, t)) for c, t in jobs]
            group_start = obs.clock()
        try:
            self.backend.spawn_group(ctx, jobs, join=join, span=span)
        finally:
            if det is not None and join:
                for child_ctx, _thunk in jobs:
                    det.join(ctx.id, child_ctx.id)
            if obs is not None and jobs:
                obs.group_span(ctx.id, kind, group_start, obs.clock(),
                               [c.id for c, _t in jobs], span.line, join)

    def _exec_parallel_for(self, stmt: ParallelFor, ctx: ThreadContext) -> None:
        items = self._iterate(self.eval_expr(stmt.iterable, ctx), stmt.span)
        if not items:
            return
        native = self._native
        if native is not None and native.try_parallel_for(self, stmt, items,
                                                          ctx):
            return
        offload = self.backend.try_parallel_for
        if offload is not None and offload(self, stmt, items, ctx):
            return
        workers = self.backend.parallel_for_workers(len(items))
        rec = self.config.schedule_recorder
        if rec is not None:
            # Worker counts are backend-dependent (thread: cpu_count, coop:
            # 4, ...); recording the resolved count lets the replay size
            # its pool identically, keeping worker labels aligned.
            rec.pfor(stmt.span.line, len(items), workers)
        chunks = self._partition(items, workers)
        cm = self.cost_model
        jobs = []
        for w, chunk in enumerate(chunks):
            if not chunk:
                continue
            label = self._unique_label(
                f"worker {w + 1} (parallel for, line {stmt.span.line})"
            )
            # The induction variable lives in the worker's *private* table
            # (paper §IV); everything else stays shared.
            worker_env = ctx.env.child_with_private({stmt.var: chunk[0]})
            child_ctx = ctx.spawn_child(label, worker_env)

            def thunk(chunk=chunk, env=worker_env, c=child_ctx):
                for item in chunk:
                    if self._acc:
                        self.backend.charge(c, cm.loop_iteration)
                    env.private[stmt.var] = item
                    self.exec_block(stmt.body, c)

            jobs.append((child_ctx, thunk))
            if self._obs is not None:
                self._obs.register_chunk(child_ctx.id, stmt.span.line,
                                         len(chunk))
        self._spawn_with_race_edges(ctx, jobs, True, stmt.span, "parallel for")

    def _partition(self, items: list[Value], workers: int) -> list[list[Value]]:
        """Split the iteration space per the configured chunking policy."""
        if self.config.chunking == "cyclic":
            return [items[w::workers] for w in range(workers)]
        if self.config.chunking == "dynamic":
            # In-process backends have no shared work queue, so "dynamic"
            # becomes a deterministic dealt-guided partition: guided
            # (decreasing) slice sizes dealt round-robin, so each worker
            # holds a mix of large and small slices — the static analogue
            # of guided self-scheduling, good for skewed iteration costs.
            from ..runtime.backend import guided_chunk_sizes

            sizes = guided_chunk_sizes(len(items), workers)
            chunks = [[] for _ in range(workers)]
            start = 0
            for i, size in enumerate(sizes):
                chunks[i % workers].extend(items[start:start + size])
                start += size
            return chunks
        # Block chunking: contiguous ranges, sizes differing by at most one.
        n = len(items)
        base, extra = divmod(n, workers)
        chunks: list[list[Value]] = []
        start = 0
        for w in range(workers):
            size = base + (1 if w < extra else 0)
            chunks.append(items[start:start + size])
            start += size
        return chunks

    def _exec_lock(self, stmt: LockStmt, ctx: ThreadContext) -> None:
        det = self._race
        if det is None:
            self.backend.lock(
                ctx, stmt.name, lambda: self.exec_block(stmt.body, ctx),
                stmt.span,
            )
            return

        def body() -> None:
            # The detector's lockset tracks the dynamic extent of the body,
            # which the backend runs strictly inside the real lock hold.
            det.acquire(ctx.id, stmt.name)
            try:
                self.exec_block(stmt.body, ctx)
            finally:
                det.release(ctx.id, stmt.name)

        self.backend.lock(ctx, stmt.name, body, stmt.span)

    # -- simple statements ---------------------------------------------------
    def _exec_return(self, stmt: Return, ctx: ThreadContext) -> None:
        value = self.eval_expr(stmt.value, ctx) if stmt.value is not None else None
        raise ReturnSignal(value)

    def _exec_break(self, stmt: Break, ctx: ThreadContext) -> None:
        raise BreakSignal()

    def _exec_continue(self, stmt: Continue, ctx: ThreadContext) -> None:
        raise ContinueSignal()

    def _exec_pass(self, stmt: Pass, ctx: ThreadContext) -> None:
        pass

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval_expr(self, expr: Expr, ctx: ThreadContext) -> Value:
        return self._expr_dispatch[type(expr)](expr, ctx)

    def _eval_literal(self, expr, ctx: ThreadContext) -> Value:
        if self._acc:
            self.backend.charge(ctx, self.cost_model.literal)
        return expr.value

    def _eval_name(self, expr: Name, ctx: ThreadContext) -> Value:
        if self._acc:
            self.backend.charge(ctx, self.cost_model.name_load)
        if self._race is not None:
            self._race_name_access(ctx, expr.id, expr.span, False)
        return ctx.env.get(expr.id)

    def _eval_array_literal(self, expr: ArrayLiteral, ctx: ThreadContext) -> Value:
        values = [self.eval_expr(e, ctx) for e in expr.elements]
        if self._acc:
            self.backend.charge(
                ctx, self.cost_model.array_element * max(1, len(values))
            )
        ty = expr.ty
        if not isinstance(ty, ArrayType):
            raise TetraInternalError(
                "array literal was not typed by the checker — was this "
                "program type-checked?",
                expr.span,
            )
        result = make_array(values, ty.element)
        heap = self._heap
        if heap is not None:
            heap.track(result, len(values), expr.span)
        return result

    def _eval_tuple_literal(self, expr: TupleLiteral, ctx: ThreadContext) -> Value:
        values = [self.eval_expr(e, ctx) for e in expr.elements]
        ty = expr.ty
        if not isinstance(ty, TupleType):
            raise TetraInternalError(
                "tuple literal was not typed by the checker — was this "
                "program type-checked?",
                expr.span,
            )
        values = [coerce_to(v, t) for v, t in zip(values, ty.elements)]
        if self._acc:
            self.backend.charge(
                ctx, self.cost_model.array_element * len(values)
            )
        result = TetraTuple(values)
        heap = self._heap
        if heap is not None:
            heap.track(result, len(values), expr.span)
        return result

    def _eval_dict_literal(self, expr: DictLiteral, ctx: ThreadContext) -> Value:
        ty = expr.ty
        if not isinstance(ty, DictType):
            raise TetraInternalError(
                "dict literal was not typed by the checker — was this "
                "program type-checked?",
                expr.span,
            )
        items = {}
        for key_expr, value_expr in expr.entries:
            key = self.eval_expr(key_expr, ctx)
            value = self.eval_expr(value_expr, ctx)
            items[key] = coerce_to(value, ty.value)
        if self._acc:
            self.backend.charge(
                ctx, self.cost_model.array_element * max(1, len(items))
            )
        result = TetraDict(items, ty.key, ty.value)
        heap = self._heap
        if heap is not None:
            heap.track(result, len(items), expr.span)
        return result

    def _eval_range_literal(self, expr: RangeLiteral, ctx: ThreadContext) -> Value:
        start = self.eval_expr(expr.start, ctx)
        stop = self.eval_expr(expr.stop, ctx)
        items = list(range(start, stop + 1))  # inclusive, per Figure II
        if self._acc:
            self.backend.charge(
                ctx, self.cost_model.array_element * max(1, len(items))
            )
        from ..types import INT

        result = TetraArray(items, INT)
        heap = self._heap
        if heap is not None:
            heap.track(result, len(items), expr.span)
        return result

    def _eval_index(self, expr: Index, ctx: ThreadContext) -> Value:
        base = self.eval_expr(expr.base, ctx)
        index = self.eval_expr(expr.index, ctx)
        if self._acc:
            self.backend.charge(ctx, self.cost_model.index_load)
        if self._race is not None:
            self._race_element_access(ctx, base, index, expr.base,
                                      expr.span, False)
        if isinstance(base, TetraArray):
            return base.get(index, expr.span)
        if isinstance(base, TetraDict):
            return base.get(index, expr.span)
        if isinstance(base, TetraTuple):
            return base.get(index, expr.span)
        if isinstance(base, str):
            if not 0 <= index < len(base):
                raise self._err(
                    TetraRuntimeError,
                    f"index {index} is out of range for a string of length "
                    f"{len(base)}",
                    expr.span,
                )
            return base[index]
        raise self._err(TetraRuntimeError, "this value cannot be indexed", expr.span)

    def _eval_call(self, expr: Call, ctx: ThreadContext) -> Value:
        args = [self.eval_expr(a, ctx) for a in expr.args]
        if expr.func in self._functions:
            return self.call_function(expr.func, args, ctx, expr.span)
        if expr.func in self._classes:
            return self._construct(expr.func, args, ctx)
        builtin = BUILTINS.get(expr.func)
        if builtin is None:
            raise TetraInternalError(f"unknown function '{expr.func}' at runtime")
        if self._acc:
            self.backend.charge(ctx, self.cost_model.builtin_overhead)
        if expr.func == "clock":
            # clock() reports the *backend's* clock: host-monotonic seconds
            # under thread/sequential, virtual units under sim/coop.  The
            # builtin table cannot see the backend, so dispatch here.
            return self.backend.now()
        try:
            result = builtin.invoke(args, self.io, expr.span)
        except TetraRuntimeError as exc:
            if exc.source is None and self.source is not None:
                exc.attach_source(self.source)
            raise
        heap = self._heap
        if heap is not None:
            heap.track_value(result, expr.span)
        return result

    def _construct(self, class_name: str, args: list[Value],
                   ctx: ThreadContext) -> TetraObject:
        info = self.symbols.classes[class_name]
        if self._acc:
            self.backend.charge(
                ctx, self.cost_model.call_overhead
                + self.cost_model.array_element * max(1, len(args))
            )
        field_types = dict(zip(info.field_names, info.field_types))
        fields = {
            name: coerce_to(value, field_types[name])
            for name, value in zip(info.field_names, args)
        }
        result = TetraObject(class_name, fields, field_types,
                             list(info.field_names))
        heap = self._heap
        if heap is not None:
            heap.track(result, len(fields), NO_SPAN)
        return result

    def _eval_attribute(self, expr: Attribute, ctx: ThreadContext) -> Value:
        base = self.eval_expr(expr.base, ctx)
        if self._acc:
            self.backend.charge(ctx, self.cost_model.index_load)
        if not isinstance(base, TetraObject):
            raise self._err(
                TetraRuntimeError, "only class instances have fields",
                expr.span,
            )
        if self._race is not None:
            self._race_access(ctx, (id(base), expr.attr),
                              f"{base.class_name}.{expr.attr}", expr.span,
                              False, base)
        return base.get(expr.attr, expr.span)

    def _eval_method_call(self, expr: MethodCall, ctx: ThreadContext) -> Value:
        base = self.eval_expr(expr.base, ctx)
        args = [self.eval_expr(a, ctx) for a in expr.args]
        if not isinstance(base, TetraObject):
            raise self._err(
                TetraRuntimeError, "only class instances have methods",
                expr.span,
            )
        return self.call_method(base, expr.method, args, ctx, expr.span)

    def _eval_unary(self, expr: Unary, ctx: ThreadContext) -> Value:
        value = self.eval_expr(expr.operand, ctx)
        if self._acc:
            self.backend.charge(ctx, self.cost_model.unary)
        if expr.op is UnaryOp.NEG:
            return -value
        if expr.op is UnaryOp.POS:
            return value
        return not value

    def _eval_binop(self, expr: BinOp, ctx: ThreadContext) -> Value:
        op = expr.op
        # Short-circuit logicals evaluate the right side lazily.
        if op is BinaryOp.AND:
            left = self.eval_expr(expr.left, ctx)
            if self._acc:
                self.backend.charge(ctx, self.cost_model.binop)
            return bool(left) and bool(self.eval_expr(expr.right, ctx))
        if op is BinaryOp.OR:
            left = self.eval_expr(expr.left, ctx)
            if self._acc:
                self.backend.charge(ctx, self.cost_model.binop)
            return bool(left) or bool(self.eval_expr(expr.right, ctx))
        left = self.eval_expr(expr.left, ctx)
        right = self.eval_expr(expr.right, ctx)
        if self._acc:
            self.backend.charge(ctx, self.cost_model.binop)
        return self._apply_binop(op, left, right, expr.span)

    def _apply_binop(self, op: BinaryOp, left: Value, right: Value,
                     span: Span) -> Value:
        if op is BinaryOp.ADD:
            return left + right
        if op is BinaryOp.SUB:
            return left - right
        if op is BinaryOp.MUL:
            return left * right
        if op is BinaryOp.DIV:
            if isinstance(left, int) and isinstance(right, int):
                return int_div(left, right, span)
            return real_div(float(left), float(right), span)
        if op is BinaryOp.MOD:
            if isinstance(left, int) and isinstance(right, int):
                return int_mod(left, right, span)
            return real_mod(float(left), float(right), span)
        if op is BinaryOp.POW:
            return tetra_pow(left, right, span)
        if op is BinaryOp.EQ:
            return left == right
        if op is BinaryOp.NE:
            return left != right
        if op is BinaryOp.LT:
            return left < right
        if op is BinaryOp.LE:
            return left <= right
        if op is BinaryOp.GT:
            return left > right
        if op is BinaryOp.GE:
            return left >= right
        raise TetraInternalError(f"unhandled operator {op}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _err(self, cls, message: str, span: Span):
        exc = cls(message, span)
        if self.source is not None:
            exc.attach_source(self.source)
        return exc
