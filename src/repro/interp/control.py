"""Non-local control flow signals used inside the interpreter.

``return`` / ``break`` / ``continue`` are implemented as exceptions that
unwind the recursive AST walk — the standard technique for tree-walking
interpreters (and what the paper's C++ interpreter does with its recursive
``interpret`` calls).  They are internal: the type checker guarantees they
can never escape a function body or loop, and they deliberately do *not*
derive from :class:`~repro.errors.TetraError` so error handling cannot
swallow them by accident.
"""

from __future__ import annotations

from ..runtime.values import Value


class ControlSignal(Exception):
    """Base class for interpreter control flow (never user-visible)."""


class ReturnSignal(ControlSignal):
    def __init__(self, value: Value | None):
        super().__init__()
        self.value = value


class BreakSignal(ControlSignal):
    pass


class ContinueSignal(ControlSignal):
    pass
