"""repro — Tetra: An Educational Parallel Programming System.

A complete Python reimplementation of the language, runtime, tooling, and
evaluation of "Introducing Tetra: An Educational Parallel Programming
System" (IPPS 2015).  See README.md for a tour and DESIGN.md for the system
inventory.

Quick start::

    from repro import run_source
    print(run_source('''
    def main():
        parallel:
            print("left")
            print("right")
    ''').output)
"""

from .api import (
    BACKEND_FACTORIES,
    RunResult,
    cached_program,
    check_source,
    clear_program_cache,
    compile_source,
    program_cache_info,
    run_file,
    run_source,
)
from .errors import (
    TetraCancelledError,
    TetraDeadlockError,
    TetraError,
    TetraLimitError,
    TetraRuntimeError,
    TetraSyntaxError,
    TetraTypeError,
)
from .resilience import CancelToken, FaultPlan, install_sigint
from .parser import parse_source
from .source import SourceFile
from .interp import Interpreter
from .runtime import (
    CoopBackend,
    CostModel,
    RuntimeConfig,
    SequentialBackend,
    SimBackend,
    ThreadBackend,
)

__version__ = "1.0.0"

__all__ = [
    "BACKEND_FACTORIES", "RunResult", "cached_program", "check_source",
    "clear_program_cache", "compile_source", "program_cache_info",
    "run_file", "run_source",
    "TetraCancelledError", "TetraDeadlockError", "TetraError",
    "TetraLimitError", "TetraRuntimeError",
    "TetraSyntaxError", "TetraTypeError",
    "CancelToken", "FaultPlan", "install_sigint",
    "parse_source", "SourceFile", "Interpreter",
    "CoopBackend", "CostModel", "RuntimeConfig", "SequentialBackend",
    "SimBackend", "ThreadBackend",
    "__version__",
]
