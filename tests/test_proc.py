"""The process-parallel backend: offload eligibility, merge, resilience.

The ``proc`` backend ships eligible ``parallel for`` bodies to worker
processes and merges results back under Tetra's variable rules.  These
tests pin down the whole contract: which loops offload (the paper's
reduction idioms, disjoint container edits) and which fall back to threads
with a recorded reason; that merged results are byte-identical to the
sequential walker across all three chunking policies and both execution
paths; that conflicting or overlapping cross-process writes raise the
teaching diagnostic instead of racing; and that worker failures, time
limits, and cancellation terminate the pool promptly with the same errors
the in-process backends raise.
"""

import os
import threading
import time

import pytest

from repro import run_source
from repro.errors import (
    TetraCancelledError,
    TetraLimitError,
    TetraRuntimeError,
    TetraThreadError,
    TetraZeroDivisionError,
)
from repro.resilience import CancelToken, run_stress
from repro.runtime import ProcBackend, RuntimeConfig, guided_chunk_sizes
from repro.runtime.parplan import plan_parallel_for
from repro.tetra_ast import ParallelFor, walk


def cfg(**kw):
    kw.setdefault("num_workers", 4)
    return RuntimeConfig(**kw)


def run_proc(text, **kw):
    config = kw.pop("config", None) or cfg()
    return run_source(text, backend="proc", config=config, **kw)


PRIMES = """
def is_prime(n int) bool:
    if n < 2:
        return false
    if n % 2 == 0:
        return n == 2
    d = 3
    while d * d <= n:
        if n % d == 0:
            return false
        d += 2
    return true

def main():
    count = 0
    parallel for n in [2 ... 300]:
        if is_prime(n):
            lock count:
                count += 1
    print(count)
"""

GUARDED_MAX = """
def main():
    data = [3, 41, 17, 98, 2, 55, 70, 11, 96, 34]
    best = -1
    parallel for x in data:
        lock best:
            if x > best:
                best = x
    print(best)
"""

ELEMENT_STORES = """
def main():
    squares = array(16, 0)
    parallel for i in [0 ... 15]:
        squares[i] = i * i
    print(squares[3])
    print(squares[15])
"""

DICT_SHARDS = """
def main():
    counts = {"a": 0, "b": 0, "c": 0, "d": 0}
    parallel for w in ["a", "b", "c", "d"]:
        counts[w] = counts[w] + 1
    print(counts["a"] + counts["b"] + counts["c"] + counts["d"])
"""


class TestOffloadCorrectness:
    def test_primes_reduction_offloads_and_matches_sequential(self):
        seq = run_source(PRIMES, backend="sequential")
        proc = run_proc(PRIMES)
        assert proc.output == seq.output
        assert proc.backend.pool_workers == 4
        assert proc.backend.fallbacks == []

    def test_spelled_out_sum_matches_augmented(self):
        text = PRIMES.replace("count += 1", "count = count + 1")
        assert run_proc(text).output == \
            run_source(text, backend="sequential").output

    def test_guarded_max_reduction(self):
        proc = run_proc(GUARDED_MAX)
        assert proc.output == "98\n"
        assert proc.backend.fallbacks == []

    def test_element_stores_merge_disjoint_slots(self):
        proc = run_proc(ELEMENT_STORES)
        assert proc.output == "9\n225\n"
        assert proc.backend.fallbacks == []

    def test_dict_edits_merge(self):
        proc = run_proc(DICT_SHARDS)
        assert proc.output == "4\n"
        assert proc.backend.fallbacks == []

    @pytest.mark.parametrize("chunking", ["block", "cyclic", "dynamic"])
    @pytest.mark.parametrize("fast", [True, False])
    def test_all_chunkings_and_paths_agree(self, chunking, fast):
        seq = run_source(PRIMES, backend="sequential")
        proc = run_proc(PRIMES, fast=fast,
                        config=cfg(chunking=chunking))
        assert proc.output == seq.output

    def test_output_printed_in_iteration_order(self):
        text = """
def main():
    parallel for i in [0 ... 19]:
        print(i * 2)
"""
        seq = run_source(text, backend="sequential")
        proc = run_proc(text)
        assert proc.output == seq.output
        assert proc.backend.pool_workers == 4

    def test_induction_variable_stays_private(self):
        text = """
def main():
    total = 0
    parallel for i in [1 ... 40]:
        i = i * 2
        lock total:
            total += i
    print(total)
"""
        seq = run_source(text, backend="sequential")
        proc = run_proc(text)
        assert proc.output == seq.output
        assert proc.backend.fallbacks == []


class TestFallbacks:
    def fallback_reasons(self, text):
        result = run_proc(text)
        return result, [reason for _line, reason in result.backend.fallbacks]

    def test_bare_shared_scalar_write_falls_back(self):
        result, reasons = self.fallback_reasons("""
def main():
    last = 0
    parallel for i in [0 ... 9]:
        last = i
    print(last)
""")
        assert result.backend.pool_workers == 0
        assert any("shared variable 'last'" in r for r in reasons)

    def test_non_reduction_lock_body_falls_back(self):
        result, reasons = self.fallback_reasons("""
class Counter:
    value int
    def bump():
        self.value = self.value + 1

def main():
    c = Counter(0)
    parallel for i in [0 ... 9]:
        lock c:
            c.bump()
    print(c.value)
""")
        assert result.output == "10\n"
        assert result.backend.pool_workers == 0
        assert any("not a reduction" in r for r in reasons)

    def test_nested_parallel_falls_back(self):
        result, reasons = self.fallback_reasons("""
def main():
    parallel for i in [0 ... 3]:
        parallel:
            pass
""")
        assert any("nested parallel" in r for r in reasons)

    def test_fallback_still_runs_with_thread_semantics(self):
        # The fallback path IS the thread backend: a racy non-reduction
        # program still completes (albeit with thread interleavings).
        text = """
def main():
    total = 0
    parallel for i in [1 ... 20]:
        lock t:
            total += i
            total -= 0
    print(total)
"""
        result = run_proc(text)
        assert result.output == "210\n"
        assert result.backend.pool_workers == 0

    def test_small_loops_stay_in_process(self):
        text = """
def main():
    count = 0
    parallel for i in [1 ... 1]:
        lock count:
            count += 1
    print(count)
"""
        result = run_proc(text)
        assert result.output == "1\n"
        assert result.backend.pool_workers == 0

    def test_race_detection_pins_to_threads(self):
        result = run_source(PRIMES, backend="proc", detect_races=True,
                            config=cfg(detect_races=True))
        assert result.output.strip() == "62"
        assert result.backend.pool_workers == 0


class TestMergeDiagnostics:
    CYCLIC_ROWS = """
def main():
    rows = [[0, 1], [0, 2], [0, 3], [0, 4], [0, 5], [0, 6]]
    parallel for row in rows:
        row[0] = row[1] * 10
    total = 0
    for i in [0 ... 5]:
        total = total + rows[i][0]
    print(total)
"""

    def test_cyclic_chunking_labels_items_by_original_index(self):
        # Regression: under cyclic dealing chunk w holds items w, w+jobs,
        # w+2*jobs, … — labeling them from a contiguous start made edits
        # to *different* rows collide (chunk 0's second item and chunk 1's
        # first were both "<item 1>") and raised a spurious conflict.
        seq = run_source(self.CYCLIC_ROWS, backend="sequential")
        proc = run_proc(self.CYCLIC_ROWS, config=cfg(chunking="cyclic"))
        assert proc.output == seq.output == "210\n"
        assert proc.backend.fallbacks == []
        assert proc.backend.pool_workers == 4

    def test_aliased_item_writes_conflict_by_identity(self):
        # triple holds ONE array at three positions.  With two workers the
        # block chunks are [p, p] and [p]: the first worker's increments
        # stack to 2, the second's copy ends at 1 — disagreeing writes to
        # the same underlying object must raise, not last-write-win
        # (distinct "<item N>" labels used to hide the collision).
        with pytest.raises(TetraRuntimeError) as err:
            run_proc("""
def main():
    p = [0]
    triple = [p, p, p]
    parallel for q in triple:
        q[0] = q[0] + 1
    print(p[0])
""", config=RuntimeConfig(num_workers=2))
        assert "conflicting updates" in str(err.value)

    def test_enclosing_induction_container_falls_back(self):
        # The outer loop is thread-bound (nested parallel construct), so
        # the inner loop sees 'row' as a *private* binding holding a
        # mutable row of the shared grid.  Offloading would mutate a
        # pickled copy and silently drop the writes; the backend must keep
        # thread semantics instead.
        text = """
def main():
    grid = [[0, 0, 0], [0, 0, 0]]
    parallel for row in grid:
        parallel for j in [0 ... 2]:
            row[j] = 5
    print(grid[0][0] + grid[1][2])
"""
        seq = run_source(text, backend="sequential")
        result = run_proc(text)
        assert result.output == seq.output == "10\n"
        reasons = [r for _line, r in result.backend.fallbacks]
        assert any("'row'" in r and "induction variable" in r
                   for r in reasons)
        assert result.backend.pool_workers == 0

    def test_conflicting_element_writes_raise(self):
        with pytest.raises(TetraRuntimeError) as err:
            run_proc("""
def main():
    a = array(3, 0)
    parallel for i in [0 ... 9]:
        a[0] = i
    print(a[0])
""")
        message = str(err.value)
        assert "conflicting updates" in message
        assert "a[0]" in message
        assert "lock" in message

    def test_disjoint_writes_do_not_raise(self):
        result = run_proc(ELEMENT_STORES)
        assert "conflicting" not in result.output


def _no_span():
    from repro.source import NO_SPAN

    return NO_SPAN


class _FakeProc:
    def __init__(self, alive):
        self._alive = alive

    def is_alive(self):
        return self._alive


class _FakePool:
    """Just enough of _WorkerPool for ProcBackend._collect: a result
    queue, per-process liveness, and a shutdown hook."""

    def __init__(self, alive):
        import queue

        self.result_q = queue.Queue()
        self.procs = [_FakeProc(a) for a in alive]
        self.killed = False

    def any_alive(self):
        return any(p.is_alive() for p in self.procs)

    def shutdown(self, kill=False):
        self.killed = True


class TestResilience:
    SPIN = """
def main():
    parallel for i in [0 ... 3]:
        n = 0
        while true:
            n = n + 1
"""

    def test_worker_error_propagates_with_span(self):
        with pytest.raises(TetraZeroDivisionError) as err:
            run_proc("""
def main():
    parallel for i in [0 ... 9]:
        x = 10 / (i - 5)
        print(x)
""")
        assert err.value.span.line == 4

    def test_time_limit_kills_the_pool_promptly(self):
        t0 = time.perf_counter()
        with pytest.raises(TetraLimitError) as err:
            run_proc(self.SPIN, config=cfg(time_limit=1.0))
        assert time.perf_counter() - t0 < 8.0
        assert err.value.limit == "time"

    def test_cancel_token_kills_the_pool_promptly(self):
        token = CancelToken()
        threading.Timer(0.5, lambda: token.cancel("stop the test")).start()
        t0 = time.perf_counter()
        with pytest.raises(TetraCancelledError) as err:
            run_proc(self.SPIN, config=cfg(cancel=token))
        assert time.perf_counter() - t0 < 8.0
        assert "stop the test" in str(err.value)

    def test_dead_chunk_owner_fails_fast_while_others_live(self):
        # One worker is killed (OOM/segfault) after claiming a task while
        # its siblings stay alive blocked on the task queue: the collect
        # loop must raise promptly instead of spinning forever waiting for
        # a chunk that can never report.
        pool = _FakePool(alive=[True, False])
        pool.result_q.put(("pick", 0, 1))  # worker 2 claimed task 0, died
        backend = ProcBackend(cfg())
        t0 = time.perf_counter()
        with pytest.raises(TetraThreadError) as err:
            backend._collect(pool, 1, _no_span())
        assert time.perf_counter() - t0 < 5.0
        assert "worker 2 died" in str(err.value)
        assert pool.killed

    def test_idle_worker_death_does_not_abort_live_progress(self):
        # A dead worker with no outstanding claim must not fail the run:
        # the survivors still drain the task queue.
        pool = _FakePool(alive=[True, False])

        def finish():
            import pickle
            pool.result_q.put(("pick", 0, 0))
            pool.result_q.put(("ok", 0, pickle.dumps(("done",))))

        threading.Timer(0.2, finish).start()
        backend = ProcBackend(cfg())
        results, failures = backend._collect(pool, 1, _no_span())
        assert results[0] == ("done",)
        assert failures == {}
        assert not pool.killed

    def test_pool_is_shut_down_after_the_run(self):
        result = run_proc(PRIMES)
        backend = result.backend
        assert backend.pool is None

    def test_stress_matrix_has_a_proc_column(self):
        report = run_stress(PRIMES, seeds=2, backends=("proc",),
                            time_limit=30.0)
        outcomes = [o for o in report.outcomes if o.backend == "proc"]
        assert len(outcomes) == 2
        assert all(o.status == "ok" for o in outcomes)
        assert all(o.output.strip() == "62" for o in outcomes)


class TestObservability:
    def test_worker_spans_land_in_metrics_and_trace(self):
        result = run_proc(PRIMES, trace=True, metrics=True)
        m = result.metrics
        assert m.backend == "proc"
        assert m.proc is not None
        assert m.proc["workers"] == 4
        workers = [lbl for lbl in m.thread_busy if "proc worker" in lbl]
        # Chunks come off a shared task queue, so on a loaded (or 1-core)
        # machine one worker can serve a sibling's chunk — every chunk is
        # accounted for, but not every pool process necessarily ran one.
        assert 1 <= len(workers) <= 4
        assert all(busy >= 0 for busy in m.thread_busy.values())
        [parfor] = m.parallel_for
        assert 1 <= parfor.workers <= 4
        assert sum(parfor.items) == 299
        trace = result.chrome_trace()
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        text = str(events)
        assert "proc worker" in text

    def test_fallback_reasons_surface_in_metrics(self):
        result = run_source("""
def main():
    last = 0
    parallel for i in [0 ... 9]:
        last = i
    print(last)
""", backend="proc", metrics=True, config=cfg(metrics=True))
        assert result.metrics.proc is not None
        fallbacks = result.metrics.proc["fallbacks"]
        assert len(fallbacks) == 1
        rendered = result.metrics.render()
        assert "ran on threads" in rendered


class TestChunking:
    def test_dynamic_validates_everywhere(self):
        RuntimeConfig(chunking="dynamic")
        with pytest.raises(ValueError):
            RuntimeConfig(chunking="stripes")

    def test_guided_sizes_cover_and_decrease(self):
        sizes = guided_chunk_sizes(1000, 4)
        assert sum(sizes) == 1000
        assert sizes == sorted(sizes, reverse=True)
        assert guided_chunk_sizes(3, 8) == [1, 1, 1]
        assert guided_chunk_sizes(0, 4) == []

    @pytest.mark.parametrize("backend", ["sequential", "thread", "sim"])
    def test_dynamic_chunking_in_process(self, backend):
        text = """
def main():
    total = 0
    parallel for i in [1 ... 100]:
        lock total:
            total += i
    print(total)
"""
        result = run_source(text, backend=backend,
                            config=RuntimeConfig(num_workers=4,
                                                 chunking="dynamic"))
        assert result.output == "5050\n"


class TestPlanAnalysis:
    def plan_of(self, text):
        from repro.api import compile_source

        program, _source = compile_source(text)
        [node] = [n for fn in program.functions for n in walk(fn.body)
                  if isinstance(n, ParallelFor)]
        return plan_parallel_for(node, program)

    def test_primes_plan_is_a_sum_reduction(self):
        plan = self.plan_of(PRIMES)
        assert plan.ok
        assert plan.reductions == {"count": "sum"}

    def test_guarded_max_plan(self):
        plan = self.plan_of(GUARDED_MAX)
        assert plan.ok
        assert plan.reductions == {"best": "max"}

    def test_sequential_for_variable_is_shared_hence_ineligible(self):
        plan = self.plan_of("""
def main():
    total = 0
    parallel for i in [1 ... 8]:
        for j in [1 ... 3]:
            lock total:
                total += j
    print(total)
""")
        assert not plan.ok

    def test_read_builtins_are_ineligible(self):
        plan = self.plan_of("""
def main():
    total = 0
    parallel for i in [1 ... 8]:
        x = read_int()
        lock total:
            total += x
    print(total)
""")
        assert not plan.ok
        assert "read" in plan.reason

    def test_plan_is_cached_on_the_node(self):
        from repro.api import compile_source

        program, _source = compile_source(PRIMES)
        [node] = [n for fn in program.functions for n in walk(fn.body)
                  if isinstance(n, ParallelFor)]
        first = plan_parallel_for(node, program)
        second = plan_parallel_for(node, program)
        assert first is second
