"""DebugSession tests: the paper's per-thread stepping debugger."""

import textwrap

import pytest

from repro.errors import TetraDeadlockError, TetraThreadError
from repro.ide.debugger import DebugSession
from repro.programs import DEADLOCK_DEMO


def session(text, inputs=None, **kwargs) -> DebugSession:
    s = DebugSession(textwrap.dedent(text), inputs, **kwargs)
    s.start()
    return s


SIMPLE = """
def main():
    x = 1
    y = 2
    print(x + y)
"""

PARALLEL = """
def main():
    x = 0
    parallel:
        x = x + 10
        x = x + 100
    print(x)
"""


class TestLifecycle:
    def test_starts_paused_at_first_statement(self):
        s = session(SIMPLE)
        views = s.threads()
        assert len(views) == 1
        assert views[0].label == "main thread"
        assert views[0].line == 3  # 'x = 1'
        assert not s.finished
        s.stop()

    def test_cannot_start_twice(self):
        s = session(SIMPLE)
        with pytest.raises(TetraThreadError):
            s.start()
        s.stop()

    def test_continue_to_completion(self):
        s = session(SIMPLE)
        s.continue_all()
        assert s.finished
        assert s.output == "3\n"
        assert s.error is None

    def test_finished_program_reports_runtime_error(self):
        s = session("""
            def main():
                x = 0
                print(1 / x)
        """)
        with pytest.raises(Exception):
            s.continue_all()
        assert s.error is not None


class TestStepping:
    def test_single_steps_advance_one_statement(self):
        s = session(SIMPLE)
        tid = s.threads()[0].id
        view = s.step(tid)
        assert view.line == 4
        assert view.variables == {"x": "1"}
        view = s.step(tid)
        assert view.line == 5
        assert view.variables == {"x": "1", "y": "2"}
        s.stop()

    def test_multi_step(self):
        s = session(SIMPLE)
        tid = s.threads()[0].id
        view = s.step(tid, 2)
        assert view.variables == {"x": "1", "y": "2"}
        s.stop()

    def test_output_accumulates_during_run(self):
        s = session(SIMPLE)
        tid = s.threads()[0].id
        s.step(tid, 2)
        assert s.output == ""
        s.continue_all()
        assert s.output == "3\n"

    def test_statement_counts_tracked(self):
        s = session(SIMPLE)
        tid = s.threads()[0].id
        s.step(tid, 2)
        assert s.thread(tid).statements_run >= 2
        s.stop()


class TestPerThreadViews:
    def test_threads_appear_after_spawn(self):
        s = session(PARALLEL)
        tid = s.threads()[0].id
        s.step(tid, 2)  # x = 0; parallel:
        views = s.threads()
        labels = [v.label for v in views]
        assert len(views) == 3
        assert any("parallel thread 1" in label for label in labels)
        assert views[0].state == "waiting to join children"
        s.stop()

    def test_independent_stepping(self):
        s = session(PARALLEL)
        main_id = s.threads()[0].id
        s.step(main_id, 2)
        t1, t2 = [v.id for v in s.threads() if "parallel" in v.label]
        # Step only thread 2; thread 1 must not move.
        before = s.thread(t1).statements_run
        s.step(t2)
        assert s.thread(t1).statements_run == before
        assert s.evaluate(t1, "x") == "100"
        s.stop()

    def test_backtrace_shows_call_chain(self):
        s = session("""
            def inner(v int) int:
                return v * 2

            def outer(v int) int:
                return inner(v + 1)

            def main():
                print(outer(1))
        """)
        tid = s.threads()[0].id
        # Step until we are inside inner(): its 'return' is line 3.
        for _ in range(10):
            view = s.thread(tid)
            if view.function == "inner":
                break
            s.step(tid)
        view = s.thread(tid)
        assert [f.function for f in view.backtrace] == ["main", "outer", "inner"]
        s.stop()

    def test_evaluate_in_thread_scope(self):
        s = session(SIMPLE)
        tid = s.threads()[0].id
        s.step(tid, 2)
        assert s.evaluate(tid, "x + y") == "3"
        assert s.evaluate(tid, "x * 10 > 5") == "true"
        s.stop()

    def test_evaluate_sees_private_induction_variable(self):
        s = session("""
            def main():
                total = 0
                parallel for i in [5, 6]:
                    lock t:
                        total += i
                print(total)
        """, num_workers=2)
        main_id = s.threads()[0].id
        s.step(main_id, 2)
        workers = [v.id for v in s.threads() if "worker" in v.label]
        values = sorted(s.evaluate(w, "i") for w in workers)
        assert values == ["5", "6"]
        s.stop()


class TestBreakpoints:
    def test_continue_stops_at_breakpoint(self):
        s = session(SIMPLE)
        s.add_breakpoint(5)
        s.continue_all()
        assert not s.finished
        view = s.threads()[0]
        assert view.line == 5
        assert view.variables == {"x": "1", "y": "2"}
        s.remove_breakpoint(5)
        s.continue_all()
        assert s.finished

    def test_run_thread_respects_breakpoints(self):
        s = session(SIMPLE)
        s.add_breakpoint(4)
        tid = s.threads()[0].id
        view = s.run_thread(tid)
        assert view.line == 4
        s.stop()

    def test_run_thread_to_completion(self):
        s = session(SIMPLE)
        tid = s.threads()[0].id
        s.run_thread(tid)
        assert s.finished
        assert s.output == "3\n"


class TestConcurrencyTeaching:
    def test_stepping_thread_to_lock_parks_it(self):
        # The paper's scenario: run one thread up to a lock while another
        # holds it; the view shows the block.
        s = session("""
            def main():
                parallel:
                    first()
                    second()

            def first():
                lock gate:
                    x = 1
                    y = 2

            def second():
                lock gate:
                    z = 3
        """)
        main_id = s.threads()[0].id
        s.step(main_id)  # spawn both children
        t1, t2 = [v.id for v in s.threads() if "parallel" in v.label]
        s.step(t1, 2)  # enter first(), take the lock
        view = s.run_thread(t2)  # runs until it blocks on the lock
        assert view.state == "blocked on lock"
        assert view.waiting_lock == "gate"
        # Finishing thread 1 releases the lock and lets thread 2 finish.
        s.continue_all()
        assert s.finished
        assert s.error is None

    def test_deadlock_diagnosed_not_hung(self):
        s = session(DEADLOCK_DEMO)
        with pytest.raises(TetraDeadlockError):
            s.continue_all()
        assert isinstance(s.error, TetraDeadlockError)

    def test_stepping_blocked_thread_rejected(self):
        s = session(PARALLEL)
        main_id = s.threads()[0].id
        s.step(main_id, 2)  # main is now join-blocked
        with pytest.raises(TetraThreadError, match="waiting"):
            s.step(main_id)
        s.stop()

    def test_source_line_lookup(self):
        s = session(SIMPLE)
        assert s.source_line(3).strip() == "x = 1"
        s.stop()
