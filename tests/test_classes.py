"""Tests for the ``class`` statement — the last item of the paper's §VI.

Classes are nominal record types with typed fields, an implicit positional
constructor, implicit-``self`` methods, and no inheritance (LANGUAGE.md).
Covered here: checker rules, runtime semantics on every backend, compiled
differentials, unparse round trips, and interaction with the other
extensions (tuples, dicts, try/catch).
"""

import textwrap

import pytest

from conftest import run
from repro.api import run_source
from repro.compiler import run_compiled
from repro.errors import TetraRuntimeError, TetraSyntaxError
from repro.parser import parse_source
from repro.source import SourceFile
from repro.tetra_ast import node_equal, unparse
from repro.types import ClassType, INT, REAL, check_program, collect_diagnostics

POINT = """
class Point:
    x int
    y int

    def magnitude() real:
        return sqrt(real(self.x * self.x + self.y * self.y))

    def shifted(dx int, dy int) Point:
        return Point(self.x + dx, self.y + dy)
"""


def with_point(body: str) -> str:
    """POINT (column 0) + a dedented body — safe to concatenate."""
    return POINT + textwrap.dedent(body)


def errors_of(text: str) -> list[str]:
    text = textwrap.dedent(text)
    source = SourceFile.from_string(text)
    return [e.message for e in collect_diagnostics(parse_source(source), source)]


def reject(text: str, match: str):
    msgs = errors_of(text)
    assert any(match in m for m in msgs), msgs


def accept(text: str):
    assert errors_of(text) == []


class TestClassChecker:
    def test_constructor_type(self):
        source = SourceFile.from_string(with_point("""
            def main():
                p = Point(1, 2)
        """))
        program = parse_source(source)
        symbols = check_program(program, source)
        assert symbols.scope_of("main").lookup("p").type == ClassType("Point")
        assert symbols.classes["Point"].field_names == ("x", "y")

    def test_field_types_recorded(self):
        source = SourceFile.from_string(with_point("""
            def main():
                pass
        """))
        program = parse_source(source)
        symbols = check_program(program, source)
        info = symbols.classes["Point"]
        assert info.field_type("x") == INT
        assert info.field_type("missing") is None
        assert info.methods["magnitude"].return_type == REAL

    def test_constructor_arity(self):
        reject(with_point("""
            def main():
                p = Point(1)
        """), "has 2 field(s)")

    def test_constructor_field_types(self):
        reject(with_point("""
            def main():
                p = Point(1, "two")
        """), "field 'y' of 'Point' is a int")

    def test_attribute_types(self):
        reject(with_point("""
            def main():
                p = Point(1, 2)
                p.x = "no"
        """), "field 'x' is a int")

    def test_unknown_field(self):
        reject(with_point("""
            def main():
                p = Point(1, 2)
                print(p.z)
        """), "no field 'z'")

    def test_method_read_without_call_hints(self):
        reject(with_point("""
            def main():
                p = Point(1, 2)
                x = p.magnitude
        """), "did you mean to call it")

    def test_field_called_as_method_hints(self):
        reject(with_point("""
            def main():
                p = Point(1, 2)
                x = p.x()
        """), "fields are read without parentheses")

    def test_method_arity_and_types(self):
        reject(with_point("""
            def main():
                q = Point(0, 0).shifted(1)
        """), "takes 2 argument(s)")
        reject(with_point("""
            def main():
                q = Point(0, 0).shifted("a", 1)
        """), "must be a int")

    def test_attribute_on_non_object(self):
        reject("""
            def main():
                x = 5
                print(x.value)
        """, "has no fields")

    def test_unknown_class_type_annotation(self):
        reject("""
            def f(p Widget):
                pass

            def main():
                pass
        """, "no class named 'Widget'")

    def test_duplicate_class(self):
        reject("""
            class A:
                x int

            class A:
                y int

            def main():
                pass
        """, "defined more than once")

    def test_class_function_name_conflict(self):
        reject("""
            class thing:
                x int

            def thing() int:
                return 1

            def main():
                pass
        """, "already a class name")

    def test_duplicate_field(self):
        reject("""
            class A:
                x int
                x real

            def main():
                pass
        """, "repeats a field name")

    def test_explicit_self_parameter_rejected(self):
        reject("""
            class A:
                x int

                def m(self A) int:
                    return 1

            def main():
                pass
        """, "'self' is implicit")

    def test_method_return_paths_checked(self):
        reject("""
            class A:
                x int

                def m() int:
                    if self.x > 0:
                        return 1

            def main():
                pass
        """, "not every path")

    def test_classes_can_reference_each_other(self):
        accept("""
            class Segment:
                a Point
                b Point

            class Point:
                x int
                y int

            def main():
                s = Segment(Point(0, 0), Point(1, 1))
                print(s.b.x)
        """)

    def test_empty_class_with_pass(self):
        with pytest.raises(TetraSyntaxError):
            # fields or methods are required syntactically only via pass
            parse_source("class E:\n")
        accept("""
            class E:
                pass

            def main():
                e = E()
                print(e)
        """)


class TestClassRuntime:
    def test_construct_access_mutate(self, any_backend):
        assert run(with_point("""
            def main():
                p = Point(3, 4)
                print(p.x, " ", p.y)
                p.x = 6
                p.y += 4
                print(p)
        """), backend=any_backend) == ["3 4", "Point(x: 6, y: 8)"]

    def test_methods(self, any_backend):
        assert run(with_point("""
            def main():
                p = Point(3, 4)
                print(p.magnitude())
                print(p.shifted(1, 2))
        """), backend=any_backend) == ["5.0", "Point(x: 4, y: 6)"]

    def test_method_chaining(self):
        assert run(with_point("""
            def main():
                print(Point(0, 0).shifted(1, 1).shifted(2, 2))
        """)) == ["Point(x: 3, y: 3)"]

    def test_objects_passed_by_reference(self):
        assert run(with_point("""
            def zero(p Point):
                p.x = 0
                p.y = 0

            def main():
                p = Point(9, 9)
                zero(p)
                print(p)
        """)) == ["Point(x: 0, y: 0)"]

    def test_copy_is_deep(self):
        assert run(with_point("""
            def main():
                a = Point(1, 2)
                b = copy(a)
                b.x = 99
                print(a.x, " ", b.x)
        """)) == ["1 99"]

    def test_structural_equality(self):
        assert run(with_point("""
            def main():
                print(Point(1, 2) == Point(1, 2))
                print(Point(1, 2) == Point(1, 3))
        """)) == ["true", "false"]

    def test_field_widening(self):
        assert run("""
            class Reading:
                value real

            def main():
                r = Reading(3)
                print(r.value)
                r.value = 4
                print(r.value)
        """) == ["3.0", "4.0"]

    def test_objects_in_arrays(self):
        assert run(with_point("""
            def main():
                pts = [Point(1, 1), Point(2, 2)]
                pts[1].x = 9
                print(pts)
        """)) == ["[Point(x: 1, y: 1), Point(x: 9, y: 2)]"]

    def test_nested_objects(self):
        assert run("""
            class Inner:
                v int

            class Outer:
                inner Inner

            def main():
                o = Outer(Inner(5))
                o.inner.v += 1
                print(o, " ", o.inner.v)
        """) == ["Outer(inner: Inner(v: 6)) 6"]

    def test_methods_calling_methods(self):
        assert run(with_point("""
            def main():
                p = Point(1, 1)
                q = p.shifted(2, 3)
                print(q.magnitude())
        """)) == ["5.0"]

    def test_recursive_method(self):
        assert run("""
            class Counter:
                n int

                def countdown() int:
                    if self.n <= 0:
                        return 0
                    self.n -= 1
                    return 1 + self.countdown()

            def main():
                c = Counter(5)
                print(c.countdown(), " ", c.n)
        """) == ["5 0"]

    def test_objects_with_tuples_and_dicts(self):
        assert run("""
            class Record:
                tags {string: int}
                span (int, int)

            def main():
                r = Record({"a": 1}, (2, 5))
                r.tags["b"] = 2
                lo, hi = r.span
                print(r.tags, " ", lo, " ", hi)
        """) == ["{a: 1, b: 2} 2 5"]

    def test_objects_shared_across_threads(self, any_backend):
        assert run(with_point("""
            def main():
                p = Point(0, 0)
                parallel:
                    p.x = 1
                    p.y = 2
                print(p)
        """), backend=any_backend) == ["Point(x: 1, y: 2)"]

    def test_try_catch_with_method_errors(self):
        assert run("""
            class Divider:
                denom int

                def apply(v int) int:
                    return v / self.denom

            def main():
                d = Divider(0)
                try:
                    print(d.apply(10))
                catch e:
                    print("caught: ", e)
        """) == ["caught: integer division by zero"]

    def test_whitespace_disambiguation(self):
        # `xs[i] = v` indexes; `p Point = ...` declares.
        assert run(with_point("""
            def main():
                xs = [1, 2]
                i = 0
                xs[i] = 9
                p Point = Point(1, 1)
                print(xs, " ", p.x)
        """)) == ["[9, 2] 1"]


class TestClassCompiled:
    def differential(self, text):
        text = textwrap.dedent(text)
        a = run_source(text).output
        b = run_compiled(text).output
        assert a == b
        return a

    def test_full_differential(self):
        self.differential(with_point("""
            def main():
                p = Point(3, 4)
                print(p.magnitude())
                q = p.shifted(1, 1)
                q.x += 10
                print(q, " ", p == Point(3, 4))
                pts = [Point(0, 0), q]
                pts[0].y = 7
                print(pts)
        """))

    def test_mutual_reference_differential(self):
        self.differential("""
            class Node:
                value int

            class Pair:
                left Node
                right Node

                def total() int:
                    return self.left.value + self.right.value

            def main():
                pair = Pair(Node(1), Node(2))
                print(pair.total())
        """)


class TestClassUnparse:
    @pytest.mark.parametrize("text", [
        POINT.strip("\n") + "\n",
        "class E:\n    pass\n",
        ("class A:\n    x int\n\n"
         "    def get() int:\n        return self.x\n\n"
         "def main():\n    print(A(1).get())\n"),
    ])
    def test_round_trip(self, text):
        program = parse_source(textwrap.dedent(text))
        assert node_equal(program, parse_source(unparse(program)))

    def test_unparse_attribute_and_method_call(self):
        text = "def main():\n    print(p.x + p.m(1)[0].y)\n"
        program = parse_source(text)
        assert "p.x + p.m(1)[0].y" in unparse(program)
