"""Type checker tests: the accept/reject matrix for Tetra's static rules."""

import textwrap

import pytest

from repro.errors import TetraNameError, TetraTypeError
from repro.parser import parse_source
from repro.source import SourceFile
from repro.types import (
    BOOL,
    INT,
    REAL,
    STRING,
    ArrayType,
    check_program,
    collect_diagnostics,
)


def check(text: str):
    """Check dedented source; returns the symbol table (raises on error)."""
    text = textwrap.dedent(text)
    source = SourceFile.from_string(text)
    program = parse_source(source)
    return program, check_program(program, source)


def errors_of(text: str) -> list[str]:
    text = textwrap.dedent(text)
    source = SourceFile.from_string(text)
    program = parse_source(source)
    return [e.message for e in collect_diagnostics(program, source)]


def reject(text: str, match: str):
    msgs = errors_of(text)
    assert msgs, f"expected an error matching {match!r}, got none"
    assert any(match in m for m in msgs), msgs


def accept(text: str):
    msgs = errors_of(text)
    assert msgs == [], msgs


def in_main(body: str) -> str:
    indented = textwrap.indent(textwrap.dedent(body).strip("\n"), "    ")
    return f"def main():\n{indented}\n"


class TestInference:
    def test_literal_types(self):
        program, symbols = check("""
            def main():
                i = 1
                r = 1.5
                s = "x"
                b = true
        """)
        scope = symbols.scope_of("main")
        assert scope.lookup("i").type == INT
        assert scope.lookup("r").type == REAL
        assert scope.lookup("s").type == STRING
        assert scope.lookup("b").type == BOOL

    def test_array_inference(self):
        _, symbols = check("def main():\n    xs = [1, 2, 3]\n")
        assert symbols.scope_of("main").lookup("xs").type == ArrayType(INT)

    def test_mixed_numeric_array_becomes_real(self):
        _, symbols = check("def main():\n    xs = [1, 2.5]\n")
        assert symbols.scope_of("main").lookup("xs").type == ArrayType(REAL)

    def test_range_is_int_array(self):
        _, symbols = check("def main():\n    r = [1 ... 5]\n")
        assert symbols.scope_of("main").lookup("r").type == ArrayType(INT)

    def test_inference_from_expression(self):
        _, symbols = check("""
            def main():
                x = 2
                y = x * 3 + 1
                z = x / 2
        """)
        scope = symbols.scope_of("main")
        assert scope.lookup("y").type == INT
        assert scope.lookup("z").type == INT  # int division stays int

    def test_int_real_promotion(self):
        _, symbols = check("def main():\n    x = 1 + 2.0\n")
        assert symbols.scope_of("main").lookup("x").type == REAL

    def test_reassignment_same_type_ok(self):
        accept(in_main("x = 1\nx = 2"))

    def test_int_var_accepts_no_real(self):
        reject(in_main("x = 1\nx = 2.5"), "cannot hold")

    def test_real_var_accepts_int(self):
        accept(in_main("x = 1.5\nx = 2"))

    def test_use_before_assignment(self):
        reject(in_main("y = x + 1"), "not defined")

    def test_type_fixed_by_first_branch(self):
        reject("""
            def main():
                if true:
                    x = 1
                else:
                    x = 1.5
        """, "cannot hold")

    def test_function_result_type(self):
        _, symbols = check("""
            def f() real:
                return 1.5

            def main():
                x = f()
        """)
        assert symbols.scope_of("main").lookup("x").type == REAL

    def test_void_result_unassignable(self):
        reject("""
            def nothing():
                pass

            def main():
                x = nothing()
        """, "returns nothing")

    def test_loop_variable_type(self):
        _, symbols = check("""
            def main():
                for x in [1.0, 2.0]:
                    y = x
        """)
        assert symbols.scope_of("main").lookup("x").type == REAL

    def test_string_iteration_yields_strings(self):
        _, symbols = check("""
            def main():
                for c in "abc":
                    y = c
        """)
        assert symbols.scope_of("main").lookup("c").type == STRING


class TestOperators:
    def test_string_concatenation(self):
        accept(in_main('s = "a" + "b"'))

    def test_string_plus_int_rejected(self):
        reject(in_main('s = "a" + 1'), "cannot combine")

    def test_string_times_int_rejected(self):
        reject(in_main('s = "a" * 2'), "cannot combine")

    def test_logical_needs_bools(self):
        reject(in_main("x = 1 and 2"), "bool operands")
        accept(in_main("x = true and false or true"))

    def test_not_needs_bool(self):
        reject(in_main("x = not 1"), "'not' needs a bool")

    def test_comparisons_yield_bool(self):
        _, symbols = check(in_main("b = 1 < 2"))
        assert symbols.scope_of("main").lookup("b").type == BOOL

    def test_mixed_numeric_comparison(self):
        accept(in_main("b = 1 < 2.5"))

    def test_string_ordering(self):
        accept(in_main('b = "a" < "b"'))

    def test_cross_type_equality_rejected(self):
        reject(in_main('b = 1 == "1"'), "cannot compare")

    def test_bool_ordering_rejected(self):
        reject(in_main("b = true < false"), "cannot order")

    def test_array_equality_same_type(self):
        accept(in_main("b = [1] == [2]"))

    def test_array_equality_different_types_rejected(self):
        reject(in_main('b = [1] == ["a"]'), "cannot compare")

    def test_unary_minus_on_string_rejected(self):
        reject(in_main('x = -"s"'), "needs a number")

    def test_chained_comparison_rejected(self):
        # (a < b) < c would compare bool with int.
        reject(in_main("x = 1 < 2 < 3"), "cannot order")


class TestFunctions:
    def test_call_before_definition(self):
        accept("""
            def main():
                helper()

            def helper():
                pass
        """)

    def test_arity_mismatch(self):
        reject("""
            def f(a int):
                pass

            def main():
                f(1, 2)
        """, "takes 1 argument")

    def test_argument_type_mismatch(self):
        reject("""
            def f(a int):
                pass

            def main():
                f("no")
        """, "must be a int")

    def test_int_widens_to_real_argument(self):
        accept("""
            def f(a real):
                pass

            def main():
                f(1)
        """)

    def test_real_does_not_narrow_to_int(self):
        reject("""
            def f(a int):
                pass

            def main():
                f(1.5)
        """, "must be a int")

    def test_array_invariance(self):
        reject("""
            def f(a [real]):
                pass

            def main():
                f([1, 2])
        """, "must be a [real]")

    def test_unknown_function(self):
        reject(in_main("mystery()"), "no function named")

    def test_function_used_as_variable(self):
        reject("""
            def f():
                pass

            def main():
                x = f + 1
        """, "parentheses")

    def test_duplicate_function(self):
        reject("""
            def f():
                pass

            def f():
                pass

            def main():
                pass
        """, "more than once")

    def test_duplicate_parameter(self):
        reject("def f(a int, a int):\n    pass\n", "repeats a parameter")

    def test_user_function_shadows_builtin(self):
        accept("""
            def max(a int, b int) int:
                if a > b:
                    return a
                return b

            def main():
                print(max(1, 2))
        """)


class TestReturns:
    def test_missing_return(self):
        reject("def f() int:\n    x = 1\n", "not every path")

    def test_return_in_both_branches(self):
        accept("""
            def f(x int) int:
                if x > 0:
                    return 1
                else:
                    return 2
        """)

    def test_if_without_else_does_not_count(self):
        reject("""
            def f(x int) int:
                if x > 0:
                    return 1
        """, "not every path")

    def test_elif_chain_needs_else(self):
        reject("""
            def f(x int) int:
                if x > 0:
                    return 1
                elif x < 0:
                    return 2
        """, "not every path")

    def test_return_through_lock(self):
        accept("""
            def f() int:
                lock guard:
                    return 1
        """)

    def test_while_does_not_guarantee_return(self):
        reject("""
            def f() int:
                while true:
                    return 1
        """, "not every path")

    def test_value_type_checked(self):
        reject('def f() int:\n    return "no"\n', "returns int")

    def test_bare_return_in_typed_function(self):
        reject("def f() int:\n    return\n", "must return a int")

    def test_value_in_void_function(self):
        reject("def f():\n    return 1\n", "must not carry a value")

    def test_int_widens_to_real_return(self):
        accept("def f() real:\n    return 1\n")


class TestParallelRules:
    def test_return_inside_parallel_rejected(self):
        reject("""
            def f() int:
                parallel:
                    return 1
                return 2
        """, "not allowed inside a parallel")

    def test_return_inside_background_rejected(self):
        reject(in_main("background:\n    return"), "not allowed inside")

    def test_return_inside_parallel_for_rejected(self):
        reject("""
            def f(xs [int]) int:
                parallel for x in xs:
                    return x
                return 0
        """, "not allowed inside")

    def test_break_cannot_cross_parallel_for(self):
        reject("""
            def main():
                parallel for x in [1, 2]:
                    break
        """, "'break' outside a loop")

    def test_break_in_loop_inside_parallel_ok(self):
        accept("""
            def main():
                parallel for x in [1, 2]:
                    while true:
                        break
        """)

    def test_break_cannot_cross_from_enclosing_loop(self):
        # The enclosing while does NOT make break legal inside the parallel
        # for body: iterations are independent and cannot abort the loop.
        reject("""
            def main():
                while true:
                    parallel for x in [1, 2]:
                        break
        """, "cannot cross into a 'parallel for'")

    def test_continue_cannot_cross_from_enclosing_loop(self):
        reject("""
            def main():
                while true:
                    parallel for x in [1, 2]:
                        continue
        """, "cannot cross into a 'parallel for'")

    def test_continue_cannot_cross_parallel_for(self):
        reject("""
            def main():
                parallel for x in [1, 2]:
                    continue
        """, "'continue' outside a loop")

    def test_continue_in_loop_inside_parallel_ok(self):
        accept("""
            def main():
                parallel for x in [1, 2]:
                    for i in [1 ... 3]:
                        continue
        """)

    def test_continue_outside_loop(self):
        reject(in_main("continue"), "'continue' outside a loop")

    def test_break_outside_loop(self):
        reject(in_main("break"), "'break' outside a loop")

    def test_lock_names_recorded(self):
        _, symbols = check("""
            def main():
                lock a:
                    pass
                lock b:
                    pass
        """)
        assert symbols.lock_names == {"a", "b"}

    def test_parallel_shares_scope(self):
        # Figure II: results assigned in parallel are visible after.
        accept("""
            def main():
                parallel:
                    a = 1
                    b = 2
                print(a + b)
        """)

    def test_induction_variable_flagged(self):
        _, symbols = check("""
            def main():
                parallel for i in [1 ... 4]:
                    x = i
        """)
        assert symbols.scope_of("main").lookup("i").is_induction

    def test_loop_over_non_sequence(self):
        reject(in_main("for x in 5:\n    pass"), "cannot loop over")


class TestArraysAndIndexing:
    def test_index_yields_element(self):
        _, symbols = check(in_main("x = [[1], [2]][0][0]"))
        assert symbols.scope_of("main").lookup("x").type == INT

    def test_index_must_be_int(self):
        reject(in_main("x = [1, 2][1.5]"), "index must be an int")

    def test_indexing_non_array(self):
        reject(in_main("x = 5\ny = x[0]"), "cannot index")

    def test_string_indexing_allowed(self):
        _, symbols = check(in_main('c = "abc"[1]'))
        assert symbols.scope_of("main").lookup("c").type == STRING

    def test_element_store_type(self):
        reject(in_main('xs = [1]\nxs[0] = "s"'), "cannot store")

    def test_element_store_widening(self):
        accept(in_main("xs = [1.0]\nxs[0] = 2"))

    def test_empty_array_literal_rejected(self):
        reject(in_main("xs = []"), "empty array literal")

    def test_heterogeneous_array_rejected(self):
        reject(in_main('xs = [1, "a"]'), "mixes int and string")

    def test_range_endpoints_must_be_int(self):
        reject(in_main("r = [1.5 ... 2]"), "range start must be an int")


class TestConditionsAndMain:
    def test_if_condition_must_be_bool(self):
        reject(in_main("if 1:\n    pass"), "must be a bool")

    def test_while_condition_must_be_bool(self):
        reject(in_main("while 1:\n    pass"), "must be a bool")

    def test_main_with_parameters_rejected(self):
        reject("def main(x int):\n    pass\n", "must not take parameters")

    def test_main_with_return_type_rejected(self):
        reject("def main() int:\n    return 1\n", "must not declare")

    def test_error_recovery_collects_multiple(self):
        msgs = errors_of("""
            def main():
                a = undefined_one
                b = undefined_two
        """)
        assert len(msgs) == 2

    def test_error_cascades_suppressed(self):
        # The undefined name is one error; uses of 'a' after recovery are not.
        msgs = errors_of("""
            def main():
                a = mystery
                b = a + 1
                c = a * b
        """)
        assert len(msgs) == 1

    def test_diagnostics_carry_spans(self):
        source = SourceFile.from_string("def main():\n    x = nope\n")
        program = parse_source(source)
        diags = collect_diagnostics(program, source)
        assert diags[0].span.line == 2
        assert "nope" in diags[0].render()


class TestBuiltinSignatures:
    def test_print_accepts_anything(self):
        accept(in_main('print(1, "a", true, [1.0])'))

    def test_len_on_array_and_string(self):
        accept(in_main('n = len([1]) + len("abc")'))

    def test_len_on_int_rejected(self):
        reject(in_main("n = len(5)"), "len() takes one array, string, or dict")

    def test_read_int_no_args(self):
        reject(in_main("n = read_int(1)"), "no arguments")

    def test_sqrt_takes_real_or_int(self):
        accept(in_main("x = sqrt(2)\ny = sqrt(2.5)"))

    def test_sqrt_rejects_string(self):
        reject(in_main('x = sqrt("2")'), "must be a real")

    def test_array_builtin_polymorphic(self):
        _, symbols = check(in_main('xs = array(3, "a")'))
        assert symbols.scope_of("main").lookup("xs").type == ArrayType(STRING)

    def test_sum_preserves_element_type(self):
        _, symbols = check(in_main("t = sum([1.0, 2.0])"))
        assert symbols.scope_of("main").lookup("t").type == REAL

    def test_abs_keeps_intness(self):
        _, symbols = check(in_main("a = abs(-3)\nb = abs(-3.5)"))
        scope = symbols.scope_of("main")
        assert scope.lookup("a").type == INT
        assert scope.lookup("b").type == REAL
