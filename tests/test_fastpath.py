"""Fast-path and program-cache tests.

Covers the AST→closure precompilation layer (``repro.interp.compile``):
semantic parity with the tree walker on every backend, the race-detector
fallback, span-exact diagnostics, the strict annotation contract — and the
:mod:`repro.api` program cache: hit/miss accounting, the ``cache=False``
escape hatch, and ``tetra run --no-cache``.
"""

import textwrap

import pytest

from repro.api import (
    cached_program,
    clear_program_cache,
    compile_source,
    program_cache_info,
    run_source,
)
from repro.errors import TetraError, TetraInternalError, TetraLimitError
from repro.interp import Interpreter
from repro.runtime import RuntimeConfig, SequentialBackend
from repro.stdlib.io import CapturingIO
from repro.tetra_ast import ArrayLiteral, Assign, Name, walk
from repro.tools.cli import main as cli_main

HELLO = 'def main():\n    print("hello")\n'

#: Exercises recursion, loops, arrays, dicts, tuples, strings, classes,
#: parallel for + locks — one program touching most compiled node kinds.
KITCHEN_SINK = textwrap.dedent("""
    class Point:
        x int
        y int

        def total() int:
            return self.x + self.y

    def fib(n int) int:
        if n < 2:
            return n
        return fib(n - 1) + fib(n - 2)

    def main():
        print(fib(12))
        s = 0
        for i in [1 ... 20]:
            s += i * i
        print(s)
        a = [5, 2, 9]
        a[1] = a[0] + a[2]
        print(a, len(a))
        d = {"one": 1, "two": 2}
        print(d["two"], d)
        t = (3, 4.5)
        u, v = t
        print(u + v)
        p = Point(2, 3)
        print(p.total(), p.x)
        word = "tetra"
        print(word[1], word + "!")
        total = 0
        parallel for i in [1 ... 16]:
            lock total:
                total += i
        print(total)
""")

RACY = textwrap.dedent("""
    def main():
        largest = 0
        parallel for num in [3, 90, 14, 50]:
            if num > largest:
                largest = num
        print(largest)
""")


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_program_cache()
    yield
    clear_program_cache()


# ----------------------------------------------------------------------
# Program cache
# ----------------------------------------------------------------------
class TestProgramCache:
    def test_repeat_compile_hits(self):
        first, _ = cached_program(HELLO)
        second, _ = cached_program(HELLO)
        assert first is second  # the checked AST itself is reused
        info = program_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["currsize"] == 1

    def test_edit_misses(self):
        cached_program(HELLO)
        edited = HELLO.replace("hello", "goodbye")
        cached_program(edited)
        info = program_cache_info()
        assert info["hits"] == 0 and info["misses"] == 2
        assert info["currsize"] == 2

    def test_name_and_entry_are_part_of_the_key(self):
        cached_program(HELLO, name="a.ttr")
        cached_program(HELLO, name="b.ttr")
        cached_program(HELLO, name="a.ttr", entry="other")
        assert program_cache_info()["misses"] == 3

    def test_cache_false_bypasses(self):
        first, _ = cached_program(HELLO, cache=False)
        second, _ = cached_program(HELLO, cache=False)
        assert first is not second
        info = program_cache_info()
        assert info["hits"] == 0 and info["misses"] == 0
        assert info["currsize"] == 0

    def test_failed_compiles_are_not_cached(self):
        bad = "def main():\n    x = nope()\n"
        for _ in range(2):
            with pytest.raises(TetraError):
                cached_program(bad)
        info = program_cache_info()
        assert info["misses"] == 2 and info["currsize"] == 0

    def test_run_source_uses_the_cache(self):
        assert run_source(HELLO).output == "hello\n"
        assert run_source(HELLO).output == "hello\n"
        info = program_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_instrumentation_flags_are_part_of_the_key(self):
        """Regression: trace/race hooks are bound into per-node annotations
        at compile time, so a tree compiled with instrumentation *off*
        must never be served to a run that needs it *on* — each flag
        combination gets its own cache variant."""
        cached_program(HELLO)
        cached_program(HELLO, flags=(True, False))
        cached_program(HELLO, flags=(False, True))
        info = program_cache_info()
        assert info["hits"] == 0 and info["misses"] == 3
        assert info["currsize"] == 3

    def test_warm_plain_cache_still_traces_and_detects_races(self):
        """The user-visible symptom the flagged key prevents: a plain run
        warming the cache must not disable instrumentation for an
        immediately-following traced or race-detected run."""
        racy = """
def main():
    x = 0
    parallel for i in [1 ... 8]:
        x = x + 1
    print(x)
"""
        from repro.runtime import RuntimeConfig

        run_source(racy)  # warm the uninstrumented variant
        traced = run_source(HELLO, trace=True, metrics=True)
        assert traced.obs is not None
        assert traced.metrics is not None
        raced = run_source(racy, detect_races=True,
                           config=RuntimeConfig(num_workers=4,
                                                detect_races=True))
        assert raced.races, "the warm cache must not swallow race events"

    def test_run_source_cache_false(self):
        assert run_source(HELLO, cache=False).output == "hello\n"
        assert program_cache_info()["currsize"] == 0

    def test_cached_runs_are_isolated(self):
        """Sharing the AST across runs must not leak run state."""
        counter = "def main():\n    n = 0\n    n += 1\n    print(n)\n"
        assert run_source(counter).output == "1\n"
        assert run_source(counter).output == "1\n"
        assert run_source(counter, backend="sequential").output == "1\n"


class TestCLINoCache:
    def test_no_cache_flag(self, tmp_path, capsys):
        path = tmp_path / "hello.ttr"
        path.write_text(HELLO)
        assert cli_main(["run", str(path), "--no-cache"]) == 0
        assert capsys.readouterr().out == "hello\n"
        assert program_cache_info()["currsize"] == 0

    def test_default_run_caches(self, tmp_path, capsys):
        path = tmp_path / "hello.ttr"
        path.write_text(HELLO)
        assert cli_main(["run", str(path)]) == 0
        assert cli_main(["run", str(path)]) == 0
        capsys.readouterr()
        info = program_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1


# ----------------------------------------------------------------------
# Fast path semantics
# ----------------------------------------------------------------------
class TestFastPathParity:
    def test_identical_output_on_every_backend(self, any_backend):
        fast = run_source(KITCHEN_SINK, backend=any_backend).output
        walker = run_source(KITCHEN_SINK, backend=any_backend,
                            fast=False, cache=False).output
        assert fast == walker

    def test_interpreter_compiles_by_default(self):
        program, source = compile_source(HELLO)
        interp = Interpreter(program, source, backend=SequentialBackend(),
                             io=CapturingIO())
        assert interp.fast is True

    def test_fast_false_uses_the_walker(self):
        program, source = compile_source(HELLO)
        interp = Interpreter(program, source, backend=SequentialBackend(),
                             io=CapturingIO(), fast=False)
        assert interp.fast is False

    def test_error_spans_survive_precompilation(self):
        crashing = textwrap.dedent("""
            def main():
                a = [1, 2, 3]
                print(a[7])
        """)
        with pytest.raises(TetraError) as fast_exc:
            run_source(crashing, backend="sequential")
        with pytest.raises(TetraError) as walker_exc:
            run_source(crashing, backend="sequential",
                       fast=False, cache=False)
        assert fast_exc.value.span == walker_exc.value.span
        assert str(fast_exc.value) == str(walker_exc.value)

    def test_recursion_limit_message_is_the_walkers(self):
        runaway = "def f() int:\n    return f()\n\ndef main():\n    f()\n"
        with pytest.raises(TetraLimitError, match="recursion depth exceeded"):
            run_source(runaway, backend="sequential")

    def test_step_limit_enforced_through_fast_path(self):
        spin = "def main():\n    while true:\n        pass\n"
        config = RuntimeConfig(step_limit=500)
        with pytest.raises(TetraLimitError, match="budget of 500 statements"):
            run_source(spin, backend="sequential", config=config)


class TestRaceDetectorFallback:
    def test_detect_races_disables_the_fast_path(self):
        program, source = compile_source(RACY)
        interp = Interpreter(program, source, backend=SequentialBackend(),
                             io=CapturingIO(),
                             config=RuntimeConfig(detect_races=True))
        assert interp.fast is False

    def test_same_races_reported(self):
        config = RuntimeConfig(num_workers=4, detect_races=True)
        through_default = run_source(RACY, backend="thread", config=config)
        through_walker = run_source(RACY, backend="thread", config=config,
                                    fast=False, cache=False)
        assert through_default.races and through_walker.races
        assert (through_default.races[0].variable
                == through_walker.races[0].variable == "largest")

    def test_lock_protected_program_stays_clean(self):
        clean = textwrap.dedent("""
            def main():
                total = 0
                parallel for i in [1 ... 8]:
                    lock total:
                        total += i
                print(total)
        """)
        config = RuntimeConfig(num_workers=4, detect_races=True)
        result = run_source(clean, backend="thread", config=config)
        assert result.races == [] and result.output == "36\n"


class TestRunResultRepr:
    def test_repr_is_one_line(self):
        result = run_source(HELLO, backend="sequential")
        text = repr(result)
        assert "\n" not in text
        assert text == ("<RunResult '<string>' backend=sequential "
                        "output=6 chars races=0>")

    def test_repr_includes_the_file_name(self):
        result = run_source(HELLO, name="hello.ttr")
        assert "'hello.ttr'" in repr(result)


# ----------------------------------------------------------------------
# Strict annotation contract (satellite: no silent getattr fallbacks)
# ----------------------------------------------------------------------
class TestStrictAnnotations:
    def _program_with_stripped(self, node_type):
        text = "def main():\n    xs = [1, 2]\n    print(xs)\n"
        program, source = compile_source(text)
        for node in walk(program.functions[0].body):
            if isinstance(node, node_type):
                node.ty = None
        return program, source

    def test_compile_rejects_untyped_literal(self):
        program, source = self._program_with_stripped(ArrayLiteral)
        with pytest.raises(TetraInternalError,
                           match="was this program type-checked"):
            Interpreter(program, source, backend=SequentialBackend(),
                        io=CapturingIO())

    def test_walker_rejects_untyped_literal(self):
        program, source = self._program_with_stripped(ArrayLiteral)
        interp = Interpreter(program, source, backend=SequentialBackend(),
                             io=CapturingIO(), fast=False)
        with pytest.raises(TetraInternalError):
            interp.run()

    def test_walker_rejects_untyped_assignment_target(self):
        text = "def main():\n    x = 1\n    print(x)\n"
        program, source = compile_source(text)
        for node in walk(program.functions[0].body):
            if isinstance(node, Assign) and isinstance(node.target, Name):
                node.target.ty = None
        interp = Interpreter(program, source, backend=SequentialBackend(),
                             io=CapturingIO(), fast=False)
        with pytest.raises(TetraInternalError,
                           match="not annotated by the checker"):
            interp.run()


# ----------------------------------------------------------------------
# Did-you-mean diagnostics (satellite: unknown-function hints)
# ----------------------------------------------------------------------
class TestUnknownFunctionHints:
    def _message(self, call):
        from repro.api import check_source

        errors = check_source(f"def main():\n    {call}\n")
        assert errors, call
        return str(errors[0])

    def test_typo_suggests_builtin(self):
        message = self._message("prnt(1)")
        assert "there is no function named 'prnt'" in message
        assert "did you mean 'print'?" in message

    def test_typo_suggests_user_function(self):
        from repro.api import check_source

        errors = check_source(
            "def helper():\n    pass\n\ndef main():\n    helpr()\n"
        )
        assert errors and "did you mean 'helper'" in str(errors[0])

    def test_range_gets_the_iteration_idiom(self):
        message = self._message("range(10)")
        assert "inclusive range literal" in message
        assert "[0 ... 9]" in message

    def test_plain_unknown_keeps_the_seed_wording(self):
        # tests/test_checker.py pins the "no function named" prefix; the
        # hint must extend the message, never replace it.
        message = self._message("zzqqy(1)")
        assert "there is no function named 'zzqqy'" in message
